#include "src/analysis/effects.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/arch/object_descriptor.h"
#include "src/arch/object_table.h"
#include "src/isa/disassembler.h"

namespace imax432 {
namespace analysis {
namespace {

// Kernel service ids modeled precisely. Kept in sync with src/exec/kernel.h; duplicated here
// so the analysis layer does not depend on the execution layer.
constexpr uint32_t kOsYield = 1;
constexpr uint32_t kOsGetTime = 2;
constexpr uint32_t kOsSetPriority = 3;
constexpr uint32_t kOsSetDeadline = 4;
constexpr uint32_t kOsTimedReceive = 5;

// Widening bound on the concrete-object set per register; beyond this the value goes to top.
constexpr size_t kMaxAdSet = 8;

// Abstract AD register value: the set of concrete objects the register may name.
// Empty and not top = the register is definitely null (or holds only fresh objects that
// cannot be any pre-existing port). Top = any object.
struct AbstractAd {
  bool top = false;
  std::vector<ObjectIndex> objs;  // sorted, deduped, size <= kMaxAdSet

  static AbstractAd Top() {
    AbstractAd v;
    v.top = true;
    return v;
  }

  void Add(ObjectIndex index) {
    if (top || index == kInvalidObjectIndex) return;
    auto it = std::lower_bound(objs.begin(), objs.end(), index);
    if (it != objs.end() && *it == index) return;
    objs.insert(it, index);
    if (objs.size() > kMaxAdSet) {
      top = true;
      objs.clear();
    }
  }

  // Least upper bound; returns true when this value changed.
  bool Join(const AbstractAd& other) {
    if (top) return false;
    if (other.top) {
      top = true;
      objs.clear();
      return true;
    }
    const size_t before = objs.size();
    for (ObjectIndex index : other.objs) Add(index);
    return top || objs.size() != before;
  }
};

// Must-have-sent set: ports provably sent to on every path reaching the current point.
// `top` is the lattice identity at join (entry of a not-yet-visited block).
struct MustSent {
  bool top = true;
  std::vector<ObjectIndex> ports;  // sorted

  void Add(ObjectIndex index) {
    if (top) return;
    auto it = std::lower_bound(ports.begin(), ports.end(), index);
    if (it == ports.end() || *it != index) ports.insert(it, index);
  }

  // Path intersection; returns true when this value changed.
  bool Join(const MustSent& other) {
    if (other.top) return false;
    if (top) {
      top = false;
      ports = other.ports;
      return true;
    }
    std::vector<ObjectIndex> kept;
    std::set_intersection(ports.begin(), ports.end(), other.ports.begin(), other.ports.end(),
                          std::back_inserter(kept));
    const bool changed = kept.size() != ports.size();
    ports = std::move(kept);
    return changed;
  }
};

struct AbstractState {
  AbstractAd regs[kNumAdRegs];
  MustSent sent;
  // Ports a blocking receive has provably completed from on every path (same intersection
  // lattice as `sent`). Feeds PortUse/ObjectAccess::recvs_before.
  MustSent received;

  bool Join(const AbstractState& other) {
    bool changed = false;
    for (uint8_t r = 0; r < kNumAdRegs; ++r) changed |= regs[r].Join(other.regs[r]);
    changed |= sent.Join(other.sent);
    changed |= received.Join(other.received);
    return changed;
  }
};

struct Analyzer {
  const Program& program;
  const EffectOptions& options;
  const ControlFlowGraph cfg;
  EffectSummary summary;

  // Objects whose access parts this program may overwrite: a load_ad chain through a dirty
  // object must not trust the slot reader's (boot-time) view. Monotone across the fixpoint.
  std::set<ObjectIndex> dirty;
  bool dirty_all = false;

  Analyzer(const Program& p, const EffectOptions& o)
      : program(p), options(o), cfg(ControlFlowGraph::Build(p)) {}

  AbstractState EntryState() const {
    AbstractState state;
    state.sent.top = false;      // entry: nothing sent yet
    state.received.top = false;  // entry: nothing received yet
    if (!options.initial_arg.is_null()) {
      state.regs[kArgAdReg].Add(options.initial_arg.index());
    } else {
      state.regs[kArgAdReg] = AbstractAd::Top();
    }
    return state;
  }

  AccessDescriptor ReadSlot(ObjectIndex container, uint32_t slot) const {
    if (!options.slot_reader) return {};
    return options.slot_reader(container, slot);
  }

  bool IsDirty(ObjectIndex container) const {
    return dirty_all || dirty.count(container) != 0;
  }

  // Resolves `load_ad dst, container[slot]` into dst. Returns false when the result had to
  // go to top (unknown container or stale snapshot).
  AbstractAd LoadSlot(const AbstractAd& container, uint32_t slot) const {
    if (container.top || !options.slot_reader) {
      // Unknown container: loading through it yields anything. A definitely-null container
      // faults at run time, so the empty result below is never observed.
      return container.top || !container.objs.empty() ? AbstractAd::Top() : AbstractAd();
    }
    AbstractAd out;
    for (ObjectIndex obj : container.objs) {
      if (IsDirty(obj)) return AbstractAd::Top();
      const AccessDescriptor slot_ad = ReadSlot(obj, slot);
      if (!slot_ad.is_null()) out.Add(slot_ad.index());
    }
    return out;
  }

  void MarkStoreInto(const AbstractAd& container) {
    if (container.top) {
      dirty_all = true;
      return;
    }
    for (ObjectIndex obj : container.objs) dirty.insert(obj);
  }

  void HavocRegs(AbstractState& state) {
    for (uint8_t r = 0; r < kNumAdRegs; ++r) state.regs[r] = AbstractAd::Top();
  }

  // Applies one instruction to `state`. When `record` is non-null (the reporting pass),
  // send/receive/call sites are appended to it.
  void Transfer(uint32_t pc, AbstractState& state, EffectSummary* record) {
    const Instruction& in = program.at(pc);
    switch (in.op) {
      case Opcode::kMoveAd:
        state.regs[in.a] = state.regs[in.b];
        break;
      case Opcode::kClearAd:
        state.regs[in.a] = AbstractAd();
        break;
      case Opcode::kLoadData:
      case Opcode::kLoadDataIndexed:
        RecordAccess(pc, AccessKind::kRead, ObjectPart::kData, state.regs[in.b], state,
                     record);
        break;
      case Opcode::kStoreData:
      case Opcode::kStoreDataIndexed:
        RecordAccess(pc, AccessKind::kWrite, ObjectPart::kData, state.regs[in.a], state,
                     record);
        break;
      case Opcode::kLoadAd:
        RecordAccess(pc, AccessKind::kRead, ObjectPart::kAccess, state.regs[in.b], state,
                     record);
        state.regs[in.a] = LoadSlot(state.regs[in.b], in.imm);
        break;
      case Opcode::kLoadAdIndexed:
        // Run-time slot index: any slot of the container could be loaded. Conservative top
        // whenever the container may hold anything at all.
        RecordAccess(pc, AccessKind::kRead, ObjectPart::kAccess, state.regs[in.b], state,
                     record);
        state.regs[in.a] =
            (state.regs[in.b].top || !state.regs[in.b].objs.empty()) ? AbstractAd::Top()
                                                                     : AbstractAd();
        break;
      case Opcode::kStoreAd:
      case Opcode::kStoreAdIndexed:
        RecordAccess(pc, AccessKind::kWrite, ObjectPart::kAccess, state.regs[in.a], state,
                     record);
        MarkStoreInto(state.regs[in.a]);
        break;
      case Opcode::kRestrictRights:
      case Opcode::kAdIsNull:
        break;  // object identity unchanged / data result only
      case Opcode::kCreateObject:
      case Opcode::kCreateSro:
        // A fresh object is never a pre-existing port; model as definitely-not-a-port.
        // Allocation itself mutates only manager metadata, which the kernel serializes, so
        // no access is recorded for the source SRO.
        state.regs[in.a] = AbstractAd();
        break;
      case Opcode::kDestroyObject:
      case Opcode::kDestroySro:
        // Destruction invalidates both halves of the object for every other holder.
        RecordAccess(pc, AccessKind::kWrite, ObjectPart::kData, state.regs[in.a], state,
                     record);
        RecordAccess(pc, AccessKind::kWrite, ObjectPart::kAccess, state.regs[in.a], state,
                     record);
        break;
      case Opcode::kSend:
        RecordUse(pc, PortOp::kSend, state.regs[in.a], /*blocking=*/true, state, record);
        NoteMustSend(state, state.regs[in.a]);
        break;
      case Opcode::kCondSend:
        RecordUse(pc, PortOp::kSend, state.regs[in.a], /*blocking=*/false, state, record);
        break;
      case Opcode::kReceive:
        RecordUse(pc, PortOp::kReceive, state.regs[in.b], /*blocking=*/true, state, record);
        NoteMustReceive(state, state.regs[in.b]);
        state.regs[in.a] = AbstractAd::Top();
        break;
      case Opcode::kCondReceive:
        RecordUse(pc, PortOp::kReceive, state.regs[in.b], /*blocking=*/false, state, record);
        state.regs[in.a] = AbstractAd::Top();
        break;
      case Opcode::kCall:
        RecordCall(pc, state.regs[in.a], in.imm, record);
        state.regs[kArgAdReg] = AbstractAd::Top();  // callee return value
        break;
      case Opcode::kCallLocal:
        RecordCall(pc, state.regs[kDomainAdReg], in.imm, record);
        state.regs[kArgAdReg] = AbstractAd::Top();
        break;
      case Opcode::kOsCall:
        TransferOsCall(pc, in.imm, state, record);
        break;
      case Opcode::kNative:
        // Opaque C++: may move any AD anywhere and jump anywhere.
        summary.has_native = true;
        HavocRegs(state);
        dirty_all = true;
        break;
      default:
        break;  // data / branch / return / halt: no AD effect
    }
  }

  void TransferOsCall(uint32_t pc, uint32_t service, AbstractState& state,
                      EffectSummary* record) {
    switch (service) {
      case kOsYield:
      case kOsGetTime:
      case kOsSetPriority:
      case kOsSetDeadline:
        return;  // data-only services, no AD effect
      case kOsTimedReceive:
        // Receives into a7 from the port in a7 (see kernel.h). Blocking up to the timeout:
        // for deadlock purposes a bounded wait is a guarded wait, so not blocking.
        RecordUse(pc, PortOp::kReceive, state.regs[kArgAdReg], /*blocking=*/false, state,
                  record);
        state.regs[kArgAdReg] = AbstractAd::Top();
        return;
      default:
        // Unknown / package service: opaque like a native step.
        summary.has_native = true;
        HavocRegs(state);
        dirty_all = true;
        return;
    }
  }

  void NoteMustSend(AbstractState& state, const AbstractAd& port) {
    // Only a provably-unique target is a guaranteed send.
    if (!port.top && port.objs.size() == 1) state.sent.Add(port.objs[0]);
  }

  void NoteMustReceive(AbstractState& state, const AbstractAd& port) {
    // Completing a blocking receive from a provably-unique port is a guaranteed join with
    // whoever sent there. Guarded variants (cond/timed receive) complete without a message
    // and never register here.
    if (!port.top && port.objs.size() == 1) state.received.Add(port.objs[0]);
  }

  void RecordAccess(uint32_t pc, AccessKind kind, ObjectPart part, const AbstractAd& object,
                    const AbstractState& state, EffectSummary* record) {
    if (record == nullptr) return;
    if (object.top) {
      // The site may touch any object at all; the race analysis counts this program's
      // unresolved sites but never reports them.
      record->has_unresolved_access = true;
      return;
    }
    // Empty set: a definitely-null register (faults, touches nothing) or a fresh object no
    // other pre-existing summary can name. Either way there is no shared object to report.
    if (object.objs.empty()) return;
    const std::vector<ObjectIndex> recvs_before =
        state.received.top ? std::vector<ObjectIndex>{} : state.received.ports;
    char prefix[16];
    std::snprintf(prefix, sizeof(prefix), "%04u  ", pc);
    const std::string disasm =
        prefix + DisassembleInstruction(program.at(pc), kInvalidObjectIndex, options.symbols);
    for (ObjectIndex obj : object.objs) {
      ObjectAccess access;
      access.kind = kind;
      access.part = part;
      access.pc = pc;
      access.object = obj;
      access.recvs_before = recvs_before;
      access.disasm = disasm;
      record->accesses.push_back(std::move(access));
    }
  }

  void RecordUse(uint32_t pc, PortOp op, const AbstractAd& port, bool blocking,
                 const AbstractState& state, EffectSummary* record) {
    if (record == nullptr) return;
    const std::vector<ObjectIndex> sends_before = state.sent.top
                                                      ? std::vector<ObjectIndex>{}
                                                      : state.sent.ports;
    const std::vector<ObjectIndex> recvs_before = state.received.top
                                                      ? std::vector<ObjectIndex>{}
                                                      : state.received.ports;
    auto emit = [&](ObjectIndex resolved) {
      PortUse use;
      use.op = op;
      use.pc = pc;
      use.port = resolved;
      use.blocking = blocking;
      use.sends_before = sends_before;
      use.recvs_before = recvs_before;
      char prefix[16];
      std::snprintf(prefix, sizeof(prefix), "%04u  ", pc);
      use.disasm = prefix + DisassembleInstruction(program.at(pc), resolved, options.symbols);
      record->uses.push_back(std::move(use));
    };
    if (port.top) {
      emit(kUnresolvedPort);
      if (op == PortOp::kSend) record->has_unresolved_send = true;
      if (op == PortOp::kReceive) record->has_unresolved_receive = true;
      return;
    }
    // Definitely-null port registers fault at run time and communicate with nothing; the
    // verifier reports those, so no use is recorded here.
    for (ObjectIndex obj : port.objs) emit(obj);
  }

  void RecordCall(uint32_t pc, const AbstractAd& domain, uint32_t entry,
                  EffectSummary* record) {
    if (record == nullptr) return;
    auto emit = [&](ObjectIndex callee) {
      DomainCall call;
      call.pc = pc;
      call.entry = entry;
      call.callee_segment = callee;
      record->calls.push_back(call);
    };
    if (domain.top || domain.objs.empty() || !options.slot_reader) {
      emit(kInvalidObjectIndex);
      return;
    }
    bool emitted = false;
    for (ObjectIndex obj : domain.objs) {
      // Domain entries are the leading access slots of the domain object.
      const AccessDescriptor segment = IsDirty(obj) ? AccessDescriptor() : ReadSlot(obj, entry);
      emit(segment.is_null() ? kInvalidObjectIndex : segment.index());
      emitted = true;
    }
    if (!emitted) emit(kInvalidObjectIndex);
  }

  bool HasReachableCycle() const {
    // Iterative DFS over static CFG edges; a back edge to an on-stack block is a loop.
    enum : uint8_t { kWhite, kGray, kBlack };
    std::vector<uint8_t> color(cfg.size(), kWhite);
    std::vector<std::pair<uint32_t, size_t>> stack;  // block id, next-successor cursor
    stack.emplace_back(0, 0);
    color[0] = kGray;
    while (!stack.empty()) {
      auto& [block, cursor] = stack.back();
      const auto& succs = cfg.block(block).successors;
      if (cursor == succs.size()) {
        color[block] = kBlack;
        stack.pop_back();
        continue;
      }
      const uint32_t next = succs[cursor++];
      if (color[next] == kGray) return true;
      if (color[next] == kWhite) {
        color[next] = kGray;
        stack.emplace_back(next, 0);
      }
    }
    return false;
  }

  EffectSummary Run() {
    summary.program_name = program.name();
    if (program.size() == 0) return summary;

    std::vector<AbstractState> entry(cfg.size());
    std::vector<bool> seen(cfg.size(), false);
    std::vector<bool> queued(cfg.size(), false);
    std::vector<uint32_t> worklist;

    auto enqueue = [&](uint32_t block) {
      if (!queued[block]) {
        queued[block] = true;
        worklist.push_back(block);
      }
    };

    auto seed = [&](uint32_t block, const AbstractState& state) {
      if (!seen[block]) {
        seen[block] = true;
        entry[block] = state;
        enqueue(block);
      } else if (entry[block].Join(state)) {
        enqueue(block);
      }
    };

    seed(0, EntryState());
    if (cfg.has_native()) {
      // Native jumps make every block a potential entry with unknown registers (mirrors the
      // verifier's treatment; see cfg.h).
      AbstractState unknown;
      HavocRegs(unknown);
      unknown.sent.top = false;      // no guaranteed sends on an unknown path
      unknown.received.top = false;  // ... and no guaranteed receives either
      for (uint32_t b = 0; b < cfg.size(); ++b) seed(b, unknown);
    }

    // Fixpoint. The dirty set only grows; when it does, resolved loads may need to weaken,
    // so every seen block re-runs.
    while (!worklist.empty()) {
      const uint32_t block = worklist.back();
      worklist.pop_back();
      queued[block] = false;

      const size_t dirty_before = dirty.size();
      const bool dirty_all_before = dirty_all;

      AbstractState state = entry[block];
      const BasicBlock& bb = cfg.block(block);
      for (uint32_t pc = bb.begin; pc < bb.end; ++pc) Transfer(pc, state, nullptr);
      for (uint32_t succ : bb.successors) seed(succ, state);

      if (dirty.size() != dirty_before || dirty_all != dirty_all_before) {
        for (uint32_t b = 0; b < cfg.size(); ++b) {
          if (seen[b]) enqueue(b);
        }
      }
    }

    // Reporting pass: replay each analyzed block once, in program order, recording sites.
    for (uint32_t b = 0; b < cfg.size(); ++b) {
      if (!seen[b]) continue;
      AbstractState state = entry[b];
      const BasicBlock& bb = cfg.block(b);
      for (uint32_t pc = bb.begin; pc < bb.end; ++pc) Transfer(pc, state, &summary);
    }

    FillSendsAfter(seen);

    summary.may_not_terminate = summary.has_native || HasReachableCycle();
    return summary;
  }

  // Backward must-send pass filling ObjectAccess::sends_after: the ports a blocking send
  // with a provably-unique target reaches on *every* path from the access to program exit.
  // The race analysis only trusts these facts for acyclic, native-free programs (each site
  // then executes at most once), so the pass is skipped for opaque programs.
  void FillSendsAfter(const std::vector<bool>& seen) {
    if (summary.has_native || summary.accesses.empty()) return;

    // Unique blocking-send target per pc. A site whose register resolves to several
    // candidates (several PortUse rows at one pc) or to nothing certain is excluded.
    std::map<uint32_t, ObjectIndex> send_at;
    std::set<uint32_t> ambiguous;
    for (const PortUse& use : summary.uses) {
      if (use.op != PortOp::kSend || !use.blocking) continue;
      if (use.port == kUnresolvedPort || ambiguous.count(use.pc) != 0 ||
          send_at.count(use.pc) != 0) {
        send_at.erase(use.pc);
        ambiguous.insert(use.pc);
        continue;
      }
      send_at.emplace(use.pc, use.port);
    }

    // Greatest-fixpoint intersection over reversed CFG edges. out[b] = sends guaranteed
    // after the *end* of block b; exit blocks guarantee nothing.
    std::vector<MustSent> out(cfg.size());  // top = not yet constrained
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t b = cfg.size(); b-- > 0;) {
        if (!seen[b]) continue;
        const BasicBlock& bb = cfg.block(b);
        MustSent next;
        if (bb.successors.empty()) {
          next.top = false;
        } else {
          for (uint32_t succ : bb.successors) {
            MustSent in_succ = out[succ];
            if (!in_succ.top) {
              for (uint32_t pc = cfg.block(succ).begin; pc < cfg.block(succ).end; ++pc) {
                auto it = send_at.find(pc);
                if (it != send_at.end()) in_succ.Add(it->second);
              }
            }
            next.Join(in_succ);
          }
        }
        if (next.top != out[b].top || next.ports != out[b].ports) {
          out[b] = std::move(next);
          changed = true;
        }
      }
    }

    // pc -> block lookup, then per access: later same-block sends plus out[block].
    std::vector<uint32_t> block_of(program.size(), 0);
    for (uint32_t b = 0; b < cfg.size(); ++b) {
      for (uint32_t pc = cfg.block(b).begin; pc < cfg.block(b).end; ++pc) block_of[pc] = b;
    }
    for (ObjectAccess& access : summary.accesses) {
      const uint32_t b = block_of[access.pc];
      MustSent after = out[b];
      if (after.top) {
        // Every path from this block loops forever; nothing is guaranteed (and the race
        // analysis would discard the fact anyway via may_not_terminate).
        after.top = false;
        after.ports.clear();
      }
      for (uint32_t pc = access.pc + 1; pc < cfg.block(b).end; ++pc) {
        auto it = send_at.find(pc);
        if (it != send_at.end()) after.Add(it->second);
      }
      access.sends_after = std::move(after.ports);
    }
  }
};

}  // namespace

bool EffectSummary::SendsTo(ObjectIndex port) const {
  for (const PortUse& use : uses) {
    if (use.op == PortOp::kSend && use.port == port) return true;
  }
  return false;
}

bool EffectSummary::ReceivesFrom(ObjectIndex port) const {
  for (const PortUse& use : uses) {
    if (use.op == PortOp::kReceive && use.port == port) return true;
  }
  return false;
}

bool EffectSummary::Reads(ObjectIndex object, ObjectPart part) const {
  for (const ObjectAccess& access : accesses) {
    if (access.kind == AccessKind::kRead && access.object == object && access.part == part) {
      return true;
    }
  }
  return false;
}

bool EffectSummary::Writes(ObjectIndex object, ObjectPart part) const {
  for (const ObjectAccess& access : accesses) {
    if (access.kind == AccessKind::kWrite && access.object == object && access.part == part) {
      return true;
    }
  }
  return false;
}

EffectSummary EffectAnalyzer::Analyze(const Program& program, const EffectOptions& options) {
  Analyzer analyzer(program, options);
  return analyzer.Run();
}

EffectOptions EffectOptionsForTable(const ObjectTable& table,
                                    const AccessDescriptor& initial_arg,
                                    const SymbolTable* symbols) {
  EffectOptions options;
  options.initial_arg = initial_arg;
  options.symbols = symbols;
  options.slot_reader = [&table](ObjectIndex index, uint32_t slot) -> AccessDescriptor {
    if (index >= table.capacity()) return {};
    const ObjectDescriptor& descriptor = table.At(index);
    if (!descriptor.allocated || slot >= descriptor.access_count()) return {};
    return descriptor.access[slot];
  };
  return options;
}

}  // namespace analysis
}  // namespace imax432

// Whole-system static data-race detection over shared abstract objects.
//
// iMAX's only sanctioned synchronization is port send/receive (paper §"Interprocess
// Communication"): there are no locks, so two processes touching the same object are safe
// only when every conflicting access pair is ordered by message passing or the object is
// privately owned. This pass layers on the PR 2 effect machinery: per-program access
// summaries (effects.h) name the abstract objects a process may read or write, and the
// must-send-after / must-receive-before annotations on each site induce a message-passing
// happens-before relation:
//
//     write w in P,  t in w.sends_after,  P the sole sender of t with a single send site
//     and an acyclic program,  t in r.recvs_before for access r in Q
//         =>  w happens-before r in every execution where both occur.
//
// The relation composes transitively through relay processes (receive t, then provably
// send u) and through domain calls (callee sites are composed into callers by
// ComposeProcesses). Conflicting pairs fall in three tiers:
//
//   ordered    — proven happens-before in one direction; never a race.
//   suppressed — the two processes *may* communicate (directly, transitively, or through
//                opaque/unresolved code or external traffic) but no must-ordering could be
//                proven. Zero-false-positive posture: counted, never reported.
//   reported   — no communication path exists between the two processes in either
//                direction: they are autonomous, so the conflicting pair is concurrent in
//                some execution. These are the candidate races.
//
// The dynamic cross-check for every verdict is the vector-clock sanitizer (sanitizer.h,
// SystemConfig::race_sanitize), which validates reported pairs against concrete traced
// executions. See DESIGN.md §6.2.

#ifndef IMAX432_SRC_ANALYSIS_RACES_RACES_H_
#define IMAX432_SRC_ANALYSIS_RACES_RACES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/deadlock.h"
#include "src/analysis/effects.h"
#include "src/arch/types.h"

namespace imax432 {
namespace analysis {

// One conflicting, unordered, unsuppressed access pair.
struct RacePair {
  std::string first_program;   // alphabetically first of the two, for stable output
  std::string second_program;
  const ObjectAccess* first = nullptr;   // aliases the graph's stored summaries
  const ObjectAccess* second = nullptr;
};

// All candidate races on one (object, part), with a rendered message.
struct RaceDiagnostic {
  ObjectIndex object = kInvalidObjectIndex;
  ObjectPart part = ObjectPart::kData;
  std::vector<RacePair> pairs;
  std::vector<std::string> programs;  // names of involved programs, sorted, deduped
  std::string message;                // multi-line, disassembly-anchored
};

struct RaceAnalysisReport {
  std::vector<RaceDiagnostic> diagnostics;
  uint32_t programs_analyzed = 0;
  uint32_t objects_shared = 0;     // objects accessed (resolved) by more than one process
  uint32_t pairs_checked = 0;      // conflicting cross-process pairs examined
  uint32_t pairs_ordered = 0;      // proven ordered by message-passing happens-before
  uint32_t pairs_suppressed = 0;   // may-communication without a must-order proof
  uint32_t opaque_programs = 0;
  uint32_t unresolved_access_programs = 0;  // some access site did not resolve

  bool ok() const { return diagnostics.empty(); }
};

// One report as text, one block per diagnostic ("" when the report is clean).
std::string FormatRaceReport(const RaceAnalysisReport& report);

// Runs the race analysis over the graph's registered summaries and external topology.
// Pointers in the report alias the graph and stay valid until it is next mutated.
RaceAnalysisReport AnalyzeRaces(const SystemEffectGraph& graph);

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_RACES_RACES_H_

#include "src/analysis/races/sanitizer.h"

#include <cstdio>

namespace imax432 {
namespace analysis {

uint32_t RaceSanitizer::SlotFor(ObjectIndex process) {
  auto it = slots_.find(process);
  if (it != slots_.end()) return it->second;
  const uint32_t slot = static_cast<uint32_t>(clocks_.size());
  slots_.emplace(process, slot);
  clocks_.emplace_back();
  clocks_[slot].Set(slot, 1);  // epochs must be distinguishable from "never observed"
  auto retired = retired_.find(process);
  if (retired != retired_.end()) {
    // The index was reused: the new process was created after the old one terminated, so
    // everything the old incarnation did is ordered before everything this one does. The
    // entry stays behind for OnProcessCreated joins by later processes.
    clocks_[slot].Join(retired->second);
  }
  return slot;
}

void RaceSanitizer::OnProcessCreated(ObjectIndex process) {
  const uint32_t slot = SlotFor(process);
  // Every already-retired process terminated before this one was created — the join edge of
  // a thread join. Without it, generations that never overlap would read as concurrent.
  for (const auto& [index, clock] : retired_) {
    clocks_[slot].Join(clock);
  }
}

void RaceSanitizer::OnSend(ObjectIndex sender, uint64_t seq) {
  const uint32_t slot = SlotFor(sender);
  messages_[seq] = clocks_[slot];
  clocks_[slot].Bump(slot);  // later sender accesses are not released by this message
  ++stats_.messages_stamped;
}

void RaceSanitizer::OnReceive(ObjectIndex receiver, uint64_t seq) {
  auto it = messages_.find(seq);
  if (it == messages_.end()) return;  // injected from outside (PostMessage): no known order
  clocks_[SlotFor(receiver)].Join(it->second);
  messages_.erase(it);
  ++stats_.joins;
}

void RaceSanitizer::OnHandoff(ObjectIndex sender, ObjectIndex receiver) {
  const uint32_t from = SlotFor(sender);
  const uint32_t to = SlotFor(receiver);
  clocks_[to].Join(clocks_[from]);
  clocks_[from].Bump(from);
  ++stats_.joins;
}

const RaceRecord* RaceSanitizer::Report(const Epoch& prior, ObjectIndex process,
                                        ObjectIndex object, ObjectPart part, AccessKind kind,
                                        uint32_t pc, Cycles now) {
  char key[96];
  std::snprintf(key, sizeof(key), "%llu.%u.%u.%u/%u.%u",
                static_cast<unsigned long long>(object), static_cast<unsigned>(part),
                prior.slot, prior.pc, SlotFor(process), pc);
  if (!seen_pairs_.insert(key).second) return nullptr;
  RaceRecord record;
  record.object = object;
  record.part = part;
  record.first_process = prior.process;
  record.first_pc = prior.pc;
  record.first_kind = prior.kind;
  record.second_process = process;
  record.second_pc = pc;
  record.second_kind = kind;
  record.when = now;
  races_.push_back(record);
  ++stats_.races_detected;
  return &races_.back();
}

const RaceRecord* RaceSanitizer::OnAccess(ObjectIndex process, ObjectIndex object,
                                          ObjectPart part, AccessKind kind, uint32_t pc,
                                          Cycles now) {
  ++stats_.accesses_checked;
  const uint32_t slot = SlotFor(process);
  const VectorClock& clock = clocks_[slot];
  ObjectState& state = objects_[(static_cast<uint64_t>(object) << 1) |
                                static_cast<uint64_t>(part)];
  const RaceRecord* detected = nullptr;

  // A prior write by someone this process has not caught up with conflicts with any access.
  if (state.has_write && state.write.slot != slot &&
      state.write.time > clock.Get(state.write.slot)) {
    detected = Report(state.write, process, object, part, kind, pc, now);
  }
  if (kind == AccessKind::kWrite) {
    // ... and a write additionally conflicts with every unordered prior read.
    for (const auto& [read_slot, read] : state.reads) {
      if (read_slot == slot || read.time <= clock.Get(read_slot)) continue;
      const RaceRecord* r = Report(read, process, object, part, kind, pc, now);
      if (detected == nullptr) detected = r;
    }
    state.has_write = true;
    state.write = Epoch{slot, clock.Get(slot), pc, process, kind};
    state.reads.clear();
  } else {
    state.reads[slot] = Epoch{slot, clock.Get(slot), pc, process, kind};
  }
  return detected;
}

void RaceSanitizer::OnProcessRetired(ObjectIndex process) {
  auto it = slots_.find(process);
  if (it == slots_.end()) return;
  retired_[process] = clocks_[it->second];
  slots_.erase(it);
}

void RaceSanitizer::OnObjectDestroyed(ObjectIndex object) {
  objects_.erase(static_cast<uint64_t>(object) << 1);
  objects_.erase((static_cast<uint64_t>(object) << 1) | 1);
}

}  // namespace analysis
}  // namespace imax432

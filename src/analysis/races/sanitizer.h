// Dynamic data-race sanitizer: vector clocks over concrete executions.
//
// The static pass (races.h) proves ordering from summaries; this is its ground-truth
// cross-check (SystemConfig::race_sanitize). The kernel calls in as a pure observer from
// the interpreter — every data / access-part read and write, every port transfer, and
// every process retirement — and the sanitizer maintains:
//
//   - one vector clock per live process (its view of every other process's progress),
//   - one clock per in-flight message, stamped at enqueue with the sender's clock and
//     joined into the receiver at dequeue (direct handoffs join sender into receiver
//     without touching a queue),
//   - FastTrack-style per-(object, part) epochs: the last write and the last read per
//     process since that write.
//
// An access races when its process's clock has not caught up with the epoch of a prior
// conflicting access by another process — i.e. no chain of port transfers orders the two.
// Nothing here consumes virtual time: with the sanitizer off the kernel takes one null
// check per hook, and with it on the simulated timeline is bit-identical.
//
// Process and object indices are reused after retirement/destruction; the sanitizer keys
// internal slots by incarnation (a retiring process folds its final clock into the next
// holder of its index, which is genuinely ordered after it; a destroyed object's epochs
// are dropped).

#ifndef IMAX432_SRC_ANALYSIS_RACES_SANITIZER_H_
#define IMAX432_SRC_ANALYSIS_RACES_SANITIZER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/effects.h"
#include "src/arch/types.h"

namespace imax432 {
namespace analysis {

// One detected race: the earlier access (by epoch) and the current one that tripped it.
struct RaceRecord {
  ObjectIndex object = kInvalidObjectIndex;
  ObjectPart part = ObjectPart::kData;
  ObjectIndex first_process = kInvalidObjectIndex;
  uint32_t first_pc = 0;
  AccessKind first_kind = AccessKind::kWrite;
  ObjectIndex second_process = kInvalidObjectIndex;
  uint32_t second_pc = 0;
  AccessKind second_kind = AccessKind::kWrite;
  Cycles when = 0;  // virtual time of the second access
};

struct RaceSanitizerStats {
  uint64_t accesses_checked = 0;
  uint64_t messages_stamped = 0;
  uint64_t joins = 0;  // receive joins + direct handoffs
  uint64_t races_detected = 0;  // deduplicated by site pair
};

class RaceSanitizer {
 public:
  // --- Port-transfer joins. `seq` is the PortSubsystem transfer sequence number, which
  // identifies one queued message exactly even when the same object is enqueued twice. ---
  void OnSend(ObjectIndex sender, uint64_t seq);
  void OnReceive(ObjectIndex receiver, uint64_t seq);
  // Fast-path handoff: the message never touches a queue.
  void OnHandoff(ObjectIndex sender, ObjectIndex receiver);

  // --- Access checks, called at interpretation time after the AU accepted the access.
  // Returns the freshly recorded race, or nullptr (ordered, same-process, or a duplicate
  // of an already-reported site pair). The pointer is valid until the next OnAccess. ---
  const RaceRecord* OnAccess(ObjectIndex process, ObjectIndex object, ObjectPart part,
                             AccessKind kind, uint32_t pc, Cycles now);

  // --- Lifecycle. ---
  // Thread-create/join analog: a process created after others terminated is ordered after
  // everything they did, whatever index it lands on.
  void OnProcessCreated(ObjectIndex process);
  void OnProcessRetired(ObjectIndex process);
  void OnObjectDestroyed(ObjectIndex object);

  const std::vector<RaceRecord>& races() const { return races_; }
  const RaceSanitizerStats& stats() const { return stats_; }

 private:
  // Grow-only clock, indexed by process slot. Missing entries read as 0.
  struct VectorClock {
    std::vector<uint64_t> time;

    uint64_t Get(uint32_t slot) const { return slot < time.size() ? time[slot] : 0; }
    void Set(uint32_t slot, uint64_t value) {
      if (slot >= time.size()) time.resize(slot + 1, 0);
      time[slot] = value;
    }
    void Bump(uint32_t slot) { Set(slot, Get(slot) + 1); }
    void Join(const VectorClock& other) {
      if (other.time.size() > time.size()) time.resize(other.time.size(), 0);
      for (size_t i = 0; i < other.time.size(); ++i) {
        if (other.time[i] > time[i]) time[i] = other.time[i];
      }
    }
  };

  struct Epoch {
    uint32_t slot = 0;
    uint64_t time = 0;
    uint32_t pc = 0;
    ObjectIndex process = kInvalidObjectIndex;
    AccessKind kind = AccessKind::kWrite;
  };

  struct ObjectState {
    bool has_write = false;
    Epoch write;
    std::map<uint32_t, Epoch> reads;  // slot -> last read since the last write
  };

  uint32_t SlotFor(ObjectIndex process);
  const RaceRecord* Report(const Epoch& prior, ObjectIndex process, ObjectIndex object,
                           ObjectPart part, AccessKind kind, uint32_t pc, Cycles now);

  std::map<ObjectIndex, uint32_t> slots_;        // live process index -> slot
  std::vector<VectorClock> clocks_;              // per slot
  std::map<ObjectIndex, VectorClock> retired_;   // index -> final clock, until reused
  std::map<uint64_t, VectorClock> messages_;     // in-flight, by transfer seq
  std::map<uint64_t, ObjectState> objects_;      // (object << 1) | part
  std::vector<RaceRecord> races_;
  std::set<std::string> seen_pairs_;             // dedupe key per reported site pair
  RaceSanitizerStats stats_;
};

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_RACES_SANITIZER_H_

#include "src/analysis/races/races.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/isa/disassembler.h"

namespace imax432 {
namespace analysis {
namespace {

std::string ObjectLabel(ObjectIndex object, const SymbolTable* symbols) {
  std::string label = "object " + std::to_string(object);
  if (symbols != nullptr) {
    if (const std::string* name = symbols->Find(object)) label += " '" + *name + "'";
  }
  return label;
}

const char* PartName(ObjectPart part) {
  return part == ObjectPart::kData ? "data" : "access";
}

const char* KindName(AccessKind kind) {
  return kind == AccessKind::kRead ? "reads" : "writes";
}

// The whole analysis over one composed system. Built once per AnalyzeRaces call.
struct RaceAnalyzer {
  const SystemEffectGraph& graph;
  const std::vector<EffectiveProgram> effective;
  RaceAnalysisReport report;

  // Per-port resolved traffic, over every composed use (any op kind, guarded included).
  std::map<ObjectIndex, std::set<uint32_t>> senders;    // port -> process ids
  std::map<ObjectIndex, std::set<uint32_t>> receivers;  // port -> process ids
  std::map<ObjectIndex, uint32_t> send_sites;           // port -> total send-site rows
  // port -> the one send row when send_sites == 1 (site-level must facts live on it).
  std::map<ObjectIndex, const OwnedPortUse*> sole_send_row;
  bool unknown_sender = false;  // some opaque / unresolved-send program could feed any port

  // May-communication reachability, processes plus one wildcard node for everything the
  // summaries cannot see (opaque code, unresolved chains, kernel/device traffic).
  std::vector<std::vector<bool>> reach;

  // Happens-before relay closure: hb_reach[t] = ports whose guaranteed receive is provably
  // ordered after a send on t (t itself included).
  std::map<ObjectIndex, std::set<ObjectIndex>> hb_reach;

  explicit RaceAnalyzer(const SystemEffectGraph& g)
      : graph(g), effective(ComposeProcesses(g)) {}

  // A send on `port` can be matched to one known site: process `p` is its only possible
  // sender, sends from exactly one site in its own (root) program, and that program cannot
  // loop — so at most one message ever exists on the port and any completed receive is
  // ordered after everything that must precede the send.
  bool QualifiedSender(ObjectIndex port, uint32_t* sender_out = nullptr) const {
    if (unknown_sender || graph.external_senders().count(port) != 0) return false;
    auto it = senders.find(port);
    if (it == senders.end() || it->second.size() != 1) return false;
    auto sites = send_sites.find(port);
    if (sites == send_sites.end() || sites->second != 1) return false;
    const uint32_t p = *it->second.begin();
    if (effective[p].may_not_terminate) return false;
    const OwnedPortUse* row = sole_send_row.at(port);
    // Composed callee sites may run once per call site; only the root program's single
    // site is provably executed at most once.
    if (row->origin_segment != effective[p].segment) return false;
    if (sender_out != nullptr) *sender_out = p;
    return true;
  }

  void BuildTraffic() {
    const uint32_t n = static_cast<uint32_t>(effective.size());
    for (uint32_t p = 0; p < n; ++p) {
      const EffectiveProgram& e = effective[p];
      if (e.opaque) report.opaque_programs++;
      if (e.unresolved_access) report.unresolved_access_programs++;
      if (e.opaque || e.unresolved_send) unknown_sender = true;
      for (const OwnedPortUse& owned : e.uses) {
        if (owned.use->port == kUnresolvedPort) continue;
        if (owned.use->op == PortOp::kSend) {
          senders[owned.use->port].insert(p);
          if (++send_sites[owned.use->port] == 1) {
            sole_send_row[owned.use->port] = &owned;
          }
        } else {
          receivers[owned.use->port].insert(p);
        }
      }
    }
  }

  void BuildMayReach() {
    // Node n is the wildcard: it stands for every actor the summaries cannot see and may
    // send to or receive from anything. It only participates when such an actor exists.
    const uint32_t n = static_cast<uint32_t>(effective.size());
    bool unknown_exists =
        !graph.external_senders().empty() || !graph.external_receivers().empty();
    std::vector<bool> sends_any(n, false), receives_any(n, false);
    for (uint32_t p = 0; p < n; ++p) {
      const EffectiveProgram& e = effective[p];
      if (e.opaque || e.unresolved_send || e.unresolved_receive) unknown_exists = true;
      for (const OwnedPortUse& owned : e.uses) {
        (owned.use->op == PortOp::kSend ? sends_any : receives_any)[p] = true;
      }
      if (e.opaque) sends_any[p] = receives_any[p] = true;
    }

    std::vector<std::set<uint32_t>> adjacency(n + 1);
    for (const auto& [port, from] : senders) {
      auto it = receivers.find(port);
      if (it == receivers.end()) continue;
      for (uint32_t s : from) {
        for (uint32_t r : it->second) {
          if (s != r) adjacency[s].insert(r);
        }
      }
    }
    if (unknown_exists) {
      for (uint32_t p = 0; p < n; ++p) {
        if (sends_any[p]) adjacency[p].insert(n);
        if (receives_any[p]) adjacency[n].insert(p);
      }
    }

    reach.assign(n + 1, std::vector<bool>(n + 1, false));
    for (uint32_t start = 0; start <= n; ++start) {
      std::vector<uint32_t> stack{start};
      while (!stack.empty()) {
        const uint32_t node = stack.back();
        stack.pop_back();
        for (uint32_t next : adjacency[node]) {
          if (!reach[start][next]) {
            reach[start][next] = true;
            stack.push_back(next);
          }
        }
      }
    }
  }

  void BuildHbRelays() {
    // Relay edge t -> u: the (qualified) sole send site of u completes only after a
    // guaranteed receive from t, so ordering carried by t extends to u.
    std::map<ObjectIndex, std::set<ObjectIndex>> edges;
    std::set<ObjectIndex> qualified;
    for (const auto& [port, rows] : send_sites) {
      (void)rows;
      if (!QualifiedSender(port)) continue;
      qualified.insert(port);
      for (ObjectIndex before : sole_send_row.at(port)->use->recvs_before) {
        edges[before].insert(port);
      }
    }
    for (ObjectIndex t : qualified) {
      std::set<ObjectIndex>& closed = hb_reach[t];
      std::vector<ObjectIndex> stack{t};
      closed.insert(t);
      while (!stack.empty()) {
        const ObjectIndex node = stack.back();
        stack.pop_back();
        auto it = edges.find(node);
        if (it == edges.end()) continue;
        for (ObjectIndex next : it->second) {
          if (closed.insert(next).second) stack.push_back(next);
        }
      }
    }
  }

  // True when `first` provably happens-before `second` in every execution where both run.
  bool Ordered(uint32_t p, const OwnedAccess& first, uint32_t q,
               const OwnedAccess& second) const {
    if (effective[p].may_not_terminate) return false;
    // sends_after facts are computed in the frame of the summary that owns the site; only
    // the root program's frame is the process's own single execution.
    if (first.origin_segment != effective[p].segment) return false;
    (void)q;
    for (ObjectIndex t : first.access->sends_after) {
      uint32_t sender = 0;
      if (!QualifiedSender(t, &sender) || sender != p) continue;
      auto closed = hb_reach.find(t);
      if (closed == hb_reach.end()) continue;
      for (ObjectIndex u : second.access->recvs_before) {
        if (closed->second.count(u) != 0) return true;
      }
    }
    return false;
  }

  void CheckPairs() {
    struct Site {
      uint32_t proc = 0;
      const OwnedAccess* owned = nullptr;
    };
    std::map<std::pair<ObjectIndex, uint8_t>, std::vector<Site>> by_object;
    for (uint32_t p = 0; p < static_cast<uint32_t>(effective.size()); ++p) {
      for (const OwnedAccess& owned : effective[p].accesses) {
        by_object[{owned.access->object, static_cast<uint8_t>(owned.access->part)}]
            .push_back({p, &owned});
      }
    }

    std::set<ObjectIndex> shared;
    for (const auto& [key, sites] : by_object) {
      std::set<uint32_t> procs;
      for (const Site& site : sites) procs.insert(site.proc);
      if (procs.size() > 1) shared.insert(key.first);
    }
    report.objects_shared = static_cast<uint32_t>(shared.size());

    for (const auto& [key, sites] : by_object) {
      RaceDiagnostic diagnostic;
      diagnostic.object = key.first;
      diagnostic.part = static_cast<ObjectPart>(key.second);
      for (size_t i = 0; i < sites.size(); ++i) {
        for (size_t j = i + 1; j < sites.size(); ++j) {
          const Site& a = sites[i];
          const Site& b = sites[j];
          if (a.proc == b.proc) continue;
          if (a.owned->access->kind != AccessKind::kWrite &&
              b.owned->access->kind != AccessKind::kWrite) {
            continue;  // read/read never conflicts
          }
          report.pairs_checked++;
          if (Ordered(a.proc, *a.owned, b.proc, *b.owned) ||
              Ordered(b.proc, *b.owned, a.proc, *a.owned)) {
            report.pairs_ordered++;
            continue;
          }
          if (reach[a.proc][b.proc] || reach[b.proc][a.proc]) {
            // The two processes may communicate; without a must-order proof the pair is
            // ambiguous, and ambiguity never becomes an error (zero-FP posture).
            report.pairs_suppressed++;
            continue;
          }
          RacePair pair;
          const std::string& name_a = effective[a.proc].own->program_name;
          const std::string& name_b = effective[b.proc].own->program_name;
          const bool a_first = name_a <= name_b;
          pair.first_program = a_first ? name_a : name_b;
          pair.second_program = a_first ? name_b : name_a;
          pair.first = a_first ? a.owned->access : b.owned->access;
          pair.second = a_first ? b.owned->access : a.owned->access;
          diagnostic.pairs.push_back(std::move(pair));
        }
      }
      if (diagnostic.pairs.empty()) continue;
      RenderDiagnostic(diagnostic);
      report.diagnostics.push_back(std::move(diagnostic));
    }
  }

  void RenderDiagnostic(RaceDiagnostic& diagnostic) const {
    std::set<std::string> names;
    std::string message = std::string("error  data-race  ") +
                          ObjectLabel(diagnostic.object, graph.symbols()) + " (" +
                          PartName(diagnostic.part) + " part): " +
                          std::to_string(diagnostic.pairs.size()) +
                          " conflicting access pair(s) with no ordering\n";
    for (const RacePair& pair : diagnostic.pairs) {
      names.insert(pair.first_program);
      names.insert(pair.second_program);
      message += "  " + pair.first_program + " " + KindName(pair.first->kind) + " / " +
                 pair.second_program + " " + KindName(pair.second->kind) + ":\n";
      message += "    | " + pair.first_program + ": " + pair.first->disasm + "\n";
      message += "    | " + pair.second_program + ": " + pair.second->disasm + "\n";
    }
    diagnostic.programs.assign(names.begin(), names.end());
    diagnostic.message = std::move(message);
  }

  RaceAnalysisReport Run() {
    report.programs_analyzed = graph.program_count();
    BuildTraffic();
    BuildMayReach();
    BuildHbRelays();
    CheckPairs();
    return std::move(report);
  }
};

}  // namespace

std::string FormatRaceReport(const RaceAnalysisReport& report) {
  std::string out;
  for (const RaceDiagnostic& diagnostic : report.diagnostics) out += diagnostic.message;
  return out;
}

RaceAnalysisReport AnalyzeRaces(const SystemEffectGraph& graph) {
  return RaceAnalyzer(graph).Run();
}

}  // namespace analysis
}  // namespace imax432

// System-wide port-communication analysis: wait-for graph, deadlock cycles, orphaned and
// starved ports.
//
// The graph holds one EffectSummary (effects.h) per registered instruction segment, plus the
// kernel's knowledge of external traffic (PostMessage injections, fault / scheduler /
// dispatch ports the kernel itself feeds or drains). Analyze() composes domain-call callees
// into their callers, then derives per-port sender/receiver sets and reports:
//
//   kDeadlockCycle — a cycle of programs each blocked in an unguarded receive on a port fed
//       only from inside the cycle. Request/reply pairs are recognized by the must-send
//       ("primed") sets: a receive preceded on every path by a send into the cycle cannot be
//       the first blocker, so such cycles are suppressed.
//   kOrphanPort    — a port some program sends to but nothing can ever receive from:
//       unbounded queue growth.
//   kStarvedPort   — a port some program receive-blocks on but nothing can ever send to:
//       permanent block.
//
// Soundness posture: the detector only trusts *resolved* traffic. Any program containing
// native steps, unknown OS services, or unresolvable sends could feed any port, so its
// presence suppresses cycle/starvation claims (and unresolvable receives suppress orphan
// claims) rather than producing false alarms. The report counts how much was suppressed.

#ifndef IMAX432_SRC_ANALYSIS_DEADLOCK_H_
#define IMAX432_SRC_ANALYSIS_DEADLOCK_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/effects.h"
#include "src/arch/types.h"

namespace imax432 {

class SymbolTable;  // disassembler.h

namespace analysis {

enum class SystemRule : uint8_t {
  kDeadlockCycle,
  kOrphanPort,
  kStarvedPort,
};

const char* SystemRuleName(SystemRule rule);

struct SystemDiagnostic {
  SystemRule rule = SystemRule::kDeadlockCycle;
  // Rendered, multi-line, disassembly-anchored: names every involved program and port.
  std::string message;
  std::vector<std::string> programs;   // names of involved programs
  std::vector<ObjectIndex> ports;      // involved ports, sorted
};

struct SystemAnalysisReport {
  std::vector<SystemDiagnostic> diagnostics;
  uint32_t programs_analyzed = 0;
  uint32_t ports_seen = 0;           // distinct ports appearing in resolved uses
  uint32_t opaque_programs = 0;      // native / unknown-service / unresolved-call programs
  uint32_t unresolved_send_programs = 0;
  uint32_t unresolved_receive_programs = 0;

  bool ok() const { return diagnostics.empty(); }
};

// One report as text, one block per diagnostic ("" when the report is clean).
std::string FormatReport(const SystemAnalysisReport& report);

// How a summarized program generates traffic. A process runs autonomously and is an actor
// in the wait-for graph; a domain entry executes only when some process calls into it, so
// its effects count solely through composition into its callers.
enum class ProgramKind : uint8_t { kProcess, kDomainEntry };

// One registered summary plus how it runs.
struct ProgramEntry {
  EffectSummary summary;
  ProgramKind kind = ProgramKind::kProcess;
};

// Incremental store of per-program summaries plus external port topology. The kernel owns
// one and feeds it as programs register (see Kernel::AnalyzeSystem); tools and tests build
// standalone instances.
class SystemEffectGraph {
 public:
  // Registers (or replaces) the summary for the program in instruction segment `segment`.
  void AddProgram(ObjectIndex segment, EffectSummary summary,
                  ProgramKind kind = ProgramKind::kProcess);
  // Drops a program (segment reclaimed by GC).
  void RemoveProgram(ObjectIndex segment);
  bool HasProgram(ObjectIndex segment) const { return programs_.count(segment) != 0; }
  uint32_t program_count() const { return static_cast<uint32_t>(programs_.size()); }

  // Declares traffic originating outside any summarized program: the kernel posting to a
  // fault/scheduler port, a device, a test harness. An external sender keeps a port's
  // receivers unblocked forever; an external receiver keeps its queue drained.
  void MarkExternalSender(ObjectIndex port) { external_senders_.insert(port); }
  void MarkExternalReceiver(ObjectIndex port) { external_receivers_.insert(port); }

  void set_symbols(const SymbolTable* symbols) { symbols_ = symbols; }

  const std::map<ObjectIndex, ProgramEntry>& programs() const { return programs_; }
  const std::set<ObjectIndex>& external_senders() const { return external_senders_; }
  const std::set<ObjectIndex>& external_receivers() const { return external_receivers_; }
  const SymbolTable* symbols() const { return symbols_; }

  SystemAnalysisReport Analyze() const;

 private:
  std::map<ObjectIndex, ProgramEntry> programs_;
  std::set<ObjectIndex> external_senders_;
  std::set<ObjectIndex> external_receivers_;
  const SymbolTable* symbols_ = nullptr;
};

// A port use / object access attributed to the program whose behavior it contributes to
// (after domain-call composition a caller owns its callees' sites). Pointers alias the
// graph's stored summaries and stay valid until the graph is next mutated.
struct OwnedPortUse {
  const PortUse* use = nullptr;
  ObjectIndex origin_segment = kInvalidObjectIndex;  // segment the site's code lives in
};

struct OwnedAccess {
  const ObjectAccess* access = nullptr;
  ObjectIndex origin_segment = kInvalidObjectIndex;
};

// Per-process view after composing domain callees into callers (transitively, cycle-safe).
struct EffectiveProgram {
  ObjectIndex segment = kInvalidObjectIndex;
  const EffectSummary* own = nullptr;  // the process's own (pre-composition) summary
  std::vector<OwnedPortUse> uses;
  std::vector<OwnedAccess> accesses;
  bool opaque = false;  // native steps, unknown services, or calls into unknown code
  bool unresolved_send = false;
  bool unresolved_receive = false;
  bool unresolved_access = false;
  bool may_not_terminate = false;  // any composed summary may loop or is opaque
};

// Composes every registered process (domain entries contribute only through their callers).
// Shared between the deadlock pass and the race pass (races/races.h).
std::vector<EffectiveProgram> ComposeProcesses(const SystemEffectGraph& graph);

// "port N" / "port N 'name'" for diagnostics.
std::string PortLabel(ObjectIndex port, const SymbolTable* symbols);

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_DEADLOCK_H_

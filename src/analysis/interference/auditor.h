// Dynamic interference auditor: the ground-truth cross-check for certified translations.
//
// The static pass (interference.h) certifies objects immutable; the kernel then lets
// certified translation-cache entries skip per-hit revalidation entirely (arch/xlat_cache.h).
// This auditor validates that bargain against the concrete execution
// (SystemConfig::interference_audit): on every certified hit it recomputes what the skipped
// authoritative path would have established — the slot is still allocated, the generation
// still matches the presented AD, the type is unchanged, the object is not quarantined, and
// `data_epoch` still equals the fill-time value (the immutability witness: nothing wrote the
// data part since the certificate was issued). Any mismatch is a violation: the analysis
// certified an object some path mutated or reclaimed without the kernel retracting the
// certificate. The kernel raises a kInterferenceViolation trace event per hit.
//
// Pure observer, same contract as the race sanitizer and lifetime auditor: nothing here
// consumes virtual time, so the simulated timeline is bit-identical with the audit on or
// off, preserving the PR 5 replay contract.

#ifndef IMAX432_SRC_ANALYSIS_INTERFERENCE_AUDITOR_H_
#define IMAX432_SRC_ANALYSIS_INTERFERENCE_AUDITOR_H_

#include <cstdint>
#include <map>

#include "src/arch/types.h"

namespace imax432 {

class ObjectTable;

namespace analysis {

enum class InterferenceViolationKind : uint8_t {
  kFreed = 0,       // slot unallocated or generation moved past the certified AD
  kMutated = 1,     // data_epoch drifted from the fill-time value
  kQuarantined = 2, // patrol quarantined the object after certification
  kRetyped = 3,     // descriptor type changed under the certificate
};
const char* InterferenceViolationKindName(InterferenceViolationKind kind);

// One certified cache hit that failed its authoritative recheck.
struct InterferenceViolationRec {
  ObjectIndex object = kInvalidObjectIndex;
  uint32_t generation = 0;
  InterferenceViolationKind kind = InterferenceViolationKind::kFreed;
  uint32_t recorded_epoch = 0;  // fill-time data_epoch
  uint32_t observed_epoch = 0;  // live data_epoch at the failing hit
};

struct InterferenceAuditorStats {
  uint64_t certified_tracked = 0;  // distinct certified objects seen
  uint64_t hits_checked = 0;       // certified cache hits cross-checked
  uint64_t violations = 0;
};

class InterferenceAuditor {
 public:
  struct Check {
    bool ok = true;
    InterferenceViolationRec violation;
  };

  // Cross-checks one certified cache hit against the live table. `fill_data_epoch` and
  // `fill_type` are the values recorded when the entry was filled.
  Check CheckCertifiedHit(const ObjectTable& table, ObjectIndex object, uint32_t generation,
                          uint32_t fill_data_epoch, uint8_t fill_type);

  const InterferenceAuditorStats& stats() const { return stats_; }

 private:
  std::map<ObjectIndex, uint32_t> tracked_;  // object -> generation first seen certified
  InterferenceAuditorStats stats_;
};

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_INTERFERENCE_AUDITOR_H_

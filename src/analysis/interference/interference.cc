#include "src/analysis/interference/interference.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/analysis/cfg.h"
#include "src/isa/disassembler.h"

namespace imax432 {
namespace analysis {
namespace {

constexpr uint32_t kUnreached = 0xffffffffu;

// Instructions that end an inter-sync region: every blocking rendezvous the kernel arbitrates
// (send/receive and their guarded variants), domain call/return (context switch through the
// dispatching mix), object destruction (an object-table mutation other processes observe),
// and any OS service or native step (kernel code runs with bus arbitration).
bool IsSyncInstruction(Opcode op) {
  switch (op) {
    case Opcode::kSend:
    case Opcode::kReceive:
    case Opcode::kCondSend:
    case Opcode::kCondReceive:
    case Opcode::kCall:
    case Opcode::kCallLocal:
    case Opcode::kReturn:
    case Opcode::kDestroyObject:
    case Opcode::kDestroySro:
    case Opcode::kOsCall:
    case Opcode::kNative:
      return true;
    default:
      return false;
  }
}

std::string ObjectLabel(ObjectIndex object, const SymbolTable* symbols) {
  std::string label = "object " + std::to_string(object);
  if (symbols != nullptr) {
    if (const std::string* name = symbols->Find(object)) label += " '" + *name + "'";
  }
  return label;
}

const char* PartName(ObjectPart part) {
  return part == ObjectPart::kData ? "data" : "access";
}

const char* KindName(AccessKind kind) {
  return kind == AccessKind::kRead ? "reads" : "writes";
}

// Minimum number of sync instructions executed on any path from entry to each pc. Monotone
// min-fixpoint over the CFG: depths only decrease and are bounded below by 0, so the
// worklist terminates. An access at a sync pc belongs to the region *before* the sync (the
// destroy's object-table write is part of crossing the boundary).
std::vector<uint32_t> ComputeRegions(const Program& program, const ControlFlowGraph& cfg,
                                     uint32_t* region_count) {
  std::vector<uint32_t> region_of(program.size(), 0);
  *region_count = 1;
  if (program.size() == 0) return region_of;
  if (cfg.has_native()) return region_of;  // edges unknowable; summary is opaque anyway

  std::vector<uint32_t> entry_depth(cfg.size(), kUnreached);
  const uint32_t entry = cfg.block_of(0);
  entry_depth[entry] = 0;
  std::vector<uint32_t> worklist{entry};
  while (!worklist.empty()) {
    const uint32_t id = worklist.back();
    worklist.pop_back();
    const BasicBlock& block = cfg.block(id);
    uint32_t depth = entry_depth[id];
    for (uint32_t pc = block.begin; pc < block.end; ++pc) {
      if (IsSyncInstruction(program.at(pc).op) && depth < kUnreached - 1) ++depth;
    }
    for (uint32_t succ : block.successors) {
      if (depth < entry_depth[succ]) {
        entry_depth[succ] = depth;
        worklist.push_back(succ);
      }
    }
  }

  uint32_t max_region = 0;
  for (uint32_t id = 0; id < cfg.size(); ++id) {
    if (entry_depth[id] == kUnreached) continue;  // unreachable: no access site lands here
    const BasicBlock& block = cfg.block(id);
    uint32_t depth = entry_depth[id];
    for (uint32_t pc = block.begin; pc < block.end; ++pc) {
      region_of[pc] = depth;
      max_region = std::max(max_region, depth);
      if (IsSyncInstruction(program.at(pc).op)) ++depth;
    }
  }
  *region_count = max_region + 1;
  return region_of;
}

bool MatchesPart(const FootprintEntry& entry, ObjectIndex object, ObjectPart part) {
  return entry.object == object && entry.part == part;
}

}  // namespace

bool InterferenceSummary::Reads(ObjectIndex object, ObjectPart part) const {
  for (const FootprintEntry& entry : footprint) {
    if (entry.kind == AccessKind::kRead && MatchesPart(entry, object, part)) return true;
  }
  return false;
}

bool InterferenceSummary::Writes(ObjectIndex object, ObjectPart part) const {
  for (const FootprintEntry& entry : footprint) {
    if (entry.kind == AccessKind::kWrite && MatchesPart(entry, object, part)) return true;
  }
  return false;
}

bool InterferenceSummary::WritesPublished(ObjectIndex object, ObjectPart part) const {
  bool any = false;
  for (const FootprintEntry& entry : footprint) {
    if (entry.kind != AccessKind::kWrite || !MatchesPart(entry, object, part)) continue;
    if (!entry.published) return false;
    any = true;
  }
  return any;
}

InterferenceSummary InterferenceAnalyzer::Analyze(const Program& program,
                                                 const EffectOptions& options) {
  return Analyze(program, options, EffectAnalyzer::Analyze(program, options));
}

InterferenceSummary InterferenceAnalyzer::Analyze(const Program& program,
                                                  const EffectOptions& options,
                                                  const EffectSummary& effects) {
  (void)options;  // resolution already happened when `effects` was computed
  InterferenceSummary summary;
  summary.program_name = effects.program_name;
  summary.opaque = effects.has_native;
  summary.unresolved = effects.has_unresolved_access;
  summary.may_not_terminate = effects.may_not_terminate;

  const ControlFlowGraph cfg = ControlFlowGraph::Build(program);
  const std::vector<uint32_t> region_of =
      ComputeRegions(program, cfg, &summary.region_count);
  for (uint32_t pc = 0; pc < program.size(); ++pc) {
    if (IsSyncInstruction(program.at(pc).op)) ++summary.sync_count;
  }

  summary.footprint.reserve(effects.accesses.size());
  for (const ObjectAccess& access : effects.accesses) {
    FootprintEntry entry;
    entry.kind = access.kind;
    entry.part = access.part;
    entry.pc = access.pc;
    entry.region = access.pc < region_of.size() ? region_of[access.pc] : 0;
    entry.object = access.object;
    entry.published = access.kind == AccessKind::kWrite && !access.sends_after.empty();
    entry.disasm = access.disasm;
    summary.footprint.push_back(std::move(entry));
  }
  return summary;
}

const char* PairVerdictName(PairVerdict verdict) {
  switch (verdict) {
    case PairVerdict::kIndependent: return "independent";
    case PairVerdict::kInterfering: return "interfering";
    case PairVerdict::kSuppressed: return "suppressed";
  }
  return "?";
}

const char* CacheGradeName(CacheGrade grade) {
  switch (grade) {
    case CacheGrade::kImmutable: return "immutable";
    case CacheGrade::kPublishedOnly: return "published-only";
    case CacheGrade::kMutable: return "mutable";
  }
  return "?";
}

namespace {

// The whole Phase 2 composition over one system. Built once per AnalyzeInterference call.
struct InterferenceComposer {
  const SystemEffectGraph& graph;
  const std::map<ObjectIndex, InterferenceSummary>& summaries;
  const std::vector<EffectiveProgram> effective;
  InterferenceAnalysisReport report;

  // Per-port resolved traffic (for the may-communication closure, races.cc idiom).
  std::map<ObjectIndex, std::set<uint32_t>> senders;
  std::map<ObjectIndex, std::set<uint32_t>> receivers;
  // May-communication reachability; node n is the wildcard for actors the summaries cannot
  // see (opaque code, unresolved chains, kernel/device traffic).
  std::vector<std::vector<bool>> reach;

  // Per-process resolved footprint: (object, part) -> {reads?, writes?}.
  struct PartUseBits {
    bool read = false;
    bool write = false;
  };
  std::vector<std::map<std::pair<ObjectIndex, uint8_t>, PartUseBits>> touches;

  InterferenceComposer(const SystemEffectGraph& g,
                       const std::map<ObjectIndex, InterferenceSummary>& s)
      : graph(g), summaries(s), effective(ComposeProcesses(g)) {}

  bool Resolved(uint32_t p) const {
    return !effective[p].opaque && !effective[p].unresolved_access;
  }

  void BuildTraffic() {
    const uint32_t n = static_cast<uint32_t>(effective.size());
    touches.resize(n);
    for (uint32_t p = 0; p < n; ++p) {
      const EffectiveProgram& e = effective[p];
      if (e.opaque) report.opaque_programs++;
      if (e.unresolved_access) report.unresolved_programs++;
      for (const OwnedPortUse& owned : e.uses) {
        if (owned.use->port == kUnresolvedPort) continue;
        (owned.use->op == PortOp::kSend ? senders : receivers)[owned.use->port].insert(p);
      }
      for (const OwnedAccess& owned : e.accesses) {
        PartUseBits& bits = touches[p][{owned.access->object,
                                        static_cast<uint8_t>(owned.access->part)}];
        (owned.access->kind == AccessKind::kWrite ? bits.write : bits.read) = true;
      }
    }
  }

  void BuildMayReach() {
    const uint32_t n = static_cast<uint32_t>(effective.size());
    bool unknown_exists =
        !graph.external_senders().empty() || !graph.external_receivers().empty();
    std::vector<bool> sends_any(n, false), receives_any(n, false);
    for (uint32_t p = 0; p < n; ++p) {
      const EffectiveProgram& e = effective[p];
      if (e.opaque || e.unresolved_send || e.unresolved_receive) unknown_exists = true;
      for (const OwnedPortUse& owned : e.uses) {
        (owned.use->op == PortOp::kSend ? sends_any : receives_any)[p] = true;
      }
      if (e.opaque) sends_any[p] = receives_any[p] = true;
    }

    std::vector<std::set<uint32_t>> adjacency(n + 1);
    for (const auto& [port, from] : senders) {
      auto it = receivers.find(port);
      if (it == receivers.end()) continue;
      for (uint32_t s : from) {
        for (uint32_t r : it->second) {
          if (s != r) adjacency[s].insert(r);
        }
      }
    }
    if (unknown_exists) {
      for (uint32_t p = 0; p < n; ++p) {
        if (sends_any[p]) adjacency[p].insert(n);
        if (receives_any[p]) adjacency[n].insert(p);
      }
    }

    reach.assign(n + 1, std::vector<bool>(n + 1, false));
    for (uint32_t start = 0; start <= n; ++start) {
      std::vector<uint32_t> stack{start};
      while (!stack.empty()) {
        const uint32_t node = stack.back();
        stack.pop_back();
        for (uint32_t next : adjacency[node]) {
          if (!reach[start][next]) {
            reach[start][next] = true;
            stack.push_back(next);
          }
        }
      }
    }
  }

  // Region tag for a composed access site, from the origin segment's Phase 1 summary ("" when
  // the segment has no summary — region structure is additive diagnostics only).
  std::string RegionTag(const OwnedAccess& owned) const {
    auto it = summaries.find(owned.origin_segment);
    if (it == summaries.end()) return "";
    for (const FootprintEntry& entry : it->second.footprint) {
      if (entry.pc == owned.access->pc && entry.object == owned.access->object &&
          entry.part == owned.access->part && entry.kind == owned.access->kind) {
        return " [region " + std::to_string(entry.region) + "/" +
               std::to_string(it->second.region_count) + "]";
      }
    }
    return "";
  }

  void BuildVerdicts() {
    const uint32_t n = static_cast<uint32_t>(effective.size());
    for (uint32_t p = 0; p < n; ++p) {
      for (uint32_t q = p + 1; q < n; ++q) {
        InterferenceVerdict verdict;
        const std::string& name_p = effective[p].own->program_name;
        const std::string& name_q = effective[q].own->program_name;
        const bool p_first = name_p <= name_q;
        verdict.first_program = p_first ? name_p : name_q;
        verdict.second_program = p_first ? name_q : name_p;

        if (!Resolved(p) || !Resolved(q)) {
          // Independence licenses parallel execution; an opaque or unresolved side could
          // touch anything, so neither independence nor interference is claimable.
          verdict.verdict = PairVerdict::kSuppressed;
          report.pairs_suppressed++;
          if (effective[p].opaque || effective[q].opaque) {
            report.suppressed_by_opacity++;
          } else {
            report.suppressed_by_unresolved++;
          }
          report.verdicts.push_back(std::move(verdict));
          continue;
        }

        std::set<ObjectIndex> conflicts;
        bool read_sharing = false;
        const auto& small = touches[p].size() <= touches[q].size() ? touches[p] : touches[q];
        const auto& large = touches[p].size() <= touches[q].size() ? touches[q] : touches[p];
        for (const auto& [key, bits] : small) {
          auto other = large.find(key);
          if (other == large.end()) continue;
          if (bits.write || other->second.write) {
            conflicts.insert(key.first);
          } else {
            read_sharing = true;
          }
        }

        if (conflicts.empty()) {
          verdict.verdict = PairVerdict::kIndependent;
          report.pairs_independent++;
          if (read_sharing) report.pairs_read_sharing++;
        } else if (reach[p][q] || reach[q][p]) {
          // A message path orders (or may order) the overlap; per the zero-FP posture an
          // ambiguous pair is counted, never reported — and never claimed independent.
          verdict.verdict = PairVerdict::kSuppressed;
          verdict.shared.assign(conflicts.begin(), conflicts.end());
          report.pairs_suppressed++;
          report.suppressed_by_communication++;
        } else {
          verdict.verdict = PairVerdict::kInterfering;
          verdict.shared.assign(conflicts.begin(), conflicts.end());
          report.pairs_interfering++;
          RenderInterfering(p, q, verdict);
        }
        report.verdicts.push_back(std::move(verdict));
      }
    }
  }

  void RenderInterfering(uint32_t p, uint32_t q, InterferenceVerdict& verdict) const {
    std::string message = "error  interference  " + verdict.first_program + " / " +
                          verdict.second_program + ": " +
                          std::to_string(verdict.shared.size()) +
                          " conflicting object(s), no message path either way\n";
    for (ObjectIndex object : verdict.shared) {
      message += "  " + ObjectLabel(object, graph.symbols()) + ":\n";
      for (uint32_t side : {p, q}) {
        for (const OwnedAccess& owned : effective[side].accesses) {
          if (owned.access->object != object) continue;
          message += "    | " + effective[side].own->program_name + " " +
                     KindName(owned.access->kind) + " (" + PartName(owned.access->part) +
                     "): " + owned.access->disasm + RegionTag(owned) + "\n";
        }
      }
    }
    verdict.message = std::move(message);
  }

  void BuildCertificates() {
    const bool any_caveat = report.opaque_programs > 0 || report.unresolved_programs > 0;
    struct PartFacts {
      std::set<uint32_t> readers;
      std::set<uint32_t> writers;
      bool all_writes_published = true;
      bool all_foreign_reads_gated = true;
    };
    std::map<std::pair<ObjectIndex, uint8_t>, PartFacts> facts;
    for (uint32_t p = 0; p < static_cast<uint32_t>(effective.size()); ++p) {
      for (const OwnedAccess& owned : effective[p].accesses) {
        PartFacts& f = facts[{owned.access->object,
                              static_cast<uint8_t>(owned.access->part)}];
        if (owned.access->kind == AccessKind::kWrite) {
          f.writers.insert(p);
          if (owned.access->sends_after.empty()) f.all_writes_published = false;
        } else {
          f.readers.insert(p);
        }
      }
    }
    // Second pass for foreign reads (needs the writer sets complete).
    for (uint32_t p = 0; p < static_cast<uint32_t>(effective.size()); ++p) {
      for (const OwnedAccess& owned : effective[p].accesses) {
        if (owned.access->kind != AccessKind::kRead) continue;
        PartFacts& f = facts.at({owned.access->object,
                                 static_cast<uint8_t>(owned.access->part)});
        if (f.writers.count(p) == 0 && !f.writers.empty() &&
            owned.access->recvs_before.empty()) {
          f.all_foreign_reads_gated = false;
        }
      }
    }

    std::set<ObjectIndex> objects;
    for (const auto& [key, f] : facts) {
      objects.insert(key.first);
      CacheCertificate cert;
      cert.object = key.first;
      cert.part = static_cast<ObjectPart>(key.second);
      cert.readers = static_cast<uint32_t>(f.readers.size());
      cert.writers = static_cast<uint32_t>(f.writers.size());
      if (f.writers.empty()) {
        cert.grade = CacheGrade::kImmutable;
        cert.caveat = any_caveat;
        (cert.caveat ? report.certified_with_caveat : report.certified_immutable)++;
      } else if (f.all_writes_published && f.all_foreign_reads_gated && !any_caveat) {
        cert.grade = CacheGrade::kPublishedOnly;
        report.certified_published++;
      } else {
        cert.grade = CacheGrade::kMutable;
        report.uncertified++;
      }
      report.certificates.push_back(std::move(cert));
    }
    report.objects_seen = static_cast<uint32_t>(objects.size());
  }

  InterferenceAnalysisReport Run() {
    report.programs_analyzed = graph.program_count();
    for (const auto& [segment, summary] : summaries) {
      (void)segment;
      report.regions_analyzed += summary.region_count;
    }
    BuildTraffic();
    BuildMayReach();
    BuildVerdicts();
    BuildCertificates();
    return std::move(report);
  }
};

}  // namespace

std::string FormatInterferenceReport(const InterferenceAnalysisReport& report) {
  std::string out;
  for (const InterferenceVerdict& verdict : report.verdicts) {
    if (verdict.verdict == PairVerdict::kInterfering) out += verdict.message;
  }
  if (report.pairs_independent > 0 || !report.certificates.empty()) {
    out += "interference: " + std::to_string(report.pairs_independent) + " independent, " +
           std::to_string(report.pairs_interfering) + " interfering, " +
           std::to_string(report.pairs_suppressed) + " suppressed pair(s); certificates: " +
           std::to_string(report.certified_immutable) + " immutable, " +
           std::to_string(report.certified_with_caveat) + " immutable-with-caveat, " +
           std::to_string(report.certified_published) + " published-only, " +
           std::to_string(report.uncertified) + " mutable\n";
  }
  return out;
}

InterferenceAnalysisReport AnalyzeInterference(
    const SystemEffectGraph& graph,
    const std::map<ObjectIndex, InterferenceSummary>& summaries) {
  return InterferenceComposer(graph, summaries).Run();
}

}  // namespace analysis
}  // namespace imax432

// Static interference and immutability analysis over object footprints.
//
// The paper's access-descriptor discipline makes every object touch statically visible:
// programs reach storage only through typed ADs with explicit rights, so a may-analysis over
// the ISA stream bounds everything a process can read or write. This pass turns that
// discipline into the two soundness facts the fast-interpreter work (ROADMAP item 1) needs:
// which AD→descriptor translations are invariant between object-table mutations (safe to
// cache without invalidation), and which process pairs can never touch the same object
// between bus-synchronization points (safe to execute with lookahead).
//
// Phase 1 (InterferenceAnalyzer::Analyze) computes, per program, an object-footprint summary
// over the existing CFG/effects infrastructure: every resolved data / access-part touch from
// the bounded move/load chains of effects.h, tagged with its *inter-sync region* — the
// minimum number of synchronization instructions (send / receive / domain call / return /
// destroy / OS call) executed on any path from entry to the site. Region r is a sound window
// fact: an access tagged r cannot execute before the process's r-th synchronization point.
// Each write site additionally carries a publication fact reused from the `sends_after`
// greatest-fixpoint machinery: a write whose every path to exit performs a blocking send is
// "published" — the basis of the immutable-after-publication certificate tier.
//
// Phase 2 (AnalyzeInterference) composes the footprints system-wide through the PR 2
// SystemEffectGraph (domain callees fold into their callers) and yields:
//
//   pairwise verdicts — for every process pair: kIndependent (no conflicting overlap:
//       neither may write an object the other may touch), kInterfering (a conflicting
//       overlap with no message path between the pair in either direction), or kSuppressed
//       (opacity / unresolved chains / a communication path that orders the overlap).
//       Independence claims license parallel execution, so they follow the suite's
//       zero-false-positive rule: both programs must be fully resolved and non-opaque.
//   cacheability report — per (object, part): kImmutable (no summarized program ever writes
//       it), kPublishedOnly (every write is publication-ordered and every foreign read is
//       receive-gated), or kMutable. Immutable certificates carry a caveat bit whenever any
//       opaque or unresolved program exists in the system — such code could write anything.
//
// Phase 3 lives in the kernel (exec/kernel.h): `SystemConfig::xlat_cache` arms per-processor
// AD-translation caches (arch/xlat_cache.h) whose entries are either analysis-certified
// immutable (no per-hit revalidation) or epoch-keyed against the descriptor's generation and
// `data_epoch`; `SystemConfig::interference_audit` arms the pure-observer runtime auditor
// (auditor.h) that cross-checks every certified hit and raises kInterferenceViolation trace
// events, preserving the PR 5 bit-identical replay contract.
//
// Soundness posture (DESIGN.md §6.4): kInterfering and kIndependent are claimed only from
// fully resolved summaries; everything else is suppressed and counted, never reported. The
// kernel narrows the certificate consumption further (generic objects strict-tier only;
// instruction segments under a documented kernel-trusted carve-out) — see kernel.h.

#ifndef IMAX432_SRC_ANALYSIS_INTERFERENCE_INTERFERENCE_H_
#define IMAX432_SRC_ANALYSIS_INTERFERENCE_INTERFERENCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/deadlock.h"
#include "src/analysis/effects.h"
#include "src/arch/types.h"
#include "src/isa/program.h"

namespace imax432 {
namespace analysis {

// One resolved object touch, tagged with the inter-sync region it executes in.
struct FootprintEntry {
  AccessKind kind = AccessKind::kRead;
  ObjectPart part = ObjectPart::kData;
  uint32_t pc = 0;
  // Minimum number of sync instructions executed on any path from entry to this site: the
  // site cannot run before the process's region-th synchronization point.
  uint32_t region = 0;
  ObjectIndex object = kInvalidObjectIndex;
  // Write only: every path from this site to exit performs a blocking send (non-empty
  // sends_after) — the write is publication-ordered.
  bool published = false;
  std::string disasm;
};

struct InterferenceSummary {
  std::string program_name;
  std::vector<FootprintEntry> footprint;  // resolved touches, ascending pc
  uint32_t region_count = 1;              // distinct inter-sync regions (>= 1)
  uint32_t sync_count = 0;                // synchronization instructions in the program
  bool opaque = false;                    // native steps / unknown OS services
  bool unresolved = false;                // some access chain did not resolve
  bool may_not_terminate = false;

  bool Reads(ObjectIndex object, ObjectPart part) const;
  bool Writes(ObjectIndex object, ObjectPart part) const;
  // True when (object, part) is written and every write to it is publication-ordered.
  bool WritesPublished(ObjectIndex object, ObjectPart part) const;
};

class InterferenceAnalyzer {
 public:
  // Computes the footprint summary, deriving the effect summary internally.
  static InterferenceSummary Analyze(const Program& program, const EffectOptions& options = {});
  // Shares an already-computed effect summary (the kernel path: RecordEffectSummary computes
  // effects once and derives lifetime + interference summaries from it).
  static InterferenceSummary Analyze(const Program& program, const EffectOptions& options,
                                     const EffectSummary& effects);
};

// --- Phase 2: whole-system composition -------------------------------------------------

enum class PairVerdict : uint8_t { kIndependent, kInterfering, kSuppressed };
const char* PairVerdictName(PairVerdict verdict);

struct InterferenceVerdict {
  std::string first_program;   // name-sorted pair
  std::string second_program;
  PairVerdict verdict = PairVerdict::kSuppressed;
  // Conflict witnesses: objects one side may write while the other touches them. Sorted.
  std::vector<ObjectIndex> shared;
  // Rendered, disassembly-anchored diagnostic (kInterfering only).
  std::string message;
};

enum class CacheGrade : uint8_t {
  kImmutable,      // no summarized program writes this (object, part)
  kPublishedOnly,  // all writes publication-ordered, all foreign reads receive-gated
  kMutable,        // writes without publication discipline
};
const char* CacheGradeName(CacheGrade grade);

struct CacheCertificate {
  ObjectIndex object = kInvalidObjectIndex;
  ObjectPart part = ObjectPart::kData;
  CacheGrade grade = CacheGrade::kMutable;
  uint32_t readers = 0;  // programs that may read it
  uint32_t writers = 0;  // programs that may write it
  // Grade is kImmutable but an opaque / unresolved program exists somewhere in the system:
  // such code could write this object without appearing in any summary. The kernel's strict
  // tier refuses caveated certificates (see Kernel::EnsureInterferenceCertificates).
  bool caveat = false;
};

struct InterferenceAnalysisReport {
  std::vector<InterferenceVerdict> verdicts;   // one per process pair, name-sorted
  std::vector<CacheCertificate> certificates;  // cacheability report, by (object, part)
  uint32_t programs_analyzed = 0;
  uint32_t objects_seen = 0;       // distinct objects in resolved footprints
  uint32_t regions_analyzed = 0;   // total inter-sync regions over all summaries
  uint32_t pairs_independent = 0;
  uint32_t pairs_read_sharing = 0; // independent pairs that share read-only objects
  uint32_t pairs_interfering = 0;
  uint32_t pairs_suppressed = 0;
  uint32_t suppressed_by_opacity = 0;
  uint32_t suppressed_by_unresolved = 0;
  uint32_t suppressed_by_communication = 0;
  uint32_t certified_immutable = 0;    // kImmutable, no caveat
  uint32_t certified_with_caveat = 0;  // kImmutable shape, opaque/unresolved code present
  uint32_t certified_published = 0;
  uint32_t uncertified = 0;            // kMutable
  uint32_t opaque_programs = 0;
  uint32_t unresolved_programs = 0;

  bool ok() const { return pairs_interfering == 0; }
};

// One report as text: interfering-pair blocks plus a certificate/verdict roll-up ("" when
// the report is clean and empty).
std::string FormatInterferenceReport(const InterferenceAnalysisReport& report);

// Composes per-program footprints with the whole-system effect graph. `summaries` is keyed
// by instruction-segment index like the graph's program map; graph programs without an
// interference summary still participate (their effect summaries carry the footprints and
// opacity bits — the summary adds only region structure to diagnostics).
InterferenceAnalysisReport AnalyzeInterference(
    const SystemEffectGraph& graph,
    const std::map<ObjectIndex, InterferenceSummary>& summaries);

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_INTERFERENCE_INTERFERENCE_H_

#include "src/analysis/interference/auditor.h"

#include "src/arch/object_table.h"

namespace imax432 {
namespace analysis {

const char* InterferenceViolationKindName(InterferenceViolationKind kind) {
  switch (kind) {
    case InterferenceViolationKind::kFreed: return "freed";
    case InterferenceViolationKind::kMutated: return "mutated";
    case InterferenceViolationKind::kQuarantined: return "quarantined";
    case InterferenceViolationKind::kRetyped: return "retyped";
  }
  return "?";
}

InterferenceAuditor::Check InterferenceAuditor::CheckCertifiedHit(
    const ObjectTable& table, ObjectIndex object, uint32_t generation,
    uint32_t fill_data_epoch, uint8_t fill_type) {
  ++stats_.hits_checked;
  if (tracked_.emplace(object, generation).second) ++stats_.certified_tracked;

  Check check;
  check.violation.object = object;
  check.violation.generation = generation;
  check.violation.recorded_epoch = fill_data_epoch;

  if (object >= table.capacity()) {
    check.ok = false;
    check.violation.kind = InterferenceViolationKind::kFreed;
    ++stats_.violations;
    return check;
  }
  const ObjectDescriptor& descriptor = table.At(object);
  if (!descriptor.allocated || descriptor.generation != generation) {
    check.ok = false;
    check.violation.kind = InterferenceViolationKind::kFreed;
  } else if (static_cast<uint8_t>(descriptor.type) != fill_type) {
    check.ok = false;
    check.violation.kind = InterferenceViolationKind::kRetyped;
  } else if (descriptor.quarantined) {
    check.ok = false;
    check.violation.kind = InterferenceViolationKind::kQuarantined;
  } else if (descriptor.data_epoch != fill_data_epoch) {
    check.ok = false;
    check.violation.kind = InterferenceViolationKind::kMutated;
    check.violation.observed_epoch = descriptor.data_epoch;
  }
  if (!check.ok) ++stats_.violations;
  return check;
}

}  // namespace analysis
}  // namespace imax432

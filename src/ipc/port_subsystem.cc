#include "src/ipc/port_subsystem.h"

#include <algorithm>

#include "src/base/check.h"

namespace imax432 {

Result<AccessDescriptor> PortSubsystem::CreatePort(const AccessDescriptor& sro_ad,
                                                   uint16_t message_count,
                                                   QueueDiscipline discipline) {
  if (message_count == 0 || message_count > kMaxMessageCount) {
    return Fault::kInvalidArgument;
  }
  IMAX_ASSIGN_OR_RETURN(
      AccessDescriptor ad,
      memory_->CreateObject(sro_ad, SystemType::kPort, PortLayout::kDataBytes, message_count,
                            rights::kRead | rights::kWrite | rights::kPortSend |
                                rights::kPortReceive));
  ObjectView port(&machine_->addressing(), ad);
  port.SetField(PortLayout::kOffCapacity, 2, message_count);
  port.SetField(PortLayout::kOffCount, 2, 0);
  port.SetField(PortLayout::kOffDiscipline, 1, static_cast<uint64_t>(discipline));

  PortShadow& shadow = states_[ad.index()];
  shadow.free_slots.reserve(message_count);
  for (uint16_t slot = message_count; slot > 0; --slot) {
    shadow.free_slots.push_back(static_cast<uint16_t>(slot - 1));
  }
  ++stats_.ports_created;
  return ad;
}

Result<PortSubsystem::PortShadow*> PortSubsystem::ResolveShadow(
    const AccessDescriptor& port_ad) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * descriptor,
                        machine_->table().Resolve(port_ad));
  if (descriptor->type != SystemType::kPort) {
    return Fault::kTypeMismatch;
  }
  auto it = states_.find(port_ad.index());
  if (it == states_.end()) {
    return Fault::kNotFound;
  }
  return &it->second;
}

Result<const PortSubsystem::PortShadow*> PortSubsystem::ResolveShadow(
    const AccessDescriptor& port_ad) const {
  auto result = const_cast<PortSubsystem*>(this)->ResolveShadow(port_ad);
  if (!result.ok()) {
    return result.fault();
  }
  return static_cast<const PortShadow*>(result.value());
}

Status PortSubsystem::Enqueue(const AccessDescriptor& port_ad, const AccessDescriptor& message,
                              uint8_t sender_priority, uint32_t sender_deadline,
                              bool privileged) {
  IMAX_ASSIGN_OR_RETURN(PortShadow * shadow, ResolveShadow(port_ad));
  if (shadow->free_slots.empty()) {
    return Fault::kQueueFull;
  }
  uint16_t slot = shadow->free_slots.back();

  // Store the message AD into the port's access part. This is where the protection system
  // bites: rights on the port AD, slot bounds, and the level rule for the message. The
  // privileged path is the microcode's own queueing (dispatching ports).
  if (privileged) {
    IMAX_RETURN_IF_FAULT(machine_->addressing().WriteAdPrivileged(port_ad, slot, message));
  } else {
    IMAX_RETURN_IF_FAULT(machine_->addressing().WriteAd(port_ad, slot, message));
  }
  shadow->free_slots.pop_back();

  ObjectView port(&machine_->addressing(), port_ad);
  auto discipline = static_cast<QueueDiscipline>(port.Field(PortLayout::kOffDiscipline, 1));
  uint64_t key = 0;
  switch (discipline) {
    case QueueDiscipline::kFifo:
      key = 0;  // seq alone decides
      break;
    case QueueDiscipline::kPriority:
      key = 255u - sender_priority;  // higher priority dequeues first
      break;
    case QueueDiscipline::kDeadline:
      key = sender_deadline;  // earlier deadline dequeues first
      break;
  }
  last_enqueue_seq_ = next_seq_;
  shadow->queue.push_back(QueueEntry{slot, key, next_seq_++});
  if (shadow->queue.size() > stats_.peak_queue_depth) {
    stats_.peak_queue_depth = shadow->queue.size();
  }

  port.SetField(PortLayout::kOffCount, 2, shadow->queue.size());
  port.Increment(PortLayout::kOffSendsTotal, 8);
  ++stats_.messages_enqueued;
  machine_->trace().Emit(TraceEventKind::kSend, machine_->now(), kTraceNoProcessor,
                         kTraceNoProcess, port_ad.index(),
                         static_cast<uint32_t>(shadow->queue.size()), message.index());
  return Status::Ok();
}

Result<AccessDescriptor> PortSubsystem::Dequeue(const AccessDescriptor& port_ad) {
  IMAX_ASSIGN_OR_RETURN(PortShadow * shadow, ResolveShadow(port_ad));
  if (shadow->queue.empty()) {
    return Fault::kQueueEmpty;
  }
  // Select the minimal (key, seq) entry. Queues are short in practice; linear scan keeps the
  // structure trivially consistent with the slots.
  size_t best = 0;
  for (size_t i = 1; i < shadow->queue.size(); ++i) {
    const QueueEntry& e = shadow->queue[i];
    const QueueEntry& b = shadow->queue[best];
    if (e.key < b.key || (e.key == b.key && e.seq < b.seq)) {
      best = i;
    }
  }
  uint16_t slot = shadow->queue[best].slot;
  last_dequeue_seq_ = shadow->queue[best].seq;
  shadow->queue.erase(shadow->queue.begin() + static_cast<ptrdiff_t>(best));
  ++stats_.messages_dequeued;

  IMAX_ASSIGN_OR_RETURN(AccessDescriptor message, machine_->addressing().ReadAd(port_ad, slot));
  // Clear the slot so the port does not keep the message alive after delivery.
  IMAX_RETURN_IF_FAULT(machine_->addressing().WriteAd(port_ad, slot, AccessDescriptor()));
  shadow->free_slots.push_back(slot);

  ObjectView port(&machine_->addressing(), port_ad);
  port.SetField(PortLayout::kOffCount, 2, shadow->queue.size());
  port.Increment(PortLayout::kOffReceivesTotal, 8);
  machine_->trace().Emit(TraceEventKind::kReceive, machine_->now(), kTraceNoProcessor,
                         kTraceNoProcess, port_ad.index(),
                         static_cast<uint32_t>(shadow->queue.size()), message.index());
  return message;
}

Status PortSubsystem::PushBlockedSender(const AccessDescriptor& port_ad,
                                        const BlockedSender& sender) {
  IMAX_ASSIGN_OR_RETURN(PortShadow * shadow, ResolveShadow(port_ad));
  shadow->blocked_senders.push_back(sender);
  ObjectView(&machine_->addressing(), port_ad).Increment(PortLayout::kOffSendBlocks, 4);
  return Status::Ok();
}

Result<BlockedSender> PortSubsystem::PopBlockedSender(const AccessDescriptor& port_ad) {
  IMAX_ASSIGN_OR_RETURN(PortShadow * shadow, ResolveShadow(port_ad));
  if (shadow->blocked_senders.empty()) {
    return Fault::kQueueEmpty;
  }
  BlockedSender sender = shadow->blocked_senders.front();
  shadow->blocked_senders.pop_front();
  return sender;
}

Status PortSubsystem::PushBlockedReceiver(const AccessDescriptor& port_ad,
                                          const BlockedReceiver& receiver) {
  IMAX_ASSIGN_OR_RETURN(PortShadow * shadow, ResolveShadow(port_ad));
  shadow->blocked_receivers.push_back(receiver);
  ObjectView(&machine_->addressing(), port_ad).Increment(PortLayout::kOffReceiveBlocks, 4);
  return Status::Ok();
}

Result<BlockedReceiver> PortSubsystem::PopBlockedReceiver(const AccessDescriptor& port_ad) {
  IMAX_ASSIGN_OR_RETURN(PortShadow * shadow, ResolveShadow(port_ad));
  if (shadow->blocked_receivers.empty()) {
    return Fault::kQueueEmpty;
  }
  BlockedReceiver receiver = shadow->blocked_receivers.front();
  shadow->blocked_receivers.pop_front();
  ++stats_.direct_handoffs;
  return receiver;
}

Status PortSubsystem::RemoveBlockedReceiver(const AccessDescriptor& port_ad,
                                            const AccessDescriptor& process) {
  IMAX_ASSIGN_OR_RETURN(PortShadow * shadow, ResolveShadow(port_ad));
  for (auto it = shadow->blocked_receivers.begin(); it != shadow->blocked_receivers.end();
       ++it) {
    if (it->process.SameObject(process)) {
      shadow->blocked_receivers.erase(it);
      return Status::Ok();
    }
  }
  return Fault::kNotFound;
}

bool PortSubsystem::HasBlockedReceiver(const AccessDescriptor& port_ad) const {
  auto shadow = ResolveShadow(port_ad);
  return shadow.ok() && !shadow.value()->blocked_receivers.empty();
}

bool PortSubsystem::HasBlockedSender(const AccessDescriptor& port_ad) const {
  auto shadow = ResolveShadow(port_ad);
  return shadow.ok() && !shadow.value()->blocked_senders.empty();
}

void PortSubsystem::PushWaitingProcessor(const AccessDescriptor& port_ad,
                                         uint16_t processor_id) {
  auto shadow = ResolveShadow(port_ad);
  IMAX_CHECK(shadow.ok());
  shadow.value()->waiting_processors.push_back(processor_id);
}

Result<uint16_t> PortSubsystem::PopWaitingProcessor(const AccessDescriptor& port_ad) {
  IMAX_ASSIGN_OR_RETURN(PortShadow * shadow, ResolveShadow(port_ad));
  if (shadow->waiting_processors.empty()) {
    return Fault::kQueueEmpty;
  }
  uint16_t id = shadow->waiting_processors.front();
  shadow->waiting_processors.pop_front();
  return id;
}

Status PortSubsystem::RemoveWaitingProcessor(const AccessDescriptor& port_ad,
                                             uint16_t processor_id) {
  IMAX_ASSIGN_OR_RETURN(PortShadow * shadow, ResolveShadow(port_ad));
  for (auto it = shadow->waiting_processors.begin(); it != shadow->waiting_processors.end();
       ++it) {
    if (*it == processor_id) {
      shadow->waiting_processors.erase(it);
      return Status::Ok();
    }
  }
  return Fault::kNotFound;
}

Result<uint16_t> PortSubsystem::QueuedCount(const AccessDescriptor& port_ad) const {
  IMAX_ASSIGN_OR_RETURN(const PortShadow* shadow, ResolveShadow(port_ad));
  return static_cast<uint16_t>(shadow->queue.size());
}

Result<uint16_t> PortSubsystem::Capacity(const AccessDescriptor& port_ad) const {
  IMAX_ASSIGN_OR_RETURN(const PortShadow* shadow, ResolveShadow(port_ad));
  return static_cast<uint16_t>(shadow->queue.size() + shadow->free_slots.size());
}

void PortSubsystem::AppendShadowRoots(std::vector<AccessDescriptor>* roots) const {
  for (const auto& [index, shadow] : states_) {
    for (const BlockedSender& sender : shadow.blocked_senders) {
      roots->push_back(sender.process);
      roots->push_back(sender.message);
    }
    for (const BlockedReceiver& receiver : shadow.blocked_receivers) {
      roots->push_back(receiver.process);
    }
  }
}

}  // namespace imax432

// PortSubsystem: the hardware port mechanism (queueing structure + blocked queues).
//
// "The hardware defines a communications port object which functions as a queueing structure
// for interprocess communications. There are machine instructions available for sending and
// receiving messages via these objects."
//
// A port's queued message ADs live in the port object's access part (so they are protected,
// GC-visible, and subject to the level rule: a port can only carry messages at least as
// long-lived as itself — which is exactly the paper's constraint that "objects passed through
// these ports are of a type whose scope is no less global than the scope of the port").
// Dequeue *order* under the non-FIFO service disciplines, and the queues of processes blocked
// at the port, are kept in shadow state; the blocked-process ADs in shadow are reported to
// the GC as roots (on the real machine they were chained through carrier objects — the
// shadow queue is this emulator's carrier chain).
//
// Dispatching ports reuse this mechanism verbatim: a dispatching port is a port whose
// messages are process ADs and whose "receivers" are processors — the paper's description of
// hardware dispatch ("ready processes are dispatched on processors automatically by the
// hardware via algorithms that involve processor, process, and dispatching port objects").

#ifndef IMAX432_SRC_IPC_PORT_SUBSYSTEM_H_
#define IMAX432_SRC_IPC_PORT_SUBSYSTEM_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/arch/access_descriptor.h"
#include "src/memory/memory_manager.h"
#include "src/proc/layouts.h"
#include "src/sim/machine.h"

namespace imax432 {

// A process waiting to deposit a message into a full port.
struct BlockedSender {
  AccessDescriptor process;
  AccessDescriptor message;
};

// A process waiting for a message at an empty port.
struct BlockedReceiver {
  AccessDescriptor process;
  uint8_t dest_adreg = 0;  // context AD register the message lands in
};

struct PortStats {
  uint64_t ports_created = 0;
  uint64_t messages_enqueued = 0;
  uint64_t messages_dequeued = 0;
  uint64_t direct_handoffs = 0;  // messages passed straight to a blocked receiver
  uint64_t peak_queue_depth = 0;  // deepest any single port's queue ever got
};

class PortSubsystem {
 public:
  static constexpr uint16_t kMaxMessageCount = 4096;

  PortSubsystem(Machine* machine, MemoryManager* memory) : machine_(machine), memory_(memory) {}

  // Creates a port object from `sro_ad` with the given queue size and service discipline.
  // This is the operation that on the real system only the Untyped_Ports package body could
  // perform ("The 432 protection structures guarantee that only this package has the
  // necessary access environment to create port objects").
  Result<AccessDescriptor> CreatePort(const AccessDescriptor& sro_ad, uint16_t message_count,
                                      QueueDiscipline discipline);

  // Queue operations. Ordering keys (sender priority / deadline) are supplied by the caller,
  // read from the sending process object.
  // Enqueue faults with kQueueFull when no slot is free, and propagates protection faults
  // (notably kLevelViolation) from the access-part store. `privileged` selects the microcode
  // store path: the hardware dispatching algorithm queues *processes of any level* at
  // dispatching ports, so those enqueues bypass the level rule (a stale process AD left by a
  // destroyed local process is caught by the generation check at dequeue). Software message
  // traffic must never pass privileged=true.
  Status Enqueue(const AccessDescriptor& port_ad, const AccessDescriptor& message,
                 uint8_t sender_priority, uint32_t sender_deadline, bool privileged = false);
  // Dequeue faults with kQueueEmpty when nothing is queued.
  Result<AccessDescriptor> Dequeue(const AccessDescriptor& port_ad);

  // Blocked-process queues (FIFO).
  Status PushBlockedSender(const AccessDescriptor& port_ad, const BlockedSender& sender);
  Result<BlockedSender> PopBlockedSender(const AccessDescriptor& port_ad);
  Status PushBlockedReceiver(const AccessDescriptor& port_ad, const BlockedReceiver& receiver);
  Result<BlockedReceiver> PopBlockedReceiver(const AccessDescriptor& port_ad);
  // Removes a specific process from the port's blocked-receiver queue (timed receive whose
  // timer expired). Faults with kNotFound if the process is no longer waiting there (a
  // message arrived first — the benign race of any timeout mechanism).
  Status RemoveBlockedReceiver(const AccessDescriptor& port_ad,
                               const AccessDescriptor& process);
  bool HasBlockedReceiver(const AccessDescriptor& port_ad) const;
  bool HasBlockedSender(const AccessDescriptor& port_ad) const;

  // Idle-processor queue (dispatching ports only).
  void PushWaitingProcessor(const AccessDescriptor& port_ad, uint16_t processor_id);
  Result<uint16_t> PopWaitingProcessor(const AccessDescriptor& port_ad);
  // Removes a specific parked processor (processor retirement); kNotFound if absent.
  Status RemoveWaitingProcessor(const AccessDescriptor& port_ad, uint16_t processor_id);

  // Queue inspection.
  Result<uint16_t> QueuedCount(const AccessDescriptor& port_ad) const;
  Result<uint16_t> Capacity(const AccessDescriptor& port_ad) const;

  // GC support: every AD held only in shadow state (blocked senders' processes and messages,
  // blocked receivers' processes) is a root.
  void AppendShadowRoots(std::vector<AccessDescriptor>* roots) const;

  // Drops the shadow state of a reclaimed port (called by the GC).
  void Forget(ObjectIndex index) { states_.erase(index); }

  const PortStats& stats() const { return stats_; }

  // Transfer sequence numbers of the most recent successful Enqueue / Dequeue. The race
  // sanitizer keys in-flight message clocks by these, matching each dequeue to the exact
  // enqueue that produced the message even when one object is queued repeatedly.
  uint64_t last_enqueue_seq() const { return last_enqueue_seq_; }
  uint64_t last_dequeue_seq() const { return last_dequeue_seq_; }

 private:
  struct QueueEntry {
    uint16_t slot;
    uint64_t key;   // discipline-dependent sort key (lower dequeues first)
    uint64_t seq;   // FIFO tiebreak
  };

  struct PortShadow {
    std::vector<QueueEntry> queue;       // kept in arrival order; dequeue scans for min key
    std::vector<uint16_t> free_slots;
    std::deque<BlockedSender> blocked_senders;
    std::deque<BlockedReceiver> blocked_receivers;
    std::deque<uint16_t> waiting_processors;
  };

  Result<PortShadow*> ResolveShadow(const AccessDescriptor& port_ad);
  Result<const PortShadow*> ResolveShadow(const AccessDescriptor& port_ad) const;

  Machine* machine_;
  MemoryManager* memory_;
  std::map<ObjectIndex, PortShadow> states_;
  PortStats stats_;
  uint64_t next_seq_ = 0;
  uint64_t last_enqueue_seq_ = 0;
  uint64_t last_dequeue_seq_ = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_IPC_PORT_SUBSYSTEM_H_

// Kernel: the execution engine tying the emulated hardware together.
//
// This layer is the emulator's equivalent of the 432 processor microcode plus the thin parts
// of iMAX that "complete the model of computation supported in the hardware": it interprets
// instruction streams, runs the implicit hardware algorithms (dispatching at dispatching
// ports, time-slice end, send/receive blocking, inter-domain call/return), creates and
// disposes of the complex objects (processes, contexts, domains), and delivers faults to
// fault ports under the iMAX internal-level rules (§7.3).
//
// All activity happens in virtual time on the Machine's event queue; each processor executes
// one instruction per event, with compute cycles local and bus cycles serialized on the
// shared interconnect.

#ifndef IMAX432_SRC_EXEC_KERNEL_H_
#define IMAX432_SRC_EXEC_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/analysis/deadlock.h"
#include "src/analysis/guards/auditor.h"
#include "src/analysis/guards/guards.h"
#include "src/analysis/interference/auditor.h"
#include "src/analysis/interference/interference.h"
#include "src/analysis/lifetime/auditor.h"
#include "src/analysis/lifetime/lifetime.h"
#include "src/analysis/races/races.h"
#include "src/analysis/races/sanitizer.h"
#include "src/arch/decode_cache.h"
#include "src/arch/xlat_cache.h"
#include "src/exec/execution_context.h"
#include "src/ipc/port_subsystem.h"
#include "src/isa/disassembler.h"
#include "src/isa/assembler.h"
#include "src/isa/program.h"
#include "src/isa/program_store.h"
#include "src/memory/memory_manager.h"
#include "src/proc/layouts.h"
#include "src/sim/machine.h"

namespace imax432 {

// Events reported to the registered process-event handler (the basic process manager).
enum class ProcessEvent : uint8_t {
  kTerminated,  // ran to completion (halt or top-level return)
  kFaulted,     // fault delivered (process now at its fault port, or terminated)
  kPanicked,    // faulted below iMAX level 3 — a system design-rule violation
  kStopped,     // left the dispatching mix because its stop count became positive
};

struct ProcessOptions {
  uint8_t priority = 128;
  uint8_t imax_level = kImaxLevelUser;
  uint32_t deadline = 0;
  uint32_t stack_bytes = 16 * 1024;       // context (stack) SRO size
  AccessDescriptor allocation_sro;        // SRO the process object is created from;
                                          // null = global heap (level-0 lifetime)
  AccessDescriptor dispatch_port;         // null = kernel default dispatching port
  AccessDescriptor fault_port;            // null = faults terminate the process
  AccessDescriptor scheduler_port;        // null = no scheduler notifications
  AccessDescriptor parent;                // parent process (process tree)
  AccessDescriptor initial_arg;           // placed in AD register a7 of the first context
  uint64_t initial_value = 0;             // placed in data register r7
};

struct KernelStats {
  uint64_t instructions_executed = 0;
  uint64_t dispatches = 0;
  uint64_t time_slice_ends = 0;
  uint64_t blocks = 0;             // processes that blocked at a port
  uint64_t faults_delivered = 0;
  uint64_t panics = 0;             // iMAX-level rule violations
  uint64_t processes_created = 0;
  uint64_t processes_terminated = 0;
  uint64_t domain_calls = 0;
  uint64_t local_calls = 0;
  uint64_t swap_faults = 0;        // kSegmentSwapped transparently serviced
  uint64_t programs_verified = 0;  // programs run through the static verifier at load
  uint64_t programs_rejected = 0;  // programs the verifier refused (kVerificationFailed)
  uint64_t effect_summaries = 0;   // IPC effect summaries computed (verify-on-load + lazy)
  uint64_t lifetime_summaries = 0; // object-lifetime summaries computed alongside them
  uint64_t demotions = 0;          // allocations redirected to a per-context demote SRO
  uint64_t demote_fallbacks = 0;   // demotable sites that fell back to the named SRO
  uint64_t demote_sros_created = 0;     // per-context demote SROs lazily created
  uint64_t demoted_bulk_reclaimed = 0;  // demoted objects bulk-destroyed at context exit
  uint64_t lifetime_violations = 0;     // audit hits (kLifetimeViolation events raised)
  uint64_t processors_retired = 0;   // GDPs permanently halted (fault injection / operator)
  uint64_t processors_stalled = 0;   // transient GDP stalls applied
  uint64_t retirement_requeues = 0;  // in-flight processes rescued from a retired GDP
  uint64_t interference_summaries = 0;  // object-footprint summaries computed
  uint64_t interference_violations = 0; // certified cache hits that failed the audit
  uint64_t xlat_invalidations = 0;   // whole-cache clears on analysis/store retraction
  uint64_t guard_summaries = 0;      // guard-dominance summaries computed
  uint64_t guard_elisions = 0;       // instructions executed on the check-elided fast path
  uint64_t guard_violations = 0;     // elided executions that failed the guard audit
  uint64_t decode_invalidations = 0; // whole-decode-cache clears on analysis retraction
};

class Kernel {
 public:
  using ServiceFn = std::function<Result<NativeResult>(ExecutionContext&)>;
  using ProcessEventFn = std::function<void(const AccessDescriptor& process, ProcessEvent)>;
  using RootProviderFn = std::function<void(std::vector<AccessDescriptor>*)>;

  Kernel(Machine* machine, MemoryManager* memory);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- Configuration (boot time) ---

  // Adds `count` general data processors dispatching from `dispatch_port` (null = default
  // port). "iMAX is fundamentally a multiprocessor operating system": the rest of the system
  // never knows how many processors exist.
  Status AddProcessors(int count, const AccessDescriptor& dispatch_port = {});

  // Registers an OsCall service. Ids below 1024 are reserved for iMAX packages.
  void RegisterService(uint32_t id, ServiceFn fn);

  // Handler invoked on process lifecycle events (used by the basic process manager).
  void SetProcessEventHandler(ProcessEventFn fn) { process_event_handler_ = std::move(fn); }

  // Registers an additional GC root provider (OS packages holding ADs outside any object).
  void AddRootProvider(RootProviderFn fn) { root_providers_.push_back(std::move(fn)); }

  // When enabled, CreateProcess and CreateDomain run the static capability verifier
  // (src/analysis) over each program before accepting it, and fail with
  // Fault::kVerificationFailed when the verifier proves the program faults. Off by default:
  // runtime checks in the AddressingUnit remain authoritative either way.
  void set_verify_on_load(bool enabled) { verify_on_load_ = enabled; }
  bool verify_on_load() const { return verify_on_load_; }

  // When enabled, create_object at a site the lifetime analysis (lifetime/lifetime.h)
  // proved context-local allocates from a lazily-created per-context demote SRO instead of
  // the program-named SRO, is marked GC-exempt (the collector treats it as permanently
  // black and scans its slots as roots), and is bulk-destroyed when its context returns.
  // Only sites with a recorded summary demote, so this is effective under verify_on_load
  // (summaries are computed at load); cycle charges are identical either way, preserving
  // virtual-time determinism.
  void set_lifetime_demote(bool enabled) { lifetime_demote_ = enabled; }
  bool lifetime_demote() const { return lifetime_demote_; }
  // Capacity of each per-context demote SRO; exhaustion falls back to the named SRO.
  void set_demote_sro_bytes(uint32_t bytes) { demote_sro_bytes_ = bytes; }

  // --- Objects ---

  // Creates a process executing `program`. The process is created stopped (kEmbryo);
  // StartProcess places it in the dispatching mix.
  Result<AccessDescriptor> CreateProcess(ProgramRef program, const ProcessOptions& options);

  // Creates a domain object whose entries are the given instruction segments; `state_slots`
  // extra access slots follow the entries for package state. Returns an AD carrying call
  // rights only — holders can invoke the domain but not inspect its contents, which is the
  // "small protection domain" property.
  Result<AccessDescriptor> CreateDomain(const std::vector<AccessDescriptor>& entries,
                                        uint32_t state_slots = 0);

  // Writes a package-state AD into a domain (boot-time privilege of the package creator).
  Status SetDomainState(const AccessDescriptor& domain, uint32_t state_index,
                        const AccessDescriptor& value);

  // --- Process control (used by the process manager packages) ---

  Status StartProcess(const AccessDescriptor& process);
  // Re-enters a faulted or stopped process into the dispatching mix.
  Status ResumeProcess(const AccessDescriptor& process);
  // Marks a process to be held out of the dispatching mix. A ready process is removed when
  // next dispatched; a running process at its next instruction boundary; a blocked process
  // when it unblocks.
  Status MarkStopped(const AccessDescriptor& process);

  // --- Processor failure (fault injection / graceful degradation) ---

  // Permanently retires a GDP, as if it failed its hardware self-test mid-run. Any process
  // it was executing is rescued at its current instruction boundary and re-queued at its
  // dispatching port, so scheduling degrades gracefully to the survivors ("the rest of the
  // system never knows how many processors exist"). Emits kProcessorRetired.
  // Faults: kNotFound (bad id), kWrongState (already retired).
  Status RetireProcessor(uint16_t processor_id);

  // Transiently stalls a GDP: it executes nothing until now() + duration, then resumes
  // exactly where it was. Models a processor dropped off the interconnect and re-arbitrating.
  Status StallProcessor(uint16_t processor_id, Cycles duration);

  bool processor_retired(int index) const { return processors_[index].halted; }
  // GDPs still participating in dispatching.
  int active_processor_count() const;

  // Sends `message` to `port` from outside the simulation (boot code, tests). Never blocks:
  // faults with kQueueFull instead.
  Status PostMessage(const AccessDescriptor& port, const AccessDescriptor& message);

  // --- Running ---

  // Runs until no event remains (all processes terminated, blocked forever, or stopped).
  void Run() { machine_->events().RunUntilIdle(); }
  // Runs events up to the given virtual time.
  void RunUntil(Cycles deadline) { machine_->events().RunUntil(deadline); }
  uint64_t RunBounded(uint64_t max_events) { return machine_->events().RunBounded(max_events); }
  Cycles now() const { return machine_->now(); }

  // --- Introspection ---

  Machine& machine() { return *machine_; }
  MemoryManager& memory() { return *memory_; }
  PortSubsystem& ports() { return ports_; }
  ProgramStore& programs() { return programs_; }
  AccessDescriptor default_dispatch_port() const { return default_dispatch_port_; }
  const KernelStats& stats() const { return stats_; }
  int processor_count() const { return static_cast<int>(processors_.size()); }
  AccessDescriptor processor_object(int index) const { return processors_[index].object; }

  // --- Whole-system IPC analysis (src/analysis/deadlock.h) ---

  // Runs the static deadlock/orphan/starvation analysis over every registered program plus
  // the kernel's concrete port topology. Under verify_on_load the per-program summaries are
  // maintained incrementally as programs register; otherwise (or for programs loaded while
  // verification was off) missing summaries are computed here on demand.
  analysis::SystemAnalysisReport AnalyzeSystem();

  // Runs the static data-race analysis (src/analysis/races/races.h) over the same
  // incrementally-maintained summaries, completing any missing ones first exactly like
  // AnalyzeSystem.
  analysis::RaceAnalysisReport AnalyzeRaces();

  // Runs the whole-system object-lifetime analysis (src/analysis/lifetime/lifetime.h) over
  // the same incrementally-maintained summaries, completing any missing ones first exactly
  // like AnalyzeSystem.
  analysis::LifetimeAnalysisReport AnalyzeLifetimes();

  // Runs the whole-system interference/immutability analysis
  // (src/analysis/interference/interference.h) over the same incrementally-maintained
  // summaries, completing any missing ones first exactly like AnalyzeSystem. Pairwise
  // independence verdicts are the lookahead oracle for parallel execution; the certificate
  // report is what EnsureInterferenceCertificates consumes for the translation cache.
  analysis::InterferenceAnalysisReport AnalyzeInterference();

  // The incrementally-maintained summary store. Tests and tools may mark additional
  // external senders/receivers before calling AnalyzeSystem().
  analysis::SystemEffectGraph& effect_graph() { return effect_graph_; }

  // Per-segment lifetime summaries, maintained alongside the effect graph.
  const std::map<ObjectIndex, analysis::LifetimeSummary>& lifetime_summaries() const {
    return lifetime_summaries_;
  }

  // Per-segment interference summaries, maintained alongside the effect graph.
  const std::map<ObjectIndex, analysis::InterferenceSummary>& interference_summaries() const {
    return interference_summaries_;
  }

  // Runs the whole-system guard-dominance analysis (src/analysis/guards/guards.h) over the
  // same incrementally-maintained summaries, completing any missing ones first exactly like
  // AnalyzeSystem. The certificate report is what EnsureGuardCertificates consumes for the
  // decode cache's check-elided fast path.
  analysis::GuardAnalysisReport AnalyzeGuards();

  // Per-segment guard summaries, maintained alongside the effect graph.
  const std::map<ObjectIndex, analysis::GuardSummary>& guard_summaries() const {
    return guard_summaries_;
  }

  // Drops all analysis state for a reclaimed instruction segment (summary + any deferred
  // initial-argument fact + its diagnostic name + lifetime summary and demotable-site set +
  // interference summary). Called by the GC reclaim observer. Any change to the analyzed
  // program set retracts the certificate basis, so the translation caches are cleared and
  // the certified set marked stale for lazy recomputation.
  void ForgetProgramAnalysis(ObjectIndex segment) {
    effect_graph_.RemoveProgram(segment);
    deferred_args_.erase(segment);
    symbols_.Forget(segment);
    lifetime_summaries_.erase(segment);
    demotable_sites_.erase(segment);
    interference_summaries_.erase(segment);
    guard_summaries_.erase(segment);
    InvalidateTranslationCaches();
  }

  // Turns on the dynamic race sanitizer (analysis/races/sanitizer.h). Pure observer: no
  // virtual-time effect; findings surface as kRaceDetected trace events and via races().
  void EnableRaceSanitizer() {
    if (race_sanitizer_ == nullptr) {
      race_sanitizer_ = std::make_unique<analysis::RaceSanitizer>();
    }
  }
  analysis::RaceSanitizer* race_sanitizer() { return race_sanitizer_.get(); }

  // Turns on the dynamic lifetime auditor (analysis/lifetime/auditor.h): every demoted
  // object is checked to be unreferenced from outside its population at scope exit. Pure
  // observer; findings surface as kLifetimeViolation trace events and via violations().
  void EnableLifetimeAuditor() {
    if (lifetime_auditor_ == nullptr) {
      lifetime_auditor_ = std::make_unique<analysis::LifetimeAuditor>();
    }
  }
  analysis::LifetimeAuditor* lifetime_auditor() { return lifetime_auditor_.get(); }

  // Arms the per-processor AD-translation caches (SystemConfig::xlat_cache): ProcessorStep
  // binds each processor's cache into the AddressingUnit and serves instruction fetches
  // through it. Host-side only — cycle charges are untouched, so virtual time and the PR 5
  // replay fingerprint are bit-identical with the cache on or off.
  void EnableXlatCache();
  bool xlat_cache_enabled() const { return xlat_cache_enabled_; }

  // Aggregate hit/miss counters over every processor's translation cache.
  XlatCacheStats xlat_stats() const;

  // Turns on the dynamic interference auditor (analysis/interference/auditor.h): every
  // certified translation-cache hit is re-derived against the authoritative table state.
  // Pure observer; findings surface as kInterferenceViolation trace events and in
  // stats().interference_violations.
  void EnableInterferenceAuditor();
  analysis::InterferenceAuditor* interference_auditor() { return interference_auditor_.get(); }

  // Arms the per-processor decode caches (SystemConfig::decode_cache): ProcessorStep fetches
  // pre-decoded segments through FetchDecoded, and instructions carrying a certified elision
  // mask execute the check-elided AddressingUnit fast path. Host-side only — cycle charges
  // are untouched, so virtual time and the PR 5 replay fingerprint are bit-identical with
  // the cache on or off.
  void EnableDecodeCache();
  bool decode_cache_enabled() const { return decode_cache_enabled_; }

  // Aggregate hit/miss counters over every processor's decode cache.
  DecodeCacheStats decode_stats() const;

  // Turns on the dynamic guard auditor (analysis/guards/auditor.h): every check-elided
  // execution re-runs the full skipped check set against the authoritative state. Pure
  // observer; findings surface as kGuardViolation trace events and in
  // stats().guard_violations.
  void EnableGuardAuditor();
  analysis::GuardAuditor* guard_auditor() { return guard_auditor_.get(); }

  // Object names used by analysis diagnostics and annotated disassembly. Name ports before
  // the programs using them load: summaries render their disassembly at registration time.
  SymbolTable& symbols() { return symbols_; }

  // Sum of busy cycles over all processors (for utilization metrics).
  Cycles TotalBusyCycles() const;

  // Collects the full GC root set: processor objects, the default dispatching port, shadow
  // roots from the port subsystem, and registered providers.
  void AppendRoots(std::vector<AccessDescriptor>* roots) const;

  // Process helpers shared with OS packages.
  ProcessView process_view(const AccessDescriptor& process) {
    return ProcessView(&machine_->addressing(), process);
  }
  // Makes a ready process runnable: direct handoff to an idle processor, else queue at its
  // dispatching port.
  Status MakeReady(const AccessDescriptor& process);

 private:
  struct ProcessorRec {
    uint16_t id = 0;
    AccessDescriptor object;
    AccessDescriptor dispatch_port;
    AccessDescriptor current;     // current process (mirror of the object slot)
    Cycles idle_since = 0;
    bool waiting = false;         // queued at the dispatching port as an idle receiver
    bool halted = false;
    Cycles stall_until = 0;       // transient stall: no execution before this time
    XlatCache xlat;               // per-processor AD-translation cache (xlat_cache_enabled_)
    DecodeCache decode;           // per-processor decode cache (decode_cache_enabled_)
  };

  // Outcome of one interpreted instruction.
  struct StepEffect {
    enum class Kind : uint8_t { kContinue, kBlocked, kTerminated, kYield };
    Kind kind = Kind::kContinue;
    Cycles compute = 0;
    Cycles bus = 0;
  };

  // One instruction for the process on processor `rec`.
  void ProcessorStep(uint16_t processor_id);
  // Tries to bind the next ready process; goes idle if none.
  void ProcessorFetch(uint16_t processor_id);
  // Binds `process` to the processor and schedules its first step after dispatch latency.
  void BindProcess(ProcessorRec& rec, const AccessDescriptor& process);

  // `elide` carries the instruction's certified guard_check elision mask (0 = full layered
  // checks; only full rights+bounds masks select the elided AddressingUnit path).
  Result<StepEffect> Execute(ProcessorRec& rec, ProcessView& proc, ContextView& ctx,
                             const Program& program, const Instruction& instruction,
                             uint8_t elide);

  // Send/receive bodies shared by the blocking, conditional and native forms. `cpu` is the
  // executing processor, for the event trace.
  Result<StepEffect> DoSend(uint16_t cpu, ProcessView& proc, const AccessDescriptor& port_ad,
                            const AccessDescriptor& message, bool can_block);
  Result<StepEffect> DoReceive(uint16_t cpu, ProcessView& proc, ContextView& ctx,
                               uint8_t dest_adreg, const AccessDescriptor& port_ad,
                               bool can_block);

  // Call/return machinery.
  Result<StepEffect> DoCall(uint16_t cpu, ProcessView& proc, ContextView& ctx,
                            const AccessDescriptor& domain_ad, uint32_t entry);
  Result<StepEffect> DoReturn(uint16_t cpu, ProcessView& proc, ContextView& ctx);
  Result<AccessDescriptor> CreateContext(ProcessView& proc, const AccessDescriptor& segment,
                                         const AccessDescriptor& domain,
                                         const AccessDescriptor& caller, Level level);

  // Forwards one accepted object access to the race sanitizer (no-op when off); a fresh
  // finding is surfaced as a kRaceDetected trace event on the spot.
  void NoteAccess(uint16_t cpu, ProcessView& proc, ContextView& ctx, ObjectIndex object,
                  analysis::ObjectPart part, analysis::AccessKind kind);

  // Fault delivery per the iMAX internal-level rules.
  void RaiseFault(ProcessView& proc, Fault fault);
  // Finalization of a finished process (reclaims the context stack).
  void TerminateProcess(ProcessView& proc, bool faulted);

  void NotifyEvent(const AccessDescriptor& process, ProcessEvent event);

  // Computes summaries for any program registered while verify-on-load was off (shared by
  // AnalyzeSystem and AnalyzeRaces).
  void EnsureSummaries();

  // Instruction fetch through the processor's translation cache: a hit skips the table
  // resolve and the program-store map lookup. Certified entries (instruction segments under
  // the kernel-trusted carve-out) skip revalidation entirely; epoch-keyed entries recheck
  // liveness, type, data_epoch, and the store version, so every path that could change what
  // an AD translates to forces the authoritative slow path.
  Result<const Program*> FetchProgramCached(ProcessorRec& rec, const AccessDescriptor& ad);

  // Pre-decoded instruction fetch through the processor's decode cache: a hit skips the
  // table resolve, the program-store map lookup, and the per-instruction re-decode. Every
  // entry is epoch-keyed (liveness, generation, type, data_epoch, store version revalidated
  // per step); certification rides per instruction as the DecodedInst elision mask folded
  // in from certified_elisions_ at fill time.
  Result<const DecodedSegment*> FetchDecoded(ProcessorRec& rec, const AccessDescriptor& ad);

  // Lazily recomputes certified_elisions_ from the guard-dominance analysis when stale.
  // Consumption rule (DESIGN.md §6.5): only certificate masks survive (level bits never
  // certify), and Execute additionally requires the full rights+bounds mask per site kind
  // before taking the elided path.
  void EnsureGuardCertificates();

  // Audits one check-elided execution when the guard auditor is armed: re-runs the skipped
  // rights/bounds checks and raises kGuardViolation on divergence. Pure observer.
  void AuditElidedData(ProcessorRec& rec, ProcessView& proc, const AccessDescriptor& ad,
                       uint32_t offset, uint32_t width, RightsMask required, uint32_t pc);
  void AuditElidedSlot(ProcessorRec& rec, ProcessView& proc, const AccessDescriptor& container,
                       uint32_t slot, RightsMask required, uint32_t pc);

  // Lazily recomputes certified_translations_ from the interference analysis when stale.
  // Consumption rule (DESIGN.md §6.4): generic objects only under a strict, caveat-free
  // kImmutable certificate on both parts; instruction segments whenever no summarized
  // program writes them (kernel-trusted carve-out — segments are registered with read-only
  // rights, and every kernel mutation path bumps the store version or clears these caches).
  void EnsureInterferenceCertificates();

  // Clears every processor's translation cache and marks the certified set stale. Called
  // whenever the analyzed program set changes (RecordEffectSummary, ForgetProgramAnalysis).
  void InvalidateTranslationCaches();

  // Certified-hit tap installed on the per-processor caches while the interference auditor
  // is armed; cross-checks the hit and raises kInterferenceViolation on mismatch.
  static void CertifiedHitThunk(void* kernel, const XlatEntry& entry);
  void OnCertifiedXlatHit(const XlatEntry& entry);

  // Computes and stores the IPC effect summary for a freshly-registered program, seeding
  // resolution from the loader's concrete knowledge of the initial argument. Also computes
  // the program's lifetime summary and demotable-site set (lifetime/lifetime.h).
  void RecordEffectSummary(ObjectIndex segment, const Program& program,
                           const AccessDescriptor& initial_arg, analysis::ProgramKind kind);

  // True when the create_object at (segment, pc) was proven context-local.
  bool IsDemotableSite(ObjectIndex segment, uint32_t pc) const;

  // The context's demote SRO, lazily created from the global heap at context level + 1
  // (null AD when creation failed; callers fall back to the named SRO).
  AccessDescriptor DemoteSroFor(ContextView& ctx, Level context_level);

  // Audits (when the auditor is on) and bulk-destroys the context's demote SRO, if any.
  // `cpu` attributes the kLifetimeViolation trace events. Returns the number of demoted
  // objects bulk-reclaimed (0 when the context never demoted an allocation).
  uint32_t ReclaimDemoteSro(uint16_t cpu, ProcessView& proc, ContextView& ctx);

  // Charges `compute` + `bus` starting at now(); returns completion time. `bucket` names
  // the attribution bin the compute portion lands in when the profiler or span tracer is
  // armed (bus wait/transfer split out automatically via BusGrant).
  Cycles ChargeCycles(ProcessorRec& rec, ProcessView& proc, Cycles compute, Cycles bus,
                      CycleBucket bucket = CycleBucket::kInterpreter);

  Machine* machine_;
  MemoryManager* memory_;
  PortSubsystem ports_;
  ProgramStore programs_;
  std::vector<ProcessorRec> processors_;
  std::map<uint32_t, ServiceFn> services_;
  ProcessEventFn process_event_handler_;
  std::vector<RootProviderFn> root_providers_;
  AccessDescriptor default_dispatch_port_;
  KernelStats stats_;
  bool verify_on_load_ = false;
  analysis::SystemEffectGraph effect_graph_;
  // Initial argument per instruction segment for processes loaded with verify-on-load off;
  // consumed by AnalyzeSystem's deferred summarization.
  std::map<ObjectIndex, AccessDescriptor> deferred_args_;
  SymbolTable symbols_;
  std::unique_ptr<analysis::RaceSanitizer> race_sanitizer_;
  std::unique_ptr<analysis::LifetimeAuditor> lifetime_auditor_;
  bool lifetime_demote_ = false;
  uint32_t demote_sro_bytes_ = 16 * 1024;
  std::map<ObjectIndex, analysis::LifetimeSummary> lifetime_summaries_;
  std::map<ObjectIndex, std::set<uint32_t>> demotable_sites_;  // segment -> demotable pcs
  std::map<ObjectIndex, analysis::InterferenceSummary> interference_summaries_;
  bool xlat_cache_enabled_ = false;
  // Objects whose translations the analysis certified immutable. The per-processor caches
  // hold a pointer to this set; it changes only under InvalidateTranslationCaches +
  // EnsureInterferenceCertificates, which clear the caches around every update.
  std::set<ObjectIndex> certified_translations_;
  bool certificates_stale_ = true;
  std::unique_ptr<analysis::InterferenceAuditor> interference_auditor_;
  std::map<ObjectIndex, analysis::GuardSummary> guard_summaries_;
  bool decode_cache_enabled_ = false;
  // Certified per-(segment, pc) elision masks the decode caches fold into DecodedInst at
  // fill time. Changes only under InvalidateTranslationCaches + EnsureGuardCertificates,
  // which clear the decode caches around every update.
  std::map<ObjectIndex, std::map<uint32_t, uint8_t>> certified_elisions_;
  bool guard_certificates_stale_ = true;
  std::unique_ptr<analysis::GuardAuditor> guard_auditor_;
  uint16_t audit_cpu_ = 0;  // processor attributed to kInterferenceViolation events

  // Observability bookkeeping (src/obs): open port waits keyed by process index and open
  // domain-call residences keyed by callee context index. Closed in MakeReady / DoReturn;
  // reaped on fault and termination so a reused object index can never pair a stale start
  // with a fresh end.
  struct BlockWait {
    Cycles start = 0;
    ObjectIndex port = kInvalidObjectIndex;
    bool is_send = false;  // blocked sender waits sit on the request's critical path;
                           // a receiver's pre-arrival wait does not
  };
  std::map<ObjectIndex, BlockWait> block_waits_;
  std::map<ObjectIndex, Cycles> call_starts_;
};

// Well-known OsCall service ids.
namespace os_service {
inline constexpr uint32_t kYield = 1;        // reenter the dispatching mix
inline constexpr uint32_t kGetTime = 2;      // r7 = current virtual time (cycles)
inline constexpr uint32_t kSetPriority = 3;  // set own priority = r7
inline constexpr uint32_t kSetDeadline = 4;  // set own deadline = r7
inline constexpr uint32_t kTimedReceive = 5; // receive from port a7 with timeout r7 cycles;
                                             // message lands in a7; expiry faults kTimeout
                                             // (the "limited set of timeout faults" level-2
                                             // iMAX processes are permitted, §7.3)
inline constexpr uint32_t kFirstPackageService = 16;  // iMAX packages register from here up
}  // namespace os_service

}  // namespace imax432

#endif  // IMAX432_SRC_EXEC_KERNEL_H_

// ExecutionContext: what a native step or kernel service sees of the executing process.
//
// Native steps (GC daemon, device servers, schedulers) and OsCall services receive one of
// these. It wraps the current process and context objects with typed accessors and exposes
// the kernel so system packages can reach the machine, memory manager and port subsystem.

#ifndef IMAX432_SRC_EXEC_EXECUTION_CONTEXT_H_
#define IMAX432_SRC_EXEC_EXECUTION_CONTEXT_H_

#include "src/arch/access_descriptor.h"
#include "src/proc/layouts.h"

namespace imax432 {

class Kernel;

class ExecutionContext {
 public:
  ExecutionContext(Kernel* kernel, uint16_t processor_id, const AccessDescriptor& process,
                   const AccessDescriptor& context)
      : kernel_(kernel), processor_id_(processor_id), process_(process), context_(context) {}

  Kernel& kernel() { return *kernel_; }
  uint16_t processor_id() const { return processor_id_; }
  const AccessDescriptor& process_ad() const { return process_; }
  const AccessDescriptor& context_ad() const { return context_; }

  // Typed views (constructed on demand; all state lives in the objects).
  ProcessView process() const;
  ContextView context() const;

  // Register shortcuts.
  uint64_t reg(uint8_t index) const { return context().reg(index); }
  void set_reg(uint8_t index, uint64_t value) { context().set_reg(index, value); }
  AccessDescriptor ad_reg(uint8_t index) const { return context().ad_reg(index); }
  void set_ad_reg(uint8_t index, const AccessDescriptor& value) {
    context().set_ad_reg(index, value);
  }

 private:
  Kernel* kernel_;
  uint16_t processor_id_;
  AccessDescriptor process_;
  AccessDescriptor context_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_EXEC_EXECUTION_CONTEXT_H_

#include "src/exec/kernel.h"

#include "src/analysis/effects.h"
#include "src/analysis/verifier.h"
#include "src/base/check.h"
#include "src/base/log.h"

namespace imax432 {

namespace {

constexpr uint16_t kDefaultDispatchCapacity = 1024;

bool ValidReg(uint8_t r) { return r < kNumDataRegs; }
bool ValidAdReg(uint8_t r) { return r < kNumAdRegs; }

// Abstract value the verifier should assume for an AD handed to a fresh program (the initial
// argument in a7). Resolving the descriptor turns the loader's concrete knowledge — type,
// rights, level, sizes — into seeded facts, which makes load-time verification strictly
// stronger than analyzing the program in a vacuum.
analysis::AdAbstract AbstractFromAd(ObjectTable& table, const AccessDescriptor& ad) {
  if (ad.is_null()) {
    return analysis::AdAbstract::Null();
  }
  auto descriptor = table.Resolve(ad);
  if (!descriptor.ok()) {
    return analysis::AdAbstract::Unknown();
  }
  return analysis::AdAbstract::Object(descriptor.value()->type, ad.rights(),
                                      analysis::LevelRange::Exact(descriptor.value()->level),
                                      descriptor.value()->data_length,
                                      descriptor.value()->access_count());
}

}  // namespace

ProcessView ExecutionContext::process() const {
  return ProcessView(&kernel_->machine().addressing(), process_);
}

ContextView ExecutionContext::context() const {
  return ContextView(&kernel_->machine().addressing(), context_);
}

Kernel::Kernel(Machine* machine, MemoryManager* memory)
    : machine_(machine),
      memory_(memory),
      ports_(machine, memory),
      programs_(machine, memory) {
  auto port = ports_.CreatePort(memory_->global_heap(), kDefaultDispatchCapacity,
                                QueueDiscipline::kPriority);
  IMAX_CHECK(port.ok());
  default_dispatch_port_ = port.value();
  // Dispatching traffic is kernel machinery, not program-level IPC: the dispatcher both
  // feeds and drains this port, so it never starves or orphans.
  effect_graph_.MarkExternalSender(default_dispatch_port_.index());
  effect_graph_.MarkExternalReceiver(default_dispatch_port_.index());
  effect_graph_.set_symbols(&symbols_);

  // Hot-patching a segment (ProgramStore::Replace) invalidates every summary computed for
  // the old code; without this retraction, elision certificates keyed by (segment, pc)
  // could be folded into a decode of the replacement program.
  programs_.SetReplaceHook([this](ObjectIndex segment) { ForgetProgramAnalysis(segment); });

  RegisterService(os_service::kYield, [](ExecutionContext&) -> Result<NativeResult> {
    NativeResult r;
    r.action = NativeResult::Action::kYield;
    return r;
  });
  RegisterService(os_service::kGetTime, [this](ExecutionContext& env) -> Result<NativeResult> {
    env.set_reg(kArgReg, machine_->now());
    return NativeResult{};
  });
  RegisterService(os_service::kSetPriority, [](ExecutionContext& env) -> Result<NativeResult> {
    env.process().set_priority(static_cast<uint8_t>(env.reg(kArgReg)));
    return NativeResult{};
  });
  RegisterService(os_service::kSetDeadline, [](ExecutionContext& env) -> Result<NativeResult> {
    env.process().set_deadline(static_cast<uint32_t>(env.reg(kArgReg)));
    return NativeResult{};
  });
  RegisterService(os_service::kTimedReceive,
                  [this](ExecutionContext& env) -> Result<NativeResult> {
    AccessDescriptor wait_port = env.ad_reg(kArgAdReg);
    Cycles timeout = env.reg(kArgReg);
    AccessDescriptor process = env.process_ad();

    NativeResult r;
    r.action = NativeResult::Action::kBlockReceive;
    r.port = wait_port;
    r.dest_adreg = kArgAdReg;

    // Arm the watchdog. It bites only if the process is still inside the blocking episode
    // the receive below opens: DoReceive bumps the block epoch when (and only when) it
    // actually blocks, so an immediately-satisfied receive, or any later re-block, leaves
    // the timer a no-op.
    uint32_t epoch = process_view(process).block_epoch() + 1;
    machine_->events().ScheduleAfter(timeout, [this, process, wait_port, epoch] {
      if (!machine_->table().Resolve(process).ok()) {
        return;
      }
      ProcessView proc = process_view(process);
      if (proc.state() != ProcessState::kBlocked || proc.block_epoch() != epoch) {
        return;
      }
      if (!ports_.RemoveBlockedReceiver(wait_port, process).ok()) {
        return;  // a message won the race
      }
      RaiseFault(proc, Fault::kTimeout);
    });
    return r;
  });
}

Status Kernel::AddProcessors(int count, const AccessDescriptor& dispatch_port) {
  AccessDescriptor port = dispatch_port.is_null() ? default_dispatch_port_ : dispatch_port;
  effect_graph_.MarkExternalSender(port.index());
  effect_graph_.MarkExternalReceiver(port.index());
  for (int i = 0; i < count; ++i) {
    IMAX_ASSIGN_OR_RETURN(
        AccessDescriptor object,
        memory_->CreateObject(memory_->global_heap(), SystemType::kProcessor,
                              ProcessorLayout::kDataBytes, ProcessorLayout::kAccessSlots,
                              rights::kRead | rights::kWrite));
    uint16_t id = static_cast<uint16_t>(processors_.size());
    ObjectView view(&machine_->addressing(), object);
    view.SetField(ProcessorLayout::kOffId, 2, id);
    view.SetField(ProcessorLayout::kOffState, 1,
                  static_cast<uint64_t>(ProcessorState::kIdle));
    view.SetSlot(ProcessorLayout::kSlotDispatchPort, port);

    processors_.push_back(ProcessorRec{id, object, port, AccessDescriptor(), machine_->now(),
                                       false, false, 0, XlatCache{}});
    machine_->profiler().OnProcessorAdded(id, machine_->now());
    processors_.back().xlat.SetCertifiedSet(&certified_translations_);
    if (interference_auditor_ != nullptr) {
      processors_.back().xlat.SetCertifiedHitHook(&Kernel::CertifiedHitThunk, this);
    }
    // The processor comes online and immediately looks for work.
    machine_->events().ScheduleAfter(0, [this, id] { ProcessorFetch(id); });
  }
  // push_back may have reallocated processors_; drop any stale addressing-unit binding
  // until the next ProcessorStep rebinds the executing processor's cache.
  machine_->addressing().BindXlatCache(nullptr);
  return Status::Ok();
}

void Kernel::RegisterService(uint32_t id, ServiceFn fn) { services_[id] = std::move(fn); }

Result<AccessDescriptor> Kernel::CreateProcess(ProgramRef program,
                                               const ProcessOptions& options) {
  AccessDescriptor sro =
      options.allocation_sro.is_null() ? memory_->global_heap() : options.allocation_sro;
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* sro_descriptor, machine_->table().Resolve(sro));
  Level base_level = sro_descriptor->level;

  if (verify_on_load_) {
    analysis::VerifyOptions verify_options;
    verify_options.entry = analysis::VerifyOptions::EntryKind::kProcessEntry;
    // The initial context executes one level below the process ("contexts live one level
    // below the process"), and the loader knows exactly what lands in a7.
    verify_options.entry_level = static_cast<uint32_t>(base_level + 1);
    verify_options.initial_arg = AbstractFromAd(machine_->table(), options.initial_arg);
    analysis::VerifyResult verdict = analysis::Verifier::Verify(*program, verify_options);
    ++stats_.programs_verified;
    if (!verdict.ok()) {
      ++stats_.programs_rejected;
      IMAX_LOG_INFO("kernel: verifier rejected process program:\n%s",
                    analysis::FormatDiagnostics(*program, verdict).c_str());
      return Fault::kVerificationFailed;
    }
  }

  ProgramRef loaded = program;  // keep the content for the effect summary below
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor segment, programs_.Register(std::move(program)));

  if (verify_on_load_) {
    // Incremental whole-system analysis upkeep: summarize the program's IPC effects now,
    // while the loader's concrete initial argument is in hand (see AnalyzeSystem).
    RecordEffectSummary(segment.index(), *loaded, options.initial_arg,
                        analysis::ProgramKind::kProcess);
  } else {
    // Defer the summary to the first AnalyzeSystem() call, but keep the concrete initial
    // argument — it is what makes the program's port uses resolvable at all. Until that
    // summary exists the program is unsummarized code entering the system: every certified
    // translation must be retracted (EnsureSummaries will cover it before recertification).
    deferred_args_[segment.index()] = options.initial_arg;
    InvalidateTranslationCaches();
  }
  // The kernel itself feeds fault and scheduler ports (RaiseFault / scheduler
  // notifications), so their receivers are never statically starved.
  if (!options.fault_port.is_null()) {
    effect_graph_.MarkExternalSender(options.fault_port.index());
  }
  if (!options.scheduler_port.is_null()) {
    effect_graph_.MarkExternalSender(options.scheduler_port.index());
  }
  if (!options.dispatch_port.is_null()) {
    effect_graph_.MarkExternalSender(options.dispatch_port.index());
    effect_graph_.MarkExternalReceiver(options.dispatch_port.index());
  }

  // The process object.
  IMAX_ASSIGN_OR_RETURN(
      AccessDescriptor process,
      memory_->CreateObject(sro, SystemType::kProcess, ProcessLayout::kDataBytes,
                            ProcessLayout::kAccessSlots,
                            rights::kRead | rights::kWrite | rights::kProcessControl));
  // The context (stack) SRO: contexts live one level below the process.
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor stack,
                        memory_->CreateLocalSro(sro, options.stack_bytes,
                                                static_cast<Level>(base_level + 1)));

  ProcessView proc(&machine_->addressing(), process);
  proc.set_state(ProcessState::kEmbryo);
  proc.SetField(ProcessLayout::kOffImaxLevel, 1, options.imax_level);
  proc.set_priority(options.priority);
  proc.set_deadline(options.deadline);
  proc.SetField(ProcessLayout::kOffBaseLevel, 2, base_level);
  proc.set_stop_count(1);  // created outside the dispatching mix
  proc.SetSlot(ProcessLayout::kSlotDispatchPort,
               options.dispatch_port.is_null() ? default_dispatch_port_
                                               : options.dispatch_port);
  proc.SetSlot(ProcessLayout::kSlotFaultPort, options.fault_port);
  proc.SetSlot(ProcessLayout::kSlotSchedulerPort, options.scheduler_port);
  proc.SetSlot(ProcessLayout::kSlotStackSro, stack);
  proc.SetSlot(ProcessLayout::kSlotParent, options.parent);

  // Link into the parent's child list (tree structure for nested start/stop).
  if (!options.parent.is_null()) {
    ProcessView parent(&machine_->addressing(), options.parent);
    AccessDescriptor first = parent.Slot(ProcessLayout::kSlotFirstChild);
    proc.SetSlot(ProcessLayout::kSlotNextSibling, first);
    parent.SetSlot(ProcessLayout::kSlotFirstChild, process);
  }

  // The initial context.
  IMAX_ASSIGN_OR_RETURN(
      AccessDescriptor context,
      CreateContext(proc, segment, AccessDescriptor(), AccessDescriptor(),
                    static_cast<Level>(base_level + 1)));
  ContextView ctx(&machine_->addressing(), context);
  ctx.set_reg(kArgReg, options.initial_value);
  ctx.set_ad_reg(kArgAdReg, options.initial_arg);
  proc.SetSlot(ProcessLayout::kSlotContext, context);
  proc.set_call_depth(1);

  ++stats_.processes_created;
  if (race_sanitizer_ != nullptr) {
    race_sanitizer_->OnProcessCreated(process.index());
  }
  if (machine_->spans().enabled()) {
    machine_->spans().OnSpawn(
        options.parent.is_null() ? kTraceNoProcess : options.parent.index(),
        process.index());
  }
  return process;
}

Result<AccessDescriptor> Kernel::CreateContext(ProcessView& proc,
                                               const AccessDescriptor& segment,
                                               const AccessDescriptor& domain,
                                               const AccessDescriptor& caller, Level level) {
  IMAX_ASSIGN_OR_RETURN(
      AccessDescriptor context,
      memory_->CreateObject(proc.stack_sro(), SystemType::kContext, ContextLayout::kDataBytes,
                            ContextLayout::kAccessSlots,
                            rights::kRead | rights::kWrite | rights::kDelete));
  // Contexts carry the level of their activation depth ("Each context object within a
  // process has a level one greater than that of its caller"), overriding the stack SRO's
  // fixed allocation level — this is the hardware's stack-allocation mechanism.
  machine_->table().At(context.index()).level = level;
  // The level override is a legitimate identity mutation: re-seal the patrol checksum.
  machine_->table().Seal(context.index());

  ContextView ctx(&machine_->addressing(), context);
  ctx.set_pc(0);
  ctx.SetSlot(ContextLayout::kSlotInstructionSegment, segment);
  ctx.SetSlot(ContextLayout::kSlotDomain, domain);
  ctx.SetSlot(ContextLayout::kSlotCaller, caller);
  ctx.SetSlot(ContextLayout::kSlotProcess, proc.ad());
  if (!domain.is_null()) {
    // The call instruction's amplification: code executing *inside* a domain can read its
    // own domain's access part (that is how a package reaches its private state), even
    // though the caller held only call rights — "providing the proper addressing
    // environment for any invoked subprogram."
    AccessDescriptor inside(domain.index(), domain.generation(),
                            static_cast<RightsMask>(domain.rights() | rights::kRead));
    ctx.set_ad_reg(kDomainAdReg, inside);
  }
  return context;
}

Result<AccessDescriptor> Kernel::CreateDomain(const std::vector<AccessDescriptor>& entries,
                                              uint32_t state_slots) {
  if (verify_on_load_) {
    for (const AccessDescriptor& entry_segment : entries) {
      IMAX_ASSIGN_OR_RETURN(ProgramRef entry_program, programs_.Fetch(entry_segment));
      analysis::VerifyOptions verify_options;
      verify_options.entry = analysis::VerifyOptions::EntryKind::kDomainEntry;
      // Domains are called from arbitrary levels with arbitrary arguments, so nothing else
      // can be seeded.
      analysis::VerifyResult verdict = analysis::Verifier::Verify(*entry_program, verify_options);
      ++stats_.programs_verified;
      if (!verdict.ok()) {
        ++stats_.programs_rejected;
        IMAX_LOG_INFO("kernel: verifier rejected domain entry program:\n%s",
                      analysis::FormatDiagnostics(*entry_program, verdict).c_str());
        return Fault::kVerificationFailed;
      }
      if (!effect_graph_.HasProgram(entry_segment.index())) {
        // Domain entries take arbitrary caller arguments: no initial-arg seeding.
        RecordEffectSummary(entry_segment.index(), *entry_program, AccessDescriptor(),
                            analysis::ProgramKind::kDomainEntry);
      }
    }
  } else {
    // Unsummarized entry code can now run through Call: retract every certified
    // translation until EnsureSummaries covers it.
    for (const AccessDescriptor& entry_segment : entries) {
      if (!effect_graph_.HasProgram(entry_segment.index())) {
        InvalidateTranslationCaches();
        break;
      }
    }
  }
  IMAX_ASSIGN_OR_RETURN(
      AccessDescriptor domain,
      memory_->CreateObject(memory_->global_heap(), SystemType::kDomain,
                            DomainLayout::kDataBytes,
                            static_cast<uint32_t>(entries.size()) + state_slots,
                            rights::kRead | rights::kWrite | rights::kDomainCall));
  ObjectView view(&machine_->addressing(), domain);
  view.SetField(DomainLayout::kOffEntryCount, 2, entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                          machine_->table().Resolve(entries[i]));
    if (descriptor->type != SystemType::kInstructionSegment) {
      return Fault::kTypeMismatch;
    }
    view.SetSlot(static_cast<uint32_t>(i), entries[i]);
  }
  // Holders of the returned AD may call the domain but not read or write its contents:
  // the protected-package property.
  return domain.Restricted(rights::kDomainCall);
}

Status Kernel::SetDomainState(const AccessDescriptor& domain, uint32_t state_index,
                              const AccessDescriptor& value) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * descriptor, machine_->table().Resolve(domain));
  if (descriptor->type != SystemType::kDomain) {
    return Fault::kTypeMismatch;
  }
  auto count = machine_->memory().Read(descriptor->data_base + DomainLayout::kOffEntryCount, 2);
  if (!count.ok()) {
    return count.fault();
  }
  uint32_t slot = static_cast<uint32_t>(count.value()) + state_index;
  if (slot >= descriptor->access_count()) {
    return Fault::kBoundsViolation;
  }
  return machine_->addressing().WriteAdPrivileged(domain, slot, value);
}

Status Kernel::StartProcess(const AccessDescriptor& process) {
  ProcessView proc = process_view(process);
  if (proc.state() == ProcessState::kTerminated) {
    return Fault::kWrongState;
  }
  int16_t count = proc.stop_count();
  if (count > 0) {
    proc.set_stop_count(static_cast<int16_t>(count - 1));
  }
  if (proc.stop_count() > 0) {
    return Status::Ok();  // still stopped
  }
  if (proc.state() == ProcessState::kEmbryo || proc.state() == ProcessState::kStopped) {
    return MakeReady(process);
  }
  return Status::Ok();
}

Status Kernel::ResumeProcess(const AccessDescriptor& process) {
  ProcessView proc = process_view(process);
  ProcessState state = proc.state();
  if (state == ProcessState::kTerminated || state == ProcessState::kRunning ||
      state == ProcessState::kReady) {
    return Fault::kWrongState;
  }
  return MakeReady(process);
}

Status Kernel::MarkStopped(const AccessDescriptor& process) {
  ProcessView proc = process_view(process);
  proc.set_stop_count(static_cast<int16_t>(proc.stop_count() + 1));
  return Status::Ok();
}

Status Kernel::RetireProcessor(uint16_t processor_id) {
  if (processor_id >= processors_.size()) {
    return Fault::kNotFound;
  }
  ProcessorRec& rec = processors_[processor_id];
  if (rec.halted) {
    return Fault::kWrongState;
  }
  rec.halted = true;
  ++stats_.processors_retired;
  machine_->profiler().OnRetired(processor_id, machine_->now());

  ObjectView processor(&machine_->addressing(), rec.object);
  if (rec.waiting) {
    // Parked at its dispatching port as an idle receiver: pull it out so MakeReady never
    // hands a process to a dead GDP.
    (void)ports_.RemoveWaitingProcessor(rec.dispatch_port, processor_id);
    processor.Increment(ProcessorLayout::kOffIdleCycles, 8, machine_->now() - rec.idle_since);
    rec.waiting = false;
  }
  processor.SetField(ProcessorLayout::kOffState, 1,
                     static_cast<uint64_t>(ProcessorState::kHalted));

  // Rescue the in-flight process. Execution is synchronous per instruction, so at retirement
  // time the process is at a consistent instruction boundary; any pending ProcessorStep
  // event no-ops once rec.current is cleared.
  uint32_t requeued = kTraceNoProcess;
  AccessDescriptor victim = rec.current;
  rec.current = AccessDescriptor();
  processor.SetSlot(ProcessorLayout::kSlotCurrentProcess, AccessDescriptor());
  if (!victim.is_null() && machine_->table().Resolve(victim).ok()) {
    ProcessView proc = process_view(victim);
    if (proc.state() == ProcessState::kRunning) {
      proc.set_slice_used(0);
      Status ready = MakeReady(victim);
      if (ready.ok()) {
        requeued = victim.index();
        ++stats_.retirement_requeues;
      } else {
        RaiseFault(proc, ready.fault());
      }
    }
  }
  machine_->trace().Emit(TraceEventKind::kProcessorRetired, machine_->now(), processor_id,
                         requeued, static_cast<uint32_t>(active_processor_count()));
  IMAX_LOG_INFO("processor %u retired (%d survive)", processor_id, active_processor_count());
  return Status::Ok();
}

Status Kernel::StallProcessor(uint16_t processor_id, Cycles duration) {
  if (processor_id >= processors_.size()) {
    return Fault::kNotFound;
  }
  ProcessorRec& rec = processors_[processor_id];
  if (rec.halted) {
    return Fault::kWrongState;
  }
  Cycles until = machine_->now() + duration;
  if (until > rec.stall_until) {
    rec.stall_until = until;
  }
  ++stats_.processors_stalled;
  // A parked processor re-checks the stall when a process is handed to it (BindProcess
  // schedules ProcessorStep, which defers); a running one defers at its next step.
  return Status::Ok();
}

int Kernel::active_processor_count() const {
  int active = 0;
  for (const ProcessorRec& rec : processors_) {
    if (!rec.halted) ++active;
  }
  return active;
}

Status Kernel::MakeReady(const AccessDescriptor& process) {
  ProcessView proc = process_view(process);
  // If the process was blocked at a port, the blocking episode ends here — whether it goes
  // ready or (stop pending) parks as stopped.
  auto wait = block_waits_.find(process.index());
  if (wait != block_waits_.end()) {
    Cycles waited = machine_->now() - wait->second.start;
    machine_->latency().port_wait.Record(waited);
    machine_->profiler().ChargeProcess(process.index(), CycleBucket::kPortWait, waited);
    if (wait->second.is_send && machine_->spans().enabled()) {
      // Only a blocked *sender's* wait sits on its request's critical path; a receiver's
      // pre-arrival wait belongs to no request.
      machine_->spans().ChargeCurrent(process.index(), CycleBucket::kPortWait, waited,
                                      machine_->now());
    }
    machine_->trace().Emit(TraceEventKind::kUnblock, machine_->now(), kTraceNoProcessor,
                           process.index(), wait->second.port,
                           static_cast<uint32_t>(waited));
    block_waits_.erase(wait);
  }
  if (proc.stop_count() > 0) {
    // Held out of the dispatching mix.
    proc.set_state(ProcessState::kStopped);
    NotifyEvent(process, ProcessEvent::kStopped);
    return Status::Ok();
  }
  proc.set_state(ProcessState::kReady);
  proc.set_slice_used(0);
  AccessDescriptor port = proc.dispatch_port();

  auto idle = ports_.PopWaitingProcessor(port);
  if (idle.ok()) {
    BindProcess(processors_[idle.value()], process);
    return Status::Ok();
  }
  // The hardware dispatching algorithm queues processes of any lifetime level, so this is a
  // privileged (microcode) store; stale ADs are filtered at dequeue.
  return ports_.Enqueue(port, process, proc.priority(), proc.deadline(),
                        /*privileged=*/true);
}

Status Kernel::PostMessage(const AccessDescriptor& port, const AccessDescriptor& message) {
  if (!port.is_null()) {
    // Traffic injected from outside the simulation: the static analysis must not claim this
    // port's receivers block forever.
    effect_graph_.MarkExternalSender(port.index());
  }
  auto receiver = ports_.PopBlockedReceiver(port);
  if (receiver.ok()) {
    ProcessView recv = process_view(receiver.value().process);
    ContextView recv_ctx(&machine_->addressing(), recv.context());
    Status stored = machine_->addressing().WriteAd(
        recv_ctx.ad(), ContextLayout::kSlotAdRegs + receiver.value().dest_adreg, message);
    if (!stored.ok()) {
      RaiseFault(recv, stored.fault());
      return stored;
    }
    recv.Increment(ProcessLayout::kOffMessagesReceived, 4);
    if (machine_->spans().enabled()) {
      machine_->spans().OnExternalHandoff(receiver.value().process.index(),
                                          machine_->now());
    }
    return MakeReady(receiver.value().process);
  }
  Status queued =
      ports_.Enqueue(port, message, /*sender_priority=*/128, /*sender_deadline=*/0);
  if (queued.ok()) {
    machine_->spans().OnExternalSend(ports_.last_enqueue_seq());
  }
  return queued;
}

void Kernel::BindProcess(ProcessorRec& rec, const AccessDescriptor& process) {
  ProcessView proc = process_view(process);
  if (rec.halted) {
    // Raced with retirement: hand the process back for a surviving processor to claim.
    proc.set_state(ProcessState::kReady);
    (void)ports_.Enqueue(proc.dispatch_port(), process, proc.priority(), proc.deadline(),
                         /*privileged=*/true);
    return;
  }
  machine_->profiler().CloseIdle(rec.id, machine_->now());
  if (proc.stop_count() > 0) {
    // A stop arrived while the process was queued: park it and look again.
    proc.set_state(ProcessState::kStopped);
    NotifyEvent(process, ProcessEvent::kStopped);
    machine_->profiler().ChargeCpu(rec.id, CycleBucket::kDispatch, cycles::kDispatch);
    machine_->events().ScheduleAfter(cycles::kDispatch,
                                     [this, id = rec.id] { ProcessorFetch(id); });
    return;
  }
  ObjectView processor(&machine_->addressing(), rec.object);
  // Close out an idle-wait period if the processor was parked at its dispatching port.
  if (rec.waiting) {
    processor.Increment(ProcessorLayout::kOffIdleCycles, 8, machine_->now() - rec.idle_since);
    rec.waiting = false;
  }
  rec.current = process;
  processor.SetSlot(ProcessorLayout::kSlotCurrentProcess, process);
  processor.SetField(ProcessorLayout::kOffState, 1,
                     static_cast<uint64_t>(ProcessorState::kRunning));
  processor.Increment(ProcessorLayout::kOffDispatches, 8);
  proc.set_state(ProcessState::kRunning);
  ++stats_.dispatches;

  // Dispatch latency: binding a process to a processor is itself a hardware algorithm.
  BusGrant grant;
  Cycles done = machine_->bus().Acquire(machine_->now() + cycles::kDispatch,
                                        cycles::kBusDispatch, &grant);
  if (machine_->profiler().enabled()) {
    CycleProfiler& profiler = machine_->profiler();
    profiler.Charge(rec.id, process.index(), CycleBucket::kDispatch, cycles::kDispatch);
    profiler.Charge(rec.id, process.index(), CycleBucket::kBusWait, grant.wait);
    profiler.Charge(rec.id, process.index(), CycleBucket::kBusTransfer, grant.busy);
  }
  if (machine_->spans().enabled()) {
    SpanTracer& spans = machine_->spans();
    spans.ChargeCurrent(process.index(), CycleBucket::kDispatch, cycles::kDispatch, done);
    spans.ChargeCurrent(process.index(), CycleBucket::kBusWait, grant.wait, done);
    spans.ChargeCurrent(process.index(), CycleBucket::kBusTransfer, grant.busy, done);
  }
  machine_->latency().dispatch_latency.Record(done - machine_->now());
  machine_->trace().Emit(TraceEventKind::kDispatch, machine_->now(), rec.id, process.index(),
                         static_cast<uint32_t>(done - machine_->now()));
  machine_->events().ScheduleAt(done, [this, id = rec.id] { ProcessorStep(id); });
}

void Kernel::ProcessorFetch(uint16_t processor_id) {
  ProcessorRec& rec = processors_[processor_id];
  if (rec.halted) {
    return;
  }
  if (machine_->now() < rec.stall_until) {
    // Transient stall: come back for work once the processor re-arbitrates.
    machine_->profiler().ChargeCpu(processor_id, CycleBucket::kFaultRecovery,
                                   rec.stall_until - machine_->now());
    machine_->events().ScheduleAt(rec.stall_until,
                                  [this, processor_id] { ProcessorFetch(processor_id); });
    return;
  }
  rec.current = AccessDescriptor();
  ObjectView processor(&machine_->addressing(), rec.object);
  processor.SetSlot(ProcessorLayout::kSlotCurrentProcess, AccessDescriptor());

  // Skip stale entries: a queued local-lifetime process whose ancestral SRO died leaves a
  // dangling AD that the generation check exposes here.
  for (;;) {
    auto next = ports_.Dequeue(rec.dispatch_port);
    if (!next.ok()) {
      break;
    }
    if (machine_->table().Resolve(next.value()).ok()) {
      BindProcess(rec, next.value());
      return;
    }
  }
  // Nothing ready: the processor idles at its dispatching port.
  processor.SetField(ProcessorLayout::kOffState, 1,
                     static_cast<uint64_t>(ProcessorState::kIdle));
  rec.idle_since = machine_->now();
  rec.waiting = true;
  machine_->trace().Emit(TraceEventKind::kIdle, machine_->now(), processor_id, kTraceNoProcess,
                         rec.dispatch_port.index());
  machine_->profiler().OpenIdle(processor_id);
  ports_.PushWaitingProcessor(rec.dispatch_port, processor_id);
}

Cycles Kernel::ChargeCycles(ProcessorRec& rec, ProcessView& proc, Cycles compute, Cycles bus,
                            CycleBucket bucket) {
  Cycles start = machine_->now();
  Cycles after_compute = start + compute;
  CycleProfiler& profiler = machine_->profiler();
  SpanTracer& spans = machine_->spans();
  Cycles done;
  if (profiler.enabled() || spans.enabled()) {
    BusGrant grant;
    done = machine_->bus().Acquire(after_compute, bus, &grant);
    uint32_t process = proc.ad().index();
    CycleBucket resolved = profiler.ResolveTag(process, bucket);
    if (profiler.enabled()) {
      profiler.Charge(rec.id, process, resolved, compute);
      profiler.Charge(rec.id, process, CycleBucket::kBusWait, grant.wait);
      profiler.Charge(rec.id, process, CycleBucket::kBusTransfer, grant.busy);
    }
    if (spans.enabled()) {
      spans.ChargeCurrent(process, resolved, compute, done);
      spans.ChargeCurrent(process, CycleBucket::kBusWait, grant.wait, done);
      spans.ChargeCurrent(process, CycleBucket::kBusTransfer, grant.busy, done);
    }
  } else {
    done = machine_->bus().Acquire(after_compute, bus);
  }
  Cycles duration = done - start;
  proc.Increment(ProcessLayout::kOffConsumed, 8, duration);
  proc.set_slice_used(proc.slice_used() + duration);
  ObjectView(&machine_->addressing(), rec.object)
      .Increment(ProcessorLayout::kOffBusyCycles, 8, duration);
  return done;
}

void Kernel::ProcessorStep(uint16_t processor_id) {
  ProcessorRec& rec = processors_[processor_id];
  if (rec.halted || rec.current.is_null()) {
    return;
  }
  if (machine_->now() < rec.stall_until) {
    // Transient stall: the bound process resumes exactly here once the stall lifts.
    machine_->profiler().ChargeCpu(processor_id, CycleBucket::kFaultRecovery,
                                   rec.stall_until - machine_->now());
    machine_->events().ScheduleAt(rec.stall_until,
                                  [this, processor_id] { ProcessorStep(processor_id); });
    return;
  }
  if (xlat_cache_enabled_) {
    // Per-processor translation cache: rebound every step so the addressing unit always
    // consults the cache of the processor actually executing, and never a pointer left
    // stale by a processors_ reallocation.
    machine_->addressing().BindXlatCache(&rec.xlat);
    audit_cpu_ = processor_id;
  }
  ProcessView proc = process_view(rec.current);

  // Honor stops at instruction boundaries ("nested stopping and starting of processes").
  if (proc.stop_count() > 0) {
    proc.set_state(ProcessState::kStopped);
    NotifyEvent(rec.current, ProcessEvent::kStopped);
    machine_->profiler().ChargeCpu(processor_id, CycleBucket::kDispatch, cycles::kSimpleOp);
    machine_->events().ScheduleAfter(cycles::kSimpleOp,
                                     [this, processor_id] { ProcessorFetch(processor_id); });
    return;
  }

  ContextView ctx(&machine_->addressing(), proc.context());
  const Program* program_ptr = nullptr;
  const DecodedSegment* decoded = nullptr;
  ProgramRef program_ref;  // keeps the uncached fetch's program alive through this step
  if (decode_cache_enabled_) {
    auto fetched = FetchDecoded(rec, ctx.instruction_segment());
    if (!fetched.ok()) {
      RaiseFault(proc, fetched.fault());
      machine_->profiler().ChargeCpu(processor_id, CycleBucket::kFaultRecovery,
                                     cycles::kDispatch);
      machine_->events().ScheduleAfter(cycles::kDispatch,
                                       [this, processor_id] { ProcessorFetch(processor_id); });
      return;
    }
    decoded = fetched.value();
    program_ptr = decoded->program;
  } else if (xlat_cache_enabled_) {
    auto cached = FetchProgramCached(rec, ctx.instruction_segment());
    if (!cached.ok()) {
      RaiseFault(proc, cached.fault());
      machine_->profiler().ChargeCpu(processor_id, CycleBucket::kFaultRecovery,
                                     cycles::kDispatch);
      machine_->events().ScheduleAfter(cycles::kDispatch,
                                       [this, processor_id] { ProcessorFetch(processor_id); });
      return;
    }
    program_ptr = cached.value();
  } else {
    auto program_result = programs_.Fetch(ctx.instruction_segment());
    if (!program_result.ok()) {
      RaiseFault(proc, program_result.fault());
      machine_->profiler().ChargeCpu(processor_id, CycleBucket::kFaultRecovery,
                                     cycles::kDispatch);
      machine_->events().ScheduleAfter(cycles::kDispatch,
                                       [this, processor_id] { ProcessorFetch(processor_id); });
      return;
    }
    program_ref = program_result.value();
    program_ptr = program_ref.get();
  }
  const Program& program = *program_ptr;

  uint32_t pc = ctx.pc();
  StepEffect effect;
  bool sampled_site = false;
  uint64_t site_segment = 0;
  if (pc >= program.size()) {
    // Falling off the end of a subprogram is an implicit return.
    auto returned = DoReturn(rec.id, proc, ctx);
    IMAX_CHECK(returned.ok());
    effect = returned.value();
  } else {
    if (machine_->profiler().enabled()) {
      // Capture the hot-site key before Execute: an explicit Return destroys the context
      // object, so reading the instruction segment afterwards would touch freed state.
      sampled_site = true;
      site_segment = ctx.instruction_segment().index();
    }
    // Stable copy when decoding from the cache: a service call inside Execute can register
    // a program and clear the decode caches, invalidating references into the entry.
    Instruction decoded_inst{};
    uint8_t elide = 0;
    if (decoded != nullptr) {
      decoded_inst = decoded->code[pc].inst;
      elide = decoded->code[pc].elide;
    }
    const Instruction& instruction = decoded != nullptr ? decoded_inst : program.at(pc);
    // The interpreter's instruction dump: with tracing on, each step lands in the event
    // timeline (and the kTrace log line reaches the recorder's annotation channel through
    // the sink installed by System) instead of spamming stderr.
    if (machine_->trace().enabled() && GetLogSeverity() == LogSeverity::kTrace) {
      machine_->trace().Emit(TraceEventKind::kInstruction, machine_->now(), processor_id,
                             rec.current.index(), pc, static_cast<uint32_t>(instruction.op));
      IMAX_LOG_TRACE("cpu %u process %u pc %u %s", processor_id, rec.current.index(), pc,
                     OpcodeName(instruction.op));
    }
    ctx.set_pc(pc + 1);
    auto result = Execute(rec, proc, ctx, program, instruction, elide);
    if (!result.ok()) {
      Fault fault = result.fault();
      if (fault == Fault::kSegmentSwapped) {
        // Transparent residency fault: bring the segment in, charge the transfer to this
        // process, and retry the same instruction. User code never observes this — the
        // memory-manager configurability point of §6.2.
        auto cost = memory_->EnsureResident(machine_->addressing().last_swapped_object());
        if (cost.ok()) {
          ctx.set_pc(pc);
          ++stats_.swap_faults;
          Cycles done = ChargeCycles(rec, proc, cost.value(), 0, CycleBucket::kMemoryWait);
          machine_->events().ScheduleAt(done,
                                        [this, processor_id] { ProcessorStep(processor_id); });
          return;
        }
        fault = cost.fault();
      }
      ctx.set_pc(pc);  // the process faulted *at* this instruction
      RaiseFault(proc, fault);
      machine_->profiler().ChargeCpu(processor_id, CycleBucket::kFaultRecovery,
                                     cycles::kDispatch);
      machine_->events().ScheduleAfter(cycles::kDispatch,
                                       [this, processor_id] { ProcessorFetch(processor_id); });
      return;
    }
    effect = result.value();
  }

  Cycles done = ChargeCycles(rec, proc, effect.compute, effect.bus);
  if (sampled_site) {
    // now() is constant for the duration of this event, so done - now() is the full
    // modeled duration the instruction just charged.
    machine_->profiler().SampleSite(site_segment, pc, done - machine_->now());
  }
  ++stats_.instructions_executed;

  switch (effect.kind) {
    case StepEffect::Kind::kContinue: {
      if (proc.slice_used() >= machine_->config().time_slice) {
        // Time-slice end: implicit hardware rescheduling. The requeue happens at the
        // instruction's completion time so the process cannot overlap itself on another
        // processor.
        ++stats_.time_slice_ends;
        machine_->trace().Emit(TraceEventKind::kPreempt, done, rec.id, rec.current.index());
        proc.set_slice_used(0);
        machine_->events().ScheduleAt(done, [this, process = rec.current] {
          IMAX_CHECK(MakeReady(process).ok());
        });
        machine_->events().ScheduleAt(done,
                                      [this, processor_id] { ProcessorFetch(processor_id); });
      } else {
        machine_->events().ScheduleAt(done,
                                      [this, processor_id] { ProcessorStep(processor_id); });
      }
      break;
    }
    case StepEffect::Kind::kYield: {
      proc.set_slice_used(0);
      machine_->events().ScheduleAt(done, [this, process = rec.current] {
        IMAX_CHECK(MakeReady(process).ok());
      });
      machine_->events().ScheduleAt(done,
                                    [this, processor_id] { ProcessorFetch(processor_id); });
      break;
    }
    case StepEffect::Kind::kBlocked: {
      ++stats_.blocks;
      machine_->events().ScheduleAt(done,
                                    [this, processor_id] { ProcessorFetch(processor_id); });
      break;
    }
    case StepEffect::Kind::kTerminated: {
      TerminateProcess(proc, /*faulted=*/false);
      NotifyEvent(rec.current, ProcessEvent::kTerminated);
      machine_->events().ScheduleAt(done,
                                    [this, processor_id] { ProcessorFetch(processor_id); });
      break;
    }
  }
}

void Kernel::NoteAccess(uint16_t cpu, ProcessView& proc, ContextView& ctx, ObjectIndex object,
                        analysis::ObjectPart part, analysis::AccessKind kind) {
  if (race_sanitizer_ == nullptr) return;
  // ProcessorStep advanced the pc before Execute, so the current instruction is pc - 1.
  const uint32_t pc = ctx.pc() - 1;
  const analysis::RaceRecord* record = race_sanitizer_->OnAccess(
      proc.ad().index(), object, part, kind, pc, machine_->now());
  if (record != nullptr) {
    machine_->trace().Emit(TraceEventKind::kRaceDetected, machine_->now(), cpu,
                           record->second_process, record->object, record->second_pc,
                           record->first_process);
  }
}

Result<Kernel::StepEffect> Kernel::Execute(ProcessorRec& rec, ProcessView& proc,
                                           ContextView& ctx, const Program& program,
                                           const Instruction& in, uint8_t elide) {
  AddressingUnit& au = machine_->addressing();
  StepEffect effect;

  switch (in.op) {
    case Opcode::kCompute:
      effect.compute = in.imm;
      return effect;

    case Opcode::kLoadImm:
      if (!ValidReg(in.a)) return Fault::kRegisterOutOfRange;
      ctx.set_reg(in.a, in.imm64);
      effect.compute = cycles::kSimpleOp;
      return effect;

    case Opcode::kMove:
      if (!ValidReg(in.a) || !ValidReg(in.b)) return Fault::kRegisterOutOfRange;
      ctx.set_reg(in.a, ctx.reg(in.b));
      effect.compute = cycles::kSimpleOp;
      return effect;

    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul: {
      if (!ValidReg(in.a) || !ValidReg(in.b) || !ValidReg(in.c)) {
        return Fault::kRegisterOutOfRange;
      }
      uint64_t lhs = ctx.reg(in.b);
      uint64_t rhs = ctx.reg(in.c);
      uint64_t value = in.op == Opcode::kAdd   ? lhs + rhs
                       : in.op == Opcode::kSub ? lhs - rhs
                                               : lhs * rhs;
      ctx.set_reg(in.a, value);
      effect.compute = cycles::kSimpleOp;
      return effect;
    }

    case Opcode::kAddImm:
      if (!ValidReg(in.a) || !ValidReg(in.b)) return Fault::kRegisterOutOfRange;
      ctx.set_reg(in.a, ctx.reg(in.b) + in.imm);
      effect.compute = cycles::kSimpleOp;
      return effect;

    case Opcode::kLoadData:
    case Opcode::kLoadDataIndexed: {
      if (!ValidReg(in.a) || !ValidAdReg(in.b)) return Fault::kRegisterOutOfRange;
      uint32_t width = in.op == Opcode::kLoadData ? in.c : 8;
      uint32_t offset = in.imm;
      if (in.op == Opcode::kLoadDataIndexed) {
        if (!ValidReg(in.c)) return Fault::kRegisterOutOfRange;
        offset += static_cast<uint32_t>(ctx.reg(in.c));
      }
      constexpr uint8_t kDataMask = analysis::guard_check::kRights |
                                    analysis::guard_check::kDataBounds;
      uint64_t value = 0;
      if ((elide & kDataMask) == kDataMask) {
        // Certified check-elided fast path: rights + bounds proven dominated; liveness,
        // quarantine, and residency remain dynamic inside ReadDataElided.
        if (guard_auditor_ != nullptr) {
          AuditElidedData(rec, proc, ctx.ad_reg(in.b), offset, width, rights::kRead,
                          ctx.pc() - 1);
        }
        IMAX_ASSIGN_OR_RETURN(value, au.ReadDataElided(ctx.ad_reg(in.b), offset, width));
        ++stats_.guard_elisions;
      } else {
        IMAX_ASSIGN_OR_RETURN(value, au.ReadData(ctx.ad_reg(in.b), offset, width));
      }
      NoteAccess(rec.id, proc, ctx, ctx.ad_reg(in.b).index(), analysis::ObjectPart::kData,
                 analysis::AccessKind::kRead);
      ctx.set_reg(in.a, value);
      effect.compute = cycles::kDataAccessBase;
      effect.bus = cycles::kBusDataAccess;
      return effect;
    }

    case Opcode::kStoreData:
    case Opcode::kStoreDataIndexed: {
      if (!ValidAdReg(in.a) || !ValidReg(in.b)) return Fault::kRegisterOutOfRange;
      uint32_t width = in.op == Opcode::kStoreData ? in.c : 8;
      uint32_t offset = in.imm;
      if (in.op == Opcode::kStoreDataIndexed) {
        if (!ValidReg(in.c)) return Fault::kRegisterOutOfRange;
        offset += static_cast<uint32_t>(ctx.reg(in.c));
      }
      constexpr uint8_t kDataMask = analysis::guard_check::kRights |
                                    analysis::guard_check::kDataBounds;
      if ((elide & kDataMask) == kDataMask) {
        if (guard_auditor_ != nullptr) {
          AuditElidedData(rec, proc, ctx.ad_reg(in.a), offset, width, rights::kWrite,
                          ctx.pc() - 1);
        }
        IMAX_RETURN_IF_FAULT(au.WriteDataElided(ctx.ad_reg(in.a), offset, width,
                                                ctx.reg(in.b)));
        ++stats_.guard_elisions;
      } else {
        IMAX_RETURN_IF_FAULT(au.WriteData(ctx.ad_reg(in.a), offset, width, ctx.reg(in.b)));
      }
      NoteAccess(rec.id, proc, ctx, ctx.ad_reg(in.a).index(), analysis::ObjectPart::kData,
                 analysis::AccessKind::kWrite);
      effect.compute = cycles::kDataAccessBase;
      effect.bus = cycles::kBusDataAccess;
      return effect;
    }

    case Opcode::kMoveAd:
      if (!ValidAdReg(in.a) || !ValidAdReg(in.b)) return Fault::kRegisterOutOfRange;
      ctx.set_ad_reg(in.a, ctx.ad_reg(in.b));
      effect.compute = cycles::kAdMove;
      effect.bus = cycles::kBusAdMove;
      return effect;

    case Opcode::kClearAd:
      if (!ValidAdReg(in.a)) return Fault::kRegisterOutOfRange;
      ctx.set_ad_reg(in.a, AccessDescriptor());
      effect.compute = cycles::kSimpleOp;
      return effect;

    case Opcode::kLoadAd:
    case Opcode::kLoadAdIndexed: {
      if (!ValidAdReg(in.a) || !ValidAdReg(in.b)) return Fault::kRegisterOutOfRange;
      uint32_t slot = in.imm;
      if (in.op == Opcode::kLoadAdIndexed) {
        if (!ValidReg(in.c)) return Fault::kRegisterOutOfRange;
        slot += static_cast<uint32_t>(ctx.reg(in.c));
      }
      constexpr uint8_t kSlotMask = analysis::guard_check::kRights |
                                    analysis::guard_check::kSlotBounds;
      AccessDescriptor value;
      if ((elide & kSlotMask) == kSlotMask) {
        if (guard_auditor_ != nullptr) {
          AuditElidedSlot(rec, proc, ctx.ad_reg(in.b), slot, rights::kRead, ctx.pc() - 1);
        }
        IMAX_ASSIGN_OR_RETURN(value, au.ReadAdElided(ctx.ad_reg(in.b), slot));
        ++stats_.guard_elisions;
      } else {
        IMAX_ASSIGN_OR_RETURN(value, au.ReadAd(ctx.ad_reg(in.b), slot));
      }
      NoteAccess(rec.id, proc, ctx, ctx.ad_reg(in.b).index(), analysis::ObjectPart::kAccess,
                 analysis::AccessKind::kRead);
      ctx.set_ad_reg(in.a, value);
      effect.compute = cycles::kAdMove;
      effect.bus = cycles::kBusAdMove;
      return effect;
    }

    case Opcode::kStoreAd:
    case Opcode::kStoreAdIndexed: {
      if (!ValidAdReg(in.a) || !ValidAdReg(in.b)) return Fault::kRegisterOutOfRange;
      uint32_t slot = in.imm;
      if (in.op == Opcode::kStoreAdIndexed) {
        if (!ValidReg(in.c)) return Fault::kRegisterOutOfRange;
        slot += static_cast<uint32_t>(ctx.reg(in.c));
      }
      // The checked mutator store: rights, bounds, level rule, gray-bit.
      IMAX_RETURN_IF_FAULT(au.WriteAd(ctx.ad_reg(in.a), slot, ctx.ad_reg(in.b)));
      NoteAccess(rec.id, proc, ctx, ctx.ad_reg(in.a).index(), analysis::ObjectPart::kAccess,
                 analysis::AccessKind::kWrite);
      effect.compute = cycles::kAdMove;
      effect.bus = cycles::kBusAdMove;
      return effect;
    }

    case Opcode::kRestrictRights:
      if (!ValidAdReg(in.a)) return Fault::kRegisterOutOfRange;
      ctx.set_ad_reg(in.a, ctx.ad_reg(in.a).Restricted(static_cast<RightsMask>(in.imm)));
      effect.compute = cycles::kSimpleOp;
      return effect;

    case Opcode::kAdIsNull:
      if (!ValidReg(in.a) || !ValidAdReg(in.b)) return Fault::kRegisterOutOfRange;
      ctx.set_reg(in.a, ctx.ad_reg(in.b).is_null() ? 1 : 0);
      effect.compute = cycles::kSimpleOp;
      return effect;

    case Opcode::kCreateObject: {
      if (!ValidAdReg(in.a) || !ValidAdReg(in.b)) return Fault::kRegisterOutOfRange;
      bool demoted = false;
      if (lifetime_demote_ && !ctx.ad_reg(in.b).is_null()) {
        // The dispatcher advanced pc past this instruction before Execute.
        const uint32_t site_pc = ctx.pc() - 1;
        const ObjectIndex segment = ctx.instruction_segment().index();
        if (IsDemotableSite(segment, site_pc)) {
          Level context_level = machine_->table().At(ctx.ad().index()).level;
          AccessDescriptor demote_sro = DemoteSroFor(ctx, context_level);
          auto local = demote_sro.is_null()
                           ? Result<AccessDescriptor>(Fault::kStorageExhausted)
                           : memory_->CreateObject(
                                 demote_sro, SystemType::kGeneric, in.imm, in.c,
                                 rights::kRead | rights::kWrite | rights::kDelete);
          if (local.ok()) {
            const AccessDescriptor object = local.value();
            // Skip GC registration: exempt objects are permanently black (never whitened,
            // never swept); their outgoing slots are scanned as roots. Reclamation happens
            // only through the bulk destroy at context exit (see gc/collector.h).
            ObjectDescriptor& descriptor = machine_->table().At(object.index());
            descriptor.gc_exempt = true;
            descriptor.color = GcColor::kBlack;  // exempt implies black, from birth
            if (lifetime_auditor_ != nullptr) {
              lifetime_auditor_->OnDemoted(object.index(), object.generation(),
                                           demote_sro.index(), segment, site_pc);
            }
            ctx.set_ad_reg(in.a, object);
            ++stats_.demotions;
            demoted = true;
          } else {
            ++stats_.demote_fallbacks;  // demote SRO exhausted or uncreatable
          }
        }
      }
      if (!demoted) {
        IMAX_ASSIGN_OR_RETURN(
            AccessDescriptor object,
            memory_->CreateObject(ctx.ad_reg(in.b), SystemType::kGeneric, in.imm, in.c,
                                  rights::kRead | rights::kWrite | rights::kDelete));
        ctx.set_ad_reg(in.a, object);
      }
      // Identical charge on both paths: demotion must not perturb virtual time.
      effect.compute = cycles::CreateObjectCost(in.imm, in.c);
      effect.bus = cycles::kBusCreateObject;
      return effect;
    }

    case Opcode::kDestroyObject: {
      if (!ValidAdReg(in.a)) return Fault::kRegisterOutOfRange;
      const ObjectIndex dying = ctx.ad_reg(in.a).index();
      IMAX_RETURN_IF_FAULT(memory_->DestroyObject(ctx.ad_reg(in.a)));
      // Destruction conflicts with any concurrent access to either part; check against the
      // prior epochs before dropping the object's sanitizer state.
      NoteAccess(rec.id, proc, ctx, dying, analysis::ObjectPart::kData,
                 analysis::AccessKind::kWrite);
      NoteAccess(rec.id, proc, ctx, dying, analysis::ObjectPart::kAccess,
                 analysis::AccessKind::kWrite);
      if (race_sanitizer_ != nullptr) race_sanitizer_->OnObjectDestroyed(dying);
      if (lifetime_auditor_ != nullptr) lifetime_auditor_->OnObjectDestroyed(dying);
      ctx.set_ad_reg(in.a, AccessDescriptor());
      effect.compute = cycles::kDestroyObject;
      effect.bus = cycles::kBusCreateObject / 2;
      return effect;
    }

    case Opcode::kCreateSro: {
      if (!ValidAdReg(in.a) || !ValidAdReg(in.b)) return Fault::kRegisterOutOfRange;
      Level context_level = machine_->table().At(ctx.ad().index()).level;
      IMAX_ASSIGN_OR_RETURN(
          AccessDescriptor sro,
          memory_->CreateLocalSro(ctx.ad_reg(in.b), in.imm,
                                  static_cast<Level>(context_level + 1)));
      // Record ownership so the local heap dies with this activation.
      bool recorded = false;
      for (uint32_t slot = 0; slot < ContextLayout::kNumOwnedSroSlots; ++slot) {
        if (ctx.Slot(ContextLayout::kSlotOwnedSros + slot).is_null()) {
          ctx.SetSlot(ContextLayout::kSlotOwnedSros + slot, sro);
          recorded = true;
          break;
        }
      }
      if (!recorded) {
        (void)memory_->DestroySro(sro);
        return Fault::kStorageExhausted;  // too many local heaps in one activation
      }
      ctx.set_ad_reg(in.a, sro);
      effect.compute = cycles::kCreateObjectBase;
      effect.bus = cycles::kBusCreateObject;
      return effect;
    }

    case Opcode::kDestroySro: {
      if (!ValidAdReg(in.a)) return Fault::kRegisterOutOfRange;
      AccessDescriptor sro = ctx.ad_reg(in.a);
      IMAX_ASSIGN_OR_RETURN(uint32_t reclaimed, memory_->DestroySro(sro));
      NoteAccess(rec.id, proc, ctx, sro.index(), analysis::ObjectPart::kData,
                 analysis::AccessKind::kWrite);
      NoteAccess(rec.id, proc, ctx, sro.index(), analysis::ObjectPart::kAccess,
                 analysis::AccessKind::kWrite);
      if (race_sanitizer_ != nullptr) race_sanitizer_->OnObjectDestroyed(sro.index());
      // Clear the ownership slot if this was one of ours.
      for (uint32_t slot = 0; slot < ContextLayout::kNumOwnedSroSlots; ++slot) {
        if (ctx.Slot(ContextLayout::kSlotOwnedSros + slot).SameObject(sro)) {
          ctx.SetSlot(ContextLayout::kSlotOwnedSros + slot, AccessDescriptor());
        }
      }
      ctx.set_ad_reg(in.a, AccessDescriptor());
      effect.compute = cycles::kDestroyObject + reclaimed * cycles::kGcFreeObject / 4;
      effect.bus = cycles::kBusCreateObject / 2;
      return effect;
    }

    case Opcode::kSend:
    case Opcode::kCondSend: {
      if (!ValidAdReg(in.a) || !ValidAdReg(in.b)) return Fault::kRegisterOutOfRange;
      bool can_block = in.op == Opcode::kSend;
      if (!can_block && !ValidReg(in.c)) return Fault::kRegisterOutOfRange;
      auto sent = DoSend(rec.id, proc, ctx.ad_reg(in.a), ctx.ad_reg(in.b), can_block);
      if (!sent.ok()) {
        if (!can_block && sent.fault() == Fault::kQueueFull) {
          ctx.set_reg(in.c, 0);
          effect.compute = cycles::kSend;
          effect.bus = cycles::kBusSend;
          return effect;
        }
        return sent.fault();
      }
      if (!can_block) {
        ctx.set_reg(in.c, 1);
      }
      return sent.value();
    }

    case Opcode::kReceive:
    case Opcode::kCondReceive: {
      if (!ValidAdReg(in.a) || !ValidAdReg(in.b)) return Fault::kRegisterOutOfRange;
      bool can_block = in.op == Opcode::kReceive;
      if (!can_block && !ValidReg(in.c)) return Fault::kRegisterOutOfRange;
      auto received = DoReceive(rec.id, proc, ctx, in.a, ctx.ad_reg(in.b), can_block);
      if (!received.ok()) {
        if (!can_block && received.fault() == Fault::kQueueEmpty) {
          ctx.set_reg(in.c, 0);
          effect.compute = cycles::kReceive;
          effect.bus = cycles::kBusReceive;
          return effect;
        }
        return received.fault();
      }
      if (!can_block) {
        ctx.set_reg(in.c, 1);
      }
      return received.value();
    }

    case Opcode::kCall:
      if (!ValidAdReg(in.a)) return Fault::kRegisterOutOfRange;
      return DoCall(rec.id, proc, ctx, ctx.ad_reg(in.a), in.imm);

    case Opcode::kCallLocal:
      return DoCall(rec.id, proc, ctx, ctx.domain(), in.imm);

    case Opcode::kReturn:
      return DoReturn(rec.id, proc, ctx);

    case Opcode::kBranch:
      ctx.set_pc(in.imm);
      effect.compute = cycles::kBranch;
      return effect;

    case Opcode::kBranchIfZero:
    case Opcode::kBranchIfNotZero: {
      if (!ValidReg(in.a)) return Fault::kRegisterOutOfRange;
      bool zero = ctx.reg(in.a) == 0;
      if (zero == (in.op == Opcode::kBranchIfZero)) {
        ctx.set_pc(in.imm);
      }
      effect.compute = cycles::kBranch;
      return effect;
    }

    case Opcode::kBranchIfLess:
      if (!ValidReg(in.a) || !ValidReg(in.b)) return Fault::kRegisterOutOfRange;
      if (ctx.reg(in.a) < ctx.reg(in.b)) {
        ctx.set_pc(in.imm);
      }
      effect.compute = cycles::kBranch;
      return effect;

    case Opcode::kHalt:
      effect.kind = StepEffect::Kind::kTerminated;
      effect.compute = cycles::kSimpleOp;
      return effect;

    case Opcode::kNative:
    case Opcode::kOsCall: {
      NativeFn const* fn = nullptr;
      Cycles base_cost = cycles::kSimpleOp;
      if (in.op == Opcode::kNative) {
        fn = program.native(in.imm);
        if (fn == nullptr) {
          return Fault::kInvalidInstruction;
        }
      } else {
        auto it = services_.find(in.imm);
        if (it == services_.end()) {
          return Fault::kNotFound;
        }
        fn = &it->second;
        // An OS call costs what any subprogram call costs — the uniformity point of §4.
        base_cost = cycles::kLocalCall;
      }
      ExecutionContext env(this, rec.id, proc.ad(), ctx.ad());
      IMAX_ASSIGN_OR_RETURN(NativeResult native, (*fn)(env));
      effect.compute = base_cost + native.compute;
      effect.bus = native.bus;
      switch (native.action) {
        case NativeResult::Action::kContinue:
          return effect;
        case NativeResult::Action::kJump:
          ctx.set_pc(native.jump_target);
          return effect;
        case NativeResult::Action::kYield:
          effect.kind = StepEffect::Kind::kYield;
          return effect;
        case NativeResult::Action::kHalt:
          effect.kind = StepEffect::Kind::kTerminated;
          return effect;
        case NativeResult::Action::kBlockReceive: {
          auto received = DoReceive(rec.id, proc, ctx, native.dest_adreg, native.port,
                                    /*can_block=*/true);
          if (!received.ok()) {
            return received.fault();
          }
          effect.kind = received.value().kind;
          effect.compute += received.value().compute;
          effect.bus += received.value().bus;
          return effect;
        }
      }
      return Fault::kInvalidInstruction;
    }
  }
  return Fault::kInvalidInstruction;
}

Result<Kernel::StepEffect> Kernel::DoSend(uint16_t cpu, ProcessView& proc,
                                          const AccessDescriptor& port_ad,
                                          const AccessDescriptor& message, bool can_block) {
  AddressingUnit& au = machine_->addressing();
  auto typed = au.ResolveTyped(port_ad, SystemType::kPort, rights::kPortSend);
  if (!typed.ok()) {
    return typed.fault();
  }
  StepEffect effect;
  effect.compute = cycles::kSend;
  effect.bus = cycles::kBusSend;

  // A receiver already waits: hand the message straight over (the fast path of the hardware
  // port algorithms).
  auto receiver = ports_.PopBlockedReceiver(port_ad);
  if (receiver.ok()) {
    ProcessView recv = process_view(receiver.value().process);
    ContextView recv_ctx(&machine_->addressing(), recv.context());
    Status stored = au.WriteAd(recv_ctx.ad(),
                               ContextLayout::kSlotAdRegs + receiver.value().dest_adreg,
                               message);
    if (!stored.ok()) {
      // The *receive* fails its level check; the receiver faults, the sender is unaffected
      // (its message was consumed by the faulting receive).
      RaiseFault(recv, stored.fault());
      proc.Increment(ProcessLayout::kOffMessagesSent, 4);
      return effect;
    }
    recv.Increment(ProcessLayout::kOffMessagesReceived, 4);
    proc.Increment(ProcessLayout::kOffMessagesSent, 4);
    if (race_sanitizer_ != nullptr) {
      race_sanitizer_->OnHandoff(proc.ad().index(), receiver.value().process.index());
    }
    if (machine_->spans().enabled()) {
      machine_->spans().OnHandoff(proc.ad().index(), receiver.value().process.index(),
                                  machine_->now());
    }
    // The message never touches the queue on this path, so Enqueue/Dequeue cannot trace it;
    // emit the transfer pair here (depth 0: a handoff implies an empty queue).
    if (machine_->trace().enabled()) {
      machine_->trace().Emit(TraceEventKind::kSend, machine_->now(), cpu, proc.ad().index(),
                             port_ad.index(), 0, message.index());
      machine_->trace().Emit(TraceEventKind::kReceive, machine_->now(), kTraceNoProcessor,
                             receiver.value().process.index(), port_ad.index(), 0,
                             message.index());
    }
    IMAX_RETURN_IF_FAULT(MakeReady(receiver.value().process));
    return effect;
  }

  Status queued = ports_.Enqueue(port_ad, message, proc.priority(), proc.deadline());
  if (queued.ok()) {
    proc.Increment(ProcessLayout::kOffMessagesSent, 4);
    if (race_sanitizer_ != nullptr) {
      race_sanitizer_->OnSend(proc.ad().index(), ports_.last_enqueue_seq());
    }
    machine_->spans().OnSend(proc.ad().index(), ports_.last_enqueue_seq(), machine_->now());
    return effect;
  }
  if (queued.fault() != Fault::kQueueFull) {
    return queued.fault();  // protection fault (e.g. level violation) — sender faults
  }
  if (!can_block) {
    return Fault::kQueueFull;
  }
  // Port full: the sender blocks. "If the message queue of the port is full then the calling
  // process will block until a message slot becomes available."
  IMAX_RETURN_IF_FAULT(ports_.PushBlockedSender(port_ad, BlockedSender{proc.ad(), message}));
  proc.set_state(ProcessState::kBlocked);
  proc.bump_block_epoch();
  block_waits_[proc.ad().index()] =
      BlockWait{machine_->now(), port_ad.index(), /*is_send=*/true};
  if (machine_->trace().enabled()) {
    auto depth = ports_.QueuedCount(port_ad);
    machine_->trace().Emit(TraceEventKind::kBlockSend, machine_->now(), cpu,
                           proc.ad().index(), port_ad.index(),
                           depth.ok() ? depth.value() : 0);
  }
  effect.kind = StepEffect::Kind::kBlocked;
  effect.compute += cycles::kBlockOnPort;
  return effect;
}

Result<Kernel::StepEffect> Kernel::DoReceive(uint16_t cpu, ProcessView& proc, ContextView& ctx,
                                             uint8_t dest_adreg,
                                             const AccessDescriptor& port_ad, bool can_block) {
  AddressingUnit& au = machine_->addressing();
  auto typed = au.ResolveTyped(port_ad, SystemType::kPort, rights::kPortReceive);
  if (!typed.ok()) {
    return typed.fault();
  }
  StepEffect effect;
  effect.compute = cycles::kReceive;
  effect.bus = cycles::kBusReceive;

  auto message = ports_.Dequeue(port_ad);
  if (message.ok()) {
    ctx.set_ad_reg(dest_adreg, message.value());
    proc.Increment(ProcessLayout::kOffMessagesReceived, 4);
    if (race_sanitizer_ != nullptr) {
      race_sanitizer_->OnReceive(proc.ad().index(), ports_.last_dequeue_seq());
    }
    machine_->spans().OnReceive(proc.ad().index(), ports_.last_dequeue_seq(),
                                machine_->now());
    // A slot freed up: admit one blocked sender.
    auto sender = ports_.PopBlockedSender(port_ad);
    if (sender.ok()) {
      ProcessView sending = process_view(sender.value().process);
      Status queued = ports_.Enqueue(port_ad, sender.value().message, sending.priority(),
                                     sending.deadline());
      if (queued.ok()) {
        sending.Increment(ProcessLayout::kOffMessagesSent, 4);
        if (race_sanitizer_ != nullptr) {
          race_sanitizer_->OnSend(sending.ad().index(), ports_.last_enqueue_seq());
        }
        machine_->spans().OnSend(sending.ad().index(), ports_.last_enqueue_seq(),
                                 machine_->now());
        IMAX_RETURN_IF_FAULT(MakeReady(sender.value().process));
      } else {
        // The deferred send hit a protection fault: it is the sender's fault to take.
        RaiseFault(sending, queued.fault());
      }
    }
    return effect;
  }
  if (message.fault() != Fault::kQueueEmpty) {
    return message.fault();
  }
  if (!can_block) {
    return Fault::kQueueEmpty;
  }
  // "If no message is available the process will block until a message becomes available."
  IMAX_RETURN_IF_FAULT(
      ports_.PushBlockedReceiver(port_ad, BlockedReceiver{proc.ad(), dest_adreg}));
  proc.set_state(ProcessState::kBlocked);
  proc.bump_block_epoch();
  block_waits_[proc.ad().index()] =
      BlockWait{machine_->now(), port_ad.index(), /*is_send=*/false};
  machine_->spans().OnBlockReceive(proc.ad().index(), machine_->now());
  if (machine_->trace().enabled()) {
    auto depth = ports_.QueuedCount(port_ad);
    machine_->trace().Emit(TraceEventKind::kBlockReceive, machine_->now(), cpu,
                           proc.ad().index(), port_ad.index(),
                           depth.ok() ? depth.value() : 0);
  }
  effect.kind = StepEffect::Kind::kBlocked;
  effect.compute += cycles::kBlockOnPort;
  return effect;
}

Result<Kernel::StepEffect> Kernel::DoCall(uint16_t cpu, ProcessView& proc, ContextView& ctx,
                                          const AccessDescriptor& domain_ad, uint32_t entry) {
  AddressingUnit& au = machine_->addressing();
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * domain,
                        au.ResolveTyped(domain_ad, SystemType::kDomain, rights::kDomainCall));
  auto entry_count = machine_->memory().Read(domain->data_base + DomainLayout::kOffEntryCount, 2);
  IMAX_CHECK(entry_count.ok());
  if (entry >= entry_count.value()) {
    return Fault::kBoundsViolation;
  }
  // The call instruction dereferences the domain's entry list with microcode privilege: the
  // caller holds only call rights, yet ends up executing the package's code — that *is* the
  // protected-entry mechanism.
  AccessDescriptor segment = domain->access[entry];
  if (segment.is_null()) {
    return Fault::kNullAccess;
  }
  bool local = domain_ad.SameObject(ctx.domain());
  Level level = static_cast<Level>(machine_->table().At(ctx.ad().index()).level + 1);
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor callee,
                        CreateContext(proc, segment, domain_ad, ctx.ad(), level));
  ContextView callee_ctx(&au, callee);
  // Calling convention: r7 / a7 carry the argument; a6 names the current domain.
  callee_ctx.set_reg(kArgReg, ctx.reg(kArgReg));
  callee_ctx.set_ad_reg(kArgAdReg, ctx.ad_reg(kArgAdReg));
  proc.SetSlot(ProcessLayout::kSlotContext, callee);
  proc.set_call_depth(static_cast<uint16_t>(proc.call_depth() + 1));

  StepEffect effect;
  if (local) {
    ++stats_.local_calls;
    effect.compute = cycles::kLocalCall;
    effect.bus = cycles::kBusDomainCall / 2;
    machine_->trace().Emit(TraceEventKind::kLocalCall, machine_->now(), cpu,
                           proc.ad().index(), callee.index());
  } else {
    ++stats_.domain_calls;
    effect.compute = cycles::kDomainCall;
    effect.bus = cycles::kBusDomainCall;
    // The modeled switch cost rides in the payload so the exporter can draw the calibrated
    // ~65 microsecond slice; the residence time is closed out at the matching return.
    call_starts_[callee.index()] = machine_->now();
    machine_->spans().OnDomainCall(proc.ad().index(), machine_->now());
    machine_->trace().Emit(TraceEventKind::kDomainCall, machine_->now(), cpu,
                           proc.ad().index(), callee.index(),
                           static_cast<uint32_t>(cycles::kDomainCall),
                           domain_ad.index());
  }
  return effect;
}

Result<Kernel::StepEffect> Kernel::DoReturn(uint16_t cpu, ProcessView& proc, ContextView& ctx) {
  AddressingUnit& au = machine_->addressing();
  StepEffect effect;

  // Demoted allocations die with the activation too — audited first, while every object
  // that could illegally hold one of their ADs is still alive to be caught.
  effect.compute += ReclaimDemoteSro(cpu, proc, ctx) * cycles::kGcFreeObject / 4;

  // Local heaps created by this activation die with it.
  for (uint32_t slot = 0; slot < ContextLayout::kNumOwnedSroSlots; ++slot) {
    AccessDescriptor owned = ctx.Slot(ContextLayout::kSlotOwnedSros + slot);
    if (!owned.is_null()) {
      auto reclaimed = memory_->DestroySro(owned);
      if (reclaimed.ok()) {
        effect.compute += reclaimed.value() * cycles::kGcFreeObject / 4;
      }
      ctx.SetSlot(ContextLayout::kSlotOwnedSros + slot, AccessDescriptor());
    }
  }

  AccessDescriptor caller = ctx.caller();
  if (caller.is_null()) {
    // Top-level return: the process completes.
    effect.kind = StepEffect::Kind::kTerminated;
    effect.compute += cycles::kLocalReturn;
    return effect;
  }
  ContextView caller_ctx(&au, caller);
  // Return value convention: r7 always copies back; a7 copies back through the *checked*
  // store — returning an AD for an object deeper than the caller's activation is exactly the
  // lifetime escape Ada forbids, and it faults here.
  caller_ctx.set_reg(kArgReg, ctx.reg(kArgReg));
  AccessDescriptor returned = ctx.ad_reg(kArgAdReg);
  if (!returned.is_null()) {
    IMAX_RETURN_IF_FAULT(
        au.WriteAd(caller, ContextLayout::kSlotAdRegs + kArgAdReg, returned));
  }

  bool local = ctx.domain().SameObject(caller_ctx.domain()) ||
               (ctx.domain().is_null() && caller_ctx.domain().is_null());
  AccessDescriptor dying = ctx.ad();
  // Close the domain-call residence opened at DoCall (absent for local calls).
  auto call_start = call_starts_.find(dying.index());
  if (call_start != call_starts_.end()) {
    Cycles residence = machine_->now() - call_start->second;
    machine_->latency().domain_call.Record(residence);
    machine_->spans().OnDomainReturn(proc.ad().index(), machine_->now());
    machine_->trace().Emit(TraceEventKind::kDomainReturn, machine_->now(), cpu,
                           proc.ad().index(), dying.index(),
                           static_cast<uint32_t>(residence));
    call_starts_.erase(call_start);
  } else {
    machine_->trace().Emit(TraceEventKind::kLocalReturn, machine_->now(), cpu,
                           proc.ad().index(), dying.index());
  }
  proc.SetSlot(ProcessLayout::kSlotContext, caller);
  proc.set_call_depth(static_cast<uint16_t>(proc.call_depth() - 1));
  // The context returns to the stack SRO's free list (stack discipline).
  IMAX_RETURN_IF_FAULT(memory_->DestroyObject(dying));

  effect.compute += local ? cycles::kLocalReturn : cycles::kDomainReturn;
  effect.bus = cycles::kBusDomainCall / 2;
  return effect;
}

void Kernel::RaiseFault(ProcessView& proc, Fault fault) {
  proc.set_fault_code(fault);
  proc.Increment(ProcessLayout::kOffFaultCount, 4);
  uint8_t level = proc.imax_level();

  // §7.3: "Processes below level 3 of the system ... are in general not permitted to fault.
  // Processes at level 2 are actually permitted a limited set of timeout faults while those
  // at level 1 are not permitted even these."
  bool permitted =
      level >= kImaxLevelServices || (level == kImaxLevelMemory && fault == Fault::kTimeout);
  // A fault ends any blocking episode (e.g. a timed receive whose watchdog fired) without a
  // completed wait to record.
  block_waits_.erase(proc.ad().index());
  machine_->spans().OnFault(proc.ad().index(), machine_->now());
  machine_->trace().Emit(TraceEventKind::kFault, machine_->now(), kTraceNoProcessor,
                         proc.ad().index(), static_cast<uint32_t>(fault),
                         permitted && !proc.fault_port().is_null() ? 1 : 0);
  if (!permitted) {
    ++stats_.panics;
    IMAX_LOG_ERROR("iMAX design-rule violation: level-%u process faulted with %s", level,
                   FaultName(fault));
    TerminateProcess(proc, /*faulted=*/true);
    NotifyEvent(proc.ad(), ProcessEvent::kPanicked);
    return;
  }

  ++stats_.faults_delivered;
  proc.set_state(ProcessState::kFaulted);
  AccessDescriptor fault_port = proc.fault_port();
  if (!fault_port.is_null()) {
    // "sending them back to software when various fault or scheduling conditions arise":
    // the faulted process object itself is the message.
    Status sent = PostMessage(fault_port, proc.ad());
    if (sent.ok()) {
      NotifyEvent(proc.ad(), ProcessEvent::kFaulted);
      return;
    }
  }
  TerminateProcess(proc, /*faulted=*/true);
  NotifyEvent(proc.ad(), ProcessEvent::kFaulted);
}

void Kernel::TerminateProcess(ProcessView& proc, bool faulted) {
  proc.set_state(ProcessState::kTerminated);
  block_waits_.erase(proc.ad().index());
  machine_->spans().OnTerminate(proc.ad().index(), machine_->now());
  if (race_sanitizer_ != nullptr) race_sanitizer_->OnProcessRetired(proc.ad().index());
  machine_->trace().Emit(TraceEventKind::kTerminate, machine_->now(), kTraceNoProcessor,
                         proc.ad().index(), faulted ? 1 : 0);

  // Dispose of the activation stack: destroy local heaps owned by live contexts, then the
  // stack SRO (which reclaims every context in one sweep — the local-heap efficiency story).
  AccessDescriptor context = proc.context();
  AddressingUnit& au = machine_->addressing();
  while (!context.is_null()) {
    if (!machine_->table().Resolve(context).ok()) {
      break;
    }
    ContextView ctx(&au, context);
    call_starts_.erase(context.index());
    (void)ReclaimDemoteSro(kTraceNoProcessor, proc, ctx);
    for (uint32_t slot = 0; slot < ContextLayout::kNumOwnedSroSlots; ++slot) {
      AccessDescriptor owned = ctx.Slot(ContextLayout::kSlotOwnedSros + slot);
      if (!owned.is_null()) {
        (void)memory_->DestroySro(owned);
      }
    }
    context = ctx.caller();
  }
  AccessDescriptor stack = proc.stack_sro();
  proc.SetSlot(ProcessLayout::kSlotContext, AccessDescriptor());
  proc.SetSlot(ProcessLayout::kSlotStackSro, AccessDescriptor());
  if (!stack.is_null()) {
    (void)memory_->DestroySro(stack);
  }
  ++stats_.processes_terminated;
}

void Kernel::NotifyEvent(const AccessDescriptor& process, ProcessEvent event) {
  if (process_event_handler_) {
    process_event_handler_(process, event);
  }
}

void Kernel::RecordEffectSummary(ObjectIndex segment, const Program& program,
                                 const AccessDescriptor& initial_arg,
                                 analysis::ProgramKind kind) {
  analysis::EffectOptions options =
      analysis::EffectOptionsForTable(machine_->table(), initial_arg, &symbols_);
  analysis::EffectSummary effects = analysis::EffectAnalyzer::Analyze(program, options);

  // The interference summary reuses the effect pass's resolved access list, so it rides
  // along at negligible extra cost and AnalyzeInterference never re-walks the program.
  interference_summaries_[segment] =
      analysis::InterferenceAnalyzer::Analyze(program, options, effects);
  ++stats_.interference_summaries;

  // The guard-dominance summary shares the same effect pass, so check-elision verdicts
  // exist the moment the program can run (and AnalyzeGuards never re-walks the program).
  guard_summaries_[segment] = analysis::GuardAnalyzer::Analyze(program, options, effects);
  ++stats_.guard_summaries;

  effect_graph_.AddProgram(segment, std::move(effects), kind);
  ++stats_.effect_summaries;

  // The lifetime summary rides along so demotion verdicts exist the moment the program can
  // run (and AnalyzeLifetimes never recomputes).
  analysis::LifetimeSummary lifetime = analysis::LifetimeAnalyzer::Analyze(program, options);
  std::set<uint32_t> demotable;
  for (uint32_t pc : analysis::DemotableSites(lifetime)) demotable.insert(pc);
  demotable_sites_[segment] = std::move(demotable);
  lifetime_summaries_[segment] = std::move(lifetime);
  ++stats_.lifetime_summaries;

  // A new summary can retract previously certified immutability: kill every cached
  // translation and force recertification before the next certified hit.
  InvalidateTranslationCaches();
}

bool Kernel::IsDemotableSite(ObjectIndex segment, uint32_t pc) const {
  auto it = demotable_sites_.find(segment);
  return it != demotable_sites_.end() && it->second.count(pc) != 0;
}

AccessDescriptor Kernel::DemoteSroFor(ContextView& ctx, Level context_level) {
  AccessDescriptor existing = ctx.Slot(ContextLayout::kSlotDemoteSro);
  if (!existing.is_null()) return existing;
  // Same level as a program-created local heap: objects inside it can reference each other
  // and anything longer-lived, and nothing at a lower level can legally store ADs to them.
  auto sro = memory_->CreateLocalSro(memory_->global_heap(), demote_sro_bytes_,
                                     static_cast<Level>(context_level + 1));
  if (!sro.ok()) return {};
  ctx.SetSlot(ContextLayout::kSlotDemoteSro, sro.value());
  ++stats_.demote_sros_created;
  return sro.value();
}

uint32_t Kernel::ReclaimDemoteSro(uint16_t cpu, ProcessView& proc, ContextView& ctx) {
  AccessDescriptor sro = ctx.Slot(ContextLayout::kSlotDemoteSro);
  if (sro.is_null()) return 0;
  if (lifetime_auditor_ != nullptr) {
    auto violations = lifetime_auditor_->AuditScopeExit(machine_->table(), sro.index(),
                                                        ctx.ad().index());
    for (const analysis::LifetimeViolation& violation : violations) {
      ++stats_.lifetime_violations;
      machine_->trace().Emit(TraceEventKind::kLifetimeViolation, machine_->now(), cpu,
                             proc.ad().index(), violation.object, violation.holder,
                             violation.alloc_pc);
      IMAX_LOG_ERROR(
          "lifetime audit: demoted object %u (segment %u pc %u) still referenced by "
          "object %u slot %u at scope exit",
          violation.object, violation.segment, violation.alloc_pc, violation.holder,
          violation.holder_slot);
    }
  }
  ctx.SetSlot(ContextLayout::kSlotDemoteSro, AccessDescriptor());
  auto reclaimed = memory_->DestroySro(sro);
  if (!reclaimed.ok()) return 0;
  stats_.demoted_bulk_reclaimed += reclaimed.value();
  return reclaimed.value();
}

void Kernel::EnsureSummaries() {
  // Programs loaded while verify_on_load was off have no summary yet; compute them now,
  // seeding each from the initial argument remembered at CreateProcess time. A program with
  // no recorded argument (registered directly with the store) starts from "any object" —
  // strictly weaker than the incremental path, never wrong.
  programs_.ForEach([this](ObjectIndex segment, const Program& program) {
    if (!effect_graph_.HasProgram(segment)) {
      auto deferred = deferred_args_.find(segment);
      RecordEffectSummary(
          segment, program,
          deferred != deferred_args_.end() ? deferred->second : AccessDescriptor(),
          analysis::ProgramKind::kProcess);
    }
  });
}

analysis::SystemAnalysisReport Kernel::AnalyzeSystem() {
  EnsureSummaries();
  return effect_graph_.Analyze();
}

analysis::RaceAnalysisReport Kernel::AnalyzeRaces() {
  EnsureSummaries();
  return analysis::AnalyzeRaces(effect_graph_);
}

analysis::LifetimeAnalysisReport Kernel::AnalyzeLifetimes() {
  EnsureSummaries();
  return analysis::AnalyzeLifetimes(effect_graph_, lifetime_summaries_);
}

analysis::InterferenceAnalysisReport Kernel::AnalyzeInterference() {
  EnsureSummaries();
  return analysis::AnalyzeInterference(effect_graph_, interference_summaries_);
}

analysis::GuardAnalysisReport Kernel::AnalyzeGuards() {
  EnsureSummaries();
  return analysis::AnalyzeGuards(effect_graph_, guard_summaries_, interference_summaries_);
}

void Kernel::EnableXlatCache() {
  xlat_cache_enabled_ = true;
  certificates_stale_ = true;
  for (ProcessorRec& rec : processors_) {
    rec.xlat.SetCertifiedSet(&certified_translations_);
    if (interference_auditor_ != nullptr) {
      rec.xlat.SetCertifiedHitHook(&Kernel::CertifiedHitThunk, this);
    }
  }
}

void Kernel::EnableInterferenceAuditor() {
  if (interference_auditor_ == nullptr) {
    interference_auditor_ = std::make_unique<analysis::InterferenceAuditor>();
  }
  for (ProcessorRec& rec : processors_) {
    rec.xlat.SetCertifiedHitHook(&Kernel::CertifiedHitThunk, this);
  }
}

void Kernel::EnableDecodeCache() {
  decode_cache_enabled_ = true;
  guard_certificates_stale_ = true;
}

void Kernel::EnableGuardAuditor() {
  if (guard_auditor_ == nullptr) {
    guard_auditor_ = std::make_unique<analysis::GuardAuditor>();
  }
}

DecodeCacheStats Kernel::decode_stats() const {
  DecodeCacheStats total;
  for (const ProcessorRec& rec : processors_) {
    total.hits += rec.decode.stats().hits;
    total.misses += rec.decode.stats().misses;
  }
  return total;
}

XlatCacheStats Kernel::xlat_stats() const {
  XlatCacheStats total;
  for (const ProcessorRec& rec : processors_) {
    const XlatCacheStats& s = rec.xlat.stats();
    total.hits += s.hits;
    total.certified_hits += s.certified_hits;
    total.misses += s.misses;
    total.program_hits += s.program_hits;
    total.certified_program_hits += s.certified_program_hits;
    total.program_misses += s.program_misses;
  }
  return total;
}

void Kernel::InvalidateTranslationCaches() {
  certificates_stale_ = true;
  guard_certificates_stale_ = true;
  if (decode_cache_enabled_) {
    for (ProcessorRec& rec : processors_) rec.decode.Clear();
    ++stats_.decode_invalidations;
  }
  if (!xlat_cache_enabled_) return;
  for (ProcessorRec& rec : processors_) rec.xlat.Clear();
  ++stats_.xlat_invalidations;
}

void Kernel::EnsureInterferenceCertificates() {
  if (!certificates_stale_) return;
  // EnsureSummaries can re-mark us stale through RecordEffectSummary; the flag is cleared
  // only at the very end, after the certified set reflects every summary just computed.
  EnsureSummaries();
  analysis::InterferenceAnalysisReport report =
      analysis::AnalyzeInterference(effect_graph_, interference_summaries_);
  certified_translations_.clear();

  // Generic objects qualify only under strict, caveat-free immutability certificates on
  // every certified part: zero false positives, at the price of recall.
  std::map<ObjectIndex, bool> strict;
  for (const analysis::CacheCertificate& cert : report.certificates) {
    bool ok = cert.grade == analysis::CacheGrade::kImmutable && !cert.caveat;
    auto [it, inserted] = strict.emplace(cert.object, ok);
    if (!inserted) it->second = it->second && ok;
  }
  ObjectTable& table = machine_->table();
  for (const auto& [object, ok] : strict) {
    if (!ok || object >= table.capacity()) continue;
    const ObjectDescriptor& descriptor = table.At(object);
    if (descriptor.allocated && descriptor.type == SystemType::kGeneric) {
      certified_translations_.insert(object);
    }
  }

  // Instruction segments qualify whenever no summarized program writes them. The store
  // registers them read-only, and every kernel mutation path (Register, Forget via the GC
  // reclaim observer) bumps the store version or clears these caches anyway.
  programs_.ForEach([this](ObjectIndex segment, const Program&) {
    for (const auto& [index, summary] : interference_summaries_) {
      if (summary.Writes(segment, analysis::ObjectPart::kData) ||
          summary.Writes(segment, analysis::ObjectPart::kAccess)) {
        return;
      }
    }
    certified_translations_.insert(segment);
  });

  // The membership just changed; entries filled against the old set are untrustworthy.
  for (ProcessorRec& rec : processors_) rec.xlat.Clear();
  certificates_stale_ = false;
}

Result<const Program*> Kernel::FetchProgramCached(ProcessorRec& rec,
                                                 const AccessDescriptor& ad) {
  XlatEntry& entry = rec.xlat.Probe(ad.index());
  if (entry.program != nullptr && entry.index == ad.index() &&
      entry.generation == ad.generation()) {
    if (entry.certified) {
      // Analysis-certified immutable: no revalidation at all. The dynamic auditor (when
      // armed) cross-checks the claim against the live descriptor.
      ++rec.xlat.stats().certified_program_hits;
      rec.xlat.NotifyCertifiedHit(entry);
      return static_cast<const Program*>(entry.program);
    }
    // Epoch-keyed: revalidate exactly what ProgramStore::Fetch checks, plus the epochs
    // that witness content stability (descriptor data_epoch, store version).
    const ObjectDescriptor* descriptor = entry.descriptor;
    if (descriptor->allocated && descriptor->generation == ad.generation() &&
        descriptor->type == SystemType::kInstructionSegment &&
        descriptor->data_epoch == entry.data_epoch &&
        entry.program_version == programs_.version()) {
      ++rec.xlat.stats().program_hits;
      return static_cast<const Program*>(entry.program);
    }
  }
  ++rec.xlat.stats().program_misses;
  EnsureInterferenceCertificates();
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * descriptor, machine_->table().Resolve(ad));
  if (descriptor->type != SystemType::kInstructionSegment) {
    return Fault::kTypeMismatch;
  }
  const Program* program = programs_.Find(ad.index());
  if (program == nullptr) {
    return Fault::kNotFound;
  }
  // Re-probe: EnsureInterferenceCertificates may have cleared the cache above.
  XlatEntry& fill = rec.xlat.Probe(ad.index());
  fill = XlatEntry{};
  fill.index = ad.index();
  fill.generation = ad.generation();
  fill.descriptor = descriptor;
  fill.program = program;
  fill.program_version = programs_.version();
  fill.data_epoch = descriptor->data_epoch;
  fill.type = static_cast<uint8_t>(SystemType::kInstructionSegment);
  fill.certified = rec.xlat.IsCertified(ad.index());
  return program;
}

void Kernel::EnsureGuardCertificates() {
  if (!guard_certificates_stale_) return;
  // EnsureSummaries can re-mark us stale through RecordEffectSummary; the flag is cleared
  // only at the very end, after the elision map reflects every summary just computed.
  EnsureSummaries();
  analysis::GuardAnalysisReport report =
      analysis::AnalyzeGuards(effect_graph_, guard_summaries_, interference_summaries_);
  certified_elisions_.clear();
  for (const analysis::ElisionCertificate& cert : report.certificates) {
    std::map<uint32_t, uint8_t>& per_pc = certified_elisions_[cert.segment];
    for (const analysis::ElidedCheck& check : cert.checks) {
      per_pc[check.pc] = check.mask;
    }
  }
  // The elision basis just changed; entries decoded against the old map are untrustworthy.
  for (ProcessorRec& rec : processors_) rec.decode.Clear();
  guard_certificates_stale_ = false;
}

Result<const DecodedSegment*> Kernel::FetchDecoded(ProcessorRec& rec,
                                                   const AccessDescriptor& ad) {
  DecodedSegment& entry = rec.decode.Probe(ad.index());
  if (entry.valid() && entry.segment == ad.index() && entry.generation == ad.generation()) {
    // Epoch-keyed revalidation: exactly the set FetchProgramCached's epoch tier checks
    // (liveness, generation, type, data_epoch, store version). Certification rides per
    // instruction as the elide mask, so no entry ever skips this.
    const ObjectDescriptor* descriptor = entry.descriptor;
    if (descriptor->allocated && descriptor->generation == ad.generation() &&
        descriptor->type == SystemType::kInstructionSegment &&
        descriptor->data_epoch == entry.data_epoch &&
        entry.store_version == programs_.version()) {
      ++rec.decode.stats().hits;
      return &entry;
    }
  }
  ++rec.decode.stats().misses;
  EnsureGuardCertificates();
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * descriptor, machine_->table().Resolve(ad));
  if (descriptor->type != SystemType::kInstructionSegment) {
    return Fault::kTypeMismatch;
  }
  const Program* program = programs_.Find(ad.index());
  if (program == nullptr) {
    return Fault::kNotFound;
  }
  // Re-probe: EnsureGuardCertificates may have cleared the cache above.
  DecodedSegment& fill = rec.decode.Probe(ad.index());
  fill = DecodedSegment{};
  fill.segment = ad.index();
  fill.generation = ad.generation();
  fill.descriptor = descriptor;
  fill.program = program;
  fill.store_version = programs_.version();
  fill.data_epoch = descriptor->data_epoch;
  fill.code.resize(program->size());
  const std::map<uint32_t, uint8_t>* elisions = nullptr;
  auto certified = certified_elisions_.find(ad.index());
  if (certified != certified_elisions_.end()) elisions = &certified->second;
  for (uint32_t pc = 0; pc < program->size(); ++pc) {
    fill.code[pc].inst = program->at(pc);
    if (elisions != nullptr) {
      auto mask = elisions->find(pc);
      if (mask != elisions->end()) fill.code[pc].elide = mask->second;
    }
  }
  return &fill;
}

void Kernel::AuditElidedData(ProcessorRec& rec, ProcessView& proc, const AccessDescriptor& ad,
                             uint32_t offset, uint32_t width, RightsMask required,
                             uint32_t pc) {
  analysis::GuardAuditor::Check check =
      guard_auditor_->CheckElidedData(machine_->table(), ad, offset, width, required);
  if (check.ok) return;
  ++stats_.guard_violations;
  machine_->trace().Emit(TraceEventKind::kGuardViolation, machine_->now(), rec.id,
                         proc.ad().index(), check.violation.object,
                         static_cast<uint32_t>(check.violation.kind), pc);
  IMAX_LOG_ERROR("guard audit: elided data access to object %u failed its %s re-check (pc %u)",
                 check.violation.object,
                 analysis::GuardViolationKindName(check.violation.kind), pc);
}

void Kernel::AuditElidedSlot(ProcessorRec& rec, ProcessView& proc,
                             const AccessDescriptor& container, uint32_t slot,
                             RightsMask required, uint32_t pc) {
  analysis::GuardAuditor::Check check =
      guard_auditor_->CheckElidedSlot(machine_->table(), container, slot, required);
  if (check.ok) return;
  ++stats_.guard_violations;
  machine_->trace().Emit(TraceEventKind::kGuardViolation, machine_->now(), rec.id,
                         proc.ad().index(), check.violation.object,
                         static_cast<uint32_t>(check.violation.kind), pc);
  IMAX_LOG_ERROR("guard audit: elided slot access to object %u failed its %s re-check (pc %u)",
                 check.violation.object,
                 analysis::GuardViolationKindName(check.violation.kind), pc);
}

void Kernel::CertifiedHitThunk(void* kernel, const XlatEntry& entry) {
  static_cast<Kernel*>(kernel)->OnCertifiedXlatHit(entry);
}

void Kernel::OnCertifiedXlatHit(const XlatEntry& entry) {
  if (interference_auditor_ == nullptr) return;
  analysis::InterferenceAuditor::Check check = interference_auditor_->CheckCertifiedHit(
      machine_->table(), entry.index, entry.generation, entry.data_epoch, entry.type);
  if (check.ok) return;
  ++stats_.interference_violations;
  machine_->trace().Emit(TraceEventKind::kInterferenceViolation, machine_->now(), audit_cpu_,
                         kTraceNoProcess, entry.index,
                         static_cast<uint32_t>(check.violation.kind), entry.data_epoch);
  IMAX_LOG_ERROR(
      "interference audit: certified object %u failed its %s cross-check "
      "(fill epoch %u, observed %u)",
      entry.index, analysis::InterferenceViolationKindName(check.violation.kind),
      entry.data_epoch, check.violation.observed_epoch);
}

Cycles Kernel::TotalBusyCycles() const {
  Cycles total = 0;
  for (const ProcessorRec& rec : processors_) {
    ObjectView view(&const_cast<Machine*>(machine_)->addressing(), rec.object);
    total += view.Field(ProcessorLayout::kOffBusyCycles, 8);
  }
  return total;
}

void Kernel::AppendRoots(std::vector<AccessDescriptor>* roots) const {
  roots->push_back(default_dispatch_port_);
  for (const ProcessorRec& rec : processors_) {
    roots->push_back(rec.object);
  }
  ports_.AppendShadowRoots(roots);
  for (const RootProviderFn& provider : root_providers_) {
    provider(roots);
  }
}

}  // namespace imax432

// Journal: write-ahead log for the object filing system.
//
// Every ObjectStore mutation first lands on the StableStore as a checksummed, typed record
// followed by a sealed commit record; only then does the in-memory store apply it. After a
// crash (kPowerCut injection), a fresh System replays the log: complete, checksum-valid
// transactions are re-applied in order, the torn tail is truncated, corrupt records and
// commit-less transactions are rolled back. Periodic checkpoints rewrite the log as one
// snapshot record so recovery cost tracks the live store, not the mutation history.
//
// Record wire format (little-endian):
//   u32 magic       'J' '4' '3' '2' (0x32333448 ^ ... spelled out in kRecordMagic)
//   u64 seq         transaction sequence number; a mutation and its commit share one seq
//   u8  type        RecordType
//   u8  pad[3]      zero
//   u32 payload_len payload bytes following the header
//   u32 crc         FNV-1a/32 over seq, type, payload_len, payload
//   u8  payload[payload_len]
//
// A transaction is <mutation record, commit record> with the same seq, appended as one
// batch. The commit record seals it: replay applies a mutation only after reading its
// commit. Appends go to the device's volatile tail and become durable when the scheduled
// sync completes (one media-transfer latency later, on the simulation event queue) — that
// window is what a power cut tears.

#ifndef IMAX432_SRC_FILING_JOURNAL_H_
#define IMAX432_SRC_FILING_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/filing/stable_store.h"
#include "src/obs/metrics.h"

namespace imax432 {

class Machine;

enum class JournalRecordType : uint8_t {
  kFileImage = 1,      // payload: serialized plain image
  kFileComposite = 2,  // payload: serialized composite graph
  kRemove = 3,         // payload: name
  kCommit = 4,         // payload: empty; seals the same-seq mutation record
  kCheckpoint = 5,     // payload: whole-store snapshot (self-sealing; no commit needed)
};

const char* JournalRecordTypeName(JournalRecordType type);

struct JournalStats {
  uint64_t appends = 0;            // transactions appended (mutation + commit batches)
  uint64_t commits = 0;            // transactions whose sync completed (durable)
  uint64_t bytes_appended = 0;
  uint64_t syncs = 0;
  uint64_t retries = 0;            // device-error retries across all appends
  uint64_t backoff_cycles = 0;     // virtual cycles charged to retry backoff
  uint64_t device_errors = 0;      // append batches abandoned after retry exhaustion
  uint64_t checkpoints = 0;
  uint64_t replayed_records = 0;
  uint64_t replayed_transactions = 0;
  uint64_t torn_tail_truncations = 0;
  uint64_t corrupt_records_dropped = 0;
  uint64_t orphan_commits = 0;
  uint64_t rolled_back_transactions = 0;
};

CounterMap CountersFor(const JournalStats& stats);

class Journal {
 public:
  // How a replayed mutation is applied to the store being recovered. Returning a fault
  // counts the transaction as rolled back but never aborts replay: recovery is best-effort
  // and must not panic the kernel over one bad record.
  using ApplyFn = std::function<Status(JournalRecordType type,
                                       const std::vector<uint8_t>& payload)>;

  // `machine` may be null (unit tests): appends then sync synchronously instead of
  // scheduling the completion one media-transfer latency ahead on the event queue.
  Journal(StableStore* device, Machine* machine) : device_(device), machine_(machine) {}

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Appends <mutation, commit> as one batch, retrying device errors with exponential
  // backoff like the swap layer (attempts are capped; exhaustion rolls the tail back and
  // surfaces kDeviceError — the store then rejects the mutation, keeping WAL discipline).
  Status Commit(JournalRecordType type, const std::vector<uint8_t>& payload);

  // Rewrites the whole log as one checkpoint record (atomic overwrite on the device).
  // The payload is the store snapshot; pending unsynced appends are superseded by it.
  Status WriteCheckpoint(const std::vector<uint8_t>& snapshot);

  // Reads the device back and applies every committed transaction in order. kCheckpoint
  // records reset replay state (they supersede everything before them). Returns
  // kDeviceError only if the device itself cannot be read; malformed content is consumed
  // and counted, never fatal.
  Status Replay(const ApplyFn& apply);

  // Mutation-transaction durability accounting, the crash-verification oracle: the store
  // recovered after a power cut reflects at least the first durable_mutations() — and at
  // most all appended_mutations() — of this incarnation's mutations, in order (the torn
  // tail may preserve complete transactions whose sync had not yet fired).
  uint64_t appended_mutations() const { return appended_mutations_; }
  uint64_t durable_mutations() const { return durable_mutations_; }
  uint64_t next_seq() const { return next_seq_; }

  const JournalStats& stats() const { return stats_; }
  StableStore& device() { return *device_; }

  // Encodes one record (exposed so tests and the lint corrupt-journal corpus can forge
  // orphan commits and truncated records without a Journal instance).
  static std::vector<uint8_t> EncodeRecord(uint64_t seq, JournalRecordType type,
                                           const std::vector<uint8_t>& payload);

  static constexpr uint32_t kRecordMagic = 0x4a343332;  // "J432"
  static constexpr size_t kRecordHeaderBytes = 24;
  static constexpr uint32_t kMaxAppendAttempts = 3;

 private:
  Status AppendWithRetry(const std::vector<uint8_t>& batch);
  void ScheduleSync(uint64_t target_mutations, uint32_t batch_bytes);
  void CompleteSync(uint64_t target_mutations);

  StableStore* device_;
  Machine* machine_;
  uint64_t next_seq_ = 1;
  uint64_t appended_mutations_ = 0;  // mutation transactions appended to the device tail
  uint64_t durable_mutations_ = 0;   // mutation transactions whose flush completed
  JournalStats stats_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_FILING_JOURNAL_H_

#include "src/filing/object_store.h"

namespace imax432 {

namespace {

// Little-endian serialization for journal payloads. Every variable-length field is
// length-prefixed, so payloads decode sequentially with pure bounds checks.
void PutU32(std::vector<uint8_t>& out, uint32_t value) {
  out.push_back(static_cast<uint8_t>(value));
  out.push_back(static_cast<uint8_t>(value >> 8));
  out.push_back(static_cast<uint8_t>(value >> 16));
  out.push_back(static_cast<uint8_t>(value >> 24));
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void PutBytes(std::vector<uint8_t>& out, const std::vector<uint8_t>& bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out.insert(out.end(), bytes.begin(), bytes.end());
}

// Bounds-checked sequential reader. The journal CRC already vouches for payload integrity,
// but a checkpoint forged by the lint corpus (or a future format revision) must fail with
// kFilingFormatError, never with an out-of-range read.
struct Cursor {
  const std::vector<uint8_t>& buf;
  size_t pos = 0;
  bool ok = true;

  uint32_t U32() {
    if (!ok || buf.size() - pos < 4) {
      ok = false;
      return 0;
    }
    uint32_t v = static_cast<uint32_t>(buf[pos]) | static_cast<uint32_t>(buf[pos + 1]) << 8 |
                 static_cast<uint32_t>(buf[pos + 2]) << 16 |
                 static_cast<uint32_t>(buf[pos + 3]) << 24;
    pos += 4;
    return v;
  }
  std::string Str() {
    uint32_t len = U32();
    if (!ok || buf.size() - pos < len) {
      ok = false;
      return {};
    }
    std::string s(buf.begin() + pos, buf.begin() + pos + len);
    pos += len;
    return s;
  }
  std::vector<uint8_t> Bytes() {
    uint32_t len = U32();
    if (!ok || buf.size() - pos < len) {
      ok = false;
      return {};
    }
    std::vector<uint8_t> b(buf.begin() + pos, buf.begin() + pos + len);
    pos += len;
    return b;
  }
  bool Done() const { return ok && pos == buf.size(); }
};

uint32_t HashName(const std::string& name) {
  uint32_t hash = 2166136261u;
  for (char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 16777619u;
  }
  return hash;
}

}  // namespace

Result<ObjectStore::Image> ObjectStore::Capture(const AccessDescriptor& object) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                        kernel_->machine().table().Resolve(object));
  if (!object.HasRights(rights::kRead)) {
    return Fault::kRightsViolation;
  }
  Image image;
  auto type_id = types_->TypeIdOf(object);
  image.type_id = type_id.ok() ? type_id.value() : 0;
  image.data.resize(descriptor->data_length);
  if (descriptor->data_length > 0) {
    IMAX_RETURN_IF_FAULT(kernel_->machine().addressing().ReadDataBlock(
        object, 0, image.data.data(), descriptor->data_length));
  }
  return image;
}

void ObjectStore::EmitTrace(FilingOpKind op, uint32_t b, const std::string& name) const {
  kernel_->machine().trace().Emit(TraceEventKind::kFilingOp, kernel_->machine().now(),
                                  kTraceNoProcessor, kTraceNoProcess,
                                  static_cast<uint32_t>(op), b, HashName(name));
}

Status ObjectStore::JournalMutation(JournalRecordType type,
                                    const std::vector<uint8_t>& payload) {
  if (journal_ == nullptr) {
    return Status::Ok();
  }
  Status status = journal_->Commit(type, payload);
  if (!status.ok()) {
    // WAL discipline: a mutation that cannot reach the log must not reach memory either,
    // or a crash would silently lose it after the caller saw success.
    ++stats_.journal_rejections;
    return status;
  }
  ++stats_.journaled_mutations;
  return Status::Ok();
}

void ObjectStore::MaybeCheckpoint() {
  if (journal_ == nullptr || checkpoint_interval_ == 0) {
    return;
  }
  if (++mutations_since_checkpoint_ < checkpoint_interval_) {
    return;
  }
  mutations_since_checkpoint_ = 0;
  // Best-effort: a failed compaction leaves the (longer but valid) log in place.
  (void)Checkpoint();
}

Status ObjectStore::Checkpoint() {
  if (journal_ == nullptr) {
    return Fault::kWrongState;
  }
  IMAX_RETURN_IF_FAULT(journal_->WriteCheckpoint(EncodeSnapshot()));
  return Status::Ok();
}

Status ObjectStore::File(const std::string& name, const AccessDescriptor& object) {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                        kernel_->machine().table().Resolve(object));
  // Only fully passive objects file under the plain form: live capabilities cannot enter a
  // passive store (use FileComposite for linked structures).
  for (const AccessDescriptor& slot : descriptor->access) {
    if (!slot.is_null()) {
      return Fault::kInvalidArgument;
    }
  }
  IMAX_ASSIGN_OR_RETURN(Image image, Capture(object));

  std::vector<uint8_t> payload;
  PutString(payload, name);
  PutU32(payload, image.type_id);
  PutBytes(payload, image.data);
  IMAX_RETURN_IF_FAULT(JournalMutation(JournalRecordType::kFileImage, payload));

  uint32_t bytes = static_cast<uint32_t>(image.data.size());
  images_[name] = std::move(image);
  composites_.erase(name);  // one namespace: the new image shadows nothing
  ++stats_.filed;
  EmitTrace(FilingOpKind::kFile, bytes, name);
  MaybeCheckpoint();
  return Status::Ok();
}

Status ObjectStore::FileComposite(const std::string& name, const AccessDescriptor& root) {
  // Breadth-first closure over the access graph. Each discovered object becomes a node;
  // every AD becomes an (slot -> node) edge — structure, not capability.
  Composite composite;
  std::map<ObjectIndex, uint32_t> node_of;
  std::vector<AccessDescriptor> worklist = {root};
  IMAX_RETURN_IF_FAULT(kernel_->machine().table().Resolve(root).ok()
                           ? Status::Ok()
                           : Status(Fault::kNullAccess));
  node_of[root.index()] = 0;
  composite.nodes.emplace_back();

  for (size_t cursor = 0; cursor < worklist.size(); ++cursor) {
    AccessDescriptor current = worklist[cursor];
    IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                          kernel_->machine().table().Resolve(current));
    // Build into a local: composite.nodes grows inside the loop, so references into it
    // would dangle.
    Node node;
    IMAX_ASSIGN_OR_RETURN(node.image, Capture(current));
    node.access_slots = descriptor->access_count();
    for (uint32_t slot = 0; slot < descriptor->access_count(); ++slot) {
      const AccessDescriptor& edge = descriptor->access[slot];
      if (edge.is_null()) {
        continue;
      }
      if (!kernel_->machine().table().Resolve(edge).ok()) {
        return Fault::kInvalidAccess;  // dangling edges do not file
      }
      auto it = node_of.find(edge.index());
      uint32_t target;
      if (it == node_of.end()) {
        target = static_cast<uint32_t>(composite.nodes.size());
        node_of[edge.index()] = target;
        composite.nodes.emplace_back();
        worklist.push_back(edge);
      } else {
        target = it->second;
      }
      node.edges.emplace_back(slot, target);
    }
    composite.nodes[node_of[current.index()]] = std::move(node);
  }

  std::vector<uint8_t> payload;
  PutString(payload, name);
  PutU32(payload, static_cast<uint32_t>(composite.nodes.size()));
  for (const Node& node : composite.nodes) {
    PutU32(payload, node.image.type_id);
    PutBytes(payload, node.image.data);
    PutU32(payload, node.access_slots);
    PutU32(payload, static_cast<uint32_t>(node.edges.size()));
    for (const auto& [slot, target] : node.edges) {
      PutU32(payload, slot);
      PutU32(payload, target);
    }
  }
  IMAX_RETURN_IF_FAULT(JournalMutation(JournalRecordType::kFileComposite, payload));

  uint32_t nodes = static_cast<uint32_t>(composite.nodes.size());
  composites_[name] = std::move(composite);
  images_.erase(name);
  ++stats_.filed;
  EmitTrace(FilingOpKind::kFileComposite, nodes, name);
  MaybeCheckpoint();
  return Status::Ok();
}

void ObjectStore::DestroyAll(const std::vector<AccessDescriptor>& created) {
  if (created.empty()) {
    return;
  }
  for (const AccessDescriptor& ad : created) {
    (void)kernel_->memory().DestroyObject(ad);
  }
  ++stats_.retrieve_cleanups;
}

Result<AccessDescriptor> ObjectStore::RetrieveComposite(const std::string& name,
                                                        const AccessDescriptor& sro,
                                                        const TdoResolver& resolver) {
  auto it = composites_.find(name);
  if (it == composites_.end()) {
    return Fault::kNotFound;
  }
  const Composite& composite = it->second;

  // Pass 1: materialize every node (type identity restored through the resolver's TDOs).
  // Any failure destroys the partial graph before surfacing: retrieval is atomic — the
  // caller sees either the whole composite or none of it.
  std::vector<AccessDescriptor> fresh;
  fresh.reserve(composite.nodes.size());
  for (const Node& node : composite.nodes) {
    AccessDescriptor object;
    uint32_t data_bytes = static_cast<uint32_t>(node.image.data.size());
    if (node.image.type_id != 0) {
      AccessDescriptor tdo = resolver ? resolver(node.image.type_id) : AccessDescriptor();
      if (tdo.is_null()) {
        ++stats_.type_checks_failed;
        DestroyAll(fresh);
        return Fault::kTypeMismatch;
      }
      auto created = types_->CreateTypedObject(tdo, sro, data_bytes, node.access_slots,
                                               rights::kRead | rights::kWrite |
                                                   rights::kDelete);
      if (!created.ok()) {
        DestroyAll(fresh);
        return created.fault();
      }
      object = created.value();
    } else {
      auto created = kernel_->memory().CreateObject(sro, SystemType::kGeneric, data_bytes,
                                                    node.access_slots,
                                                    rights::kRead | rights::kWrite |
                                                        rights::kDelete);
      if (!created.ok()) {
        DestroyAll(fresh);
        return created.fault();
      }
      object = created.value();
    }
    fresh.push_back(object);
    if (data_bytes > 0) {
      Status wrote = kernel_->machine().addressing().WriteDataBlock(
          object, 0, node.image.data.data(), data_bytes);
      if (!wrote.ok()) {
        DestroyAll(fresh);
        return wrote.fault();
      }
    }
  }
  // Pass 2: rebuild the edges with checked stores (all nodes share the SRO's level, so the
  // level rule is trivially satisfied within the graph).
  for (size_t i = 0; i < composite.nodes.size(); ++i) {
    for (const auto& [slot, target] : composite.nodes[i].edges) {
      Status linked = kernel_->machine().addressing().WriteAd(fresh[i], slot, fresh[target]);
      if (!linked.ok()) {
        DestroyAll(fresh);
        return linked.fault();
      }
    }
  }
  ++stats_.retrieved;
  EmitTrace(FilingOpKind::kRetrieveComposite,
            static_cast<uint32_t>(composite.nodes.size()), name);
  return fresh[0];
}

Result<uint32_t> ObjectStore::CompositeSize(const std::string& name) const {
  auto it = composites_.find(name);
  if (it == composites_.end()) {
    return Fault::kNotFound;
  }
  return static_cast<uint32_t>(it->second.nodes.size());
}

Result<AccessDescriptor> ObjectStore::Retrieve(const std::string& name,
                                               const AccessDescriptor& sro,
                                               const AccessDescriptor& tdo) {
  auto it = images_.find(name);
  if (it == images_.end()) {
    return Fault::kNotFound;
  }
  const Image& image = it->second;

  AccessDescriptor object;
  if (image.type_id != 0) {
    // The image is typed: it may only come back to life through its own type definition.
    if (tdo.is_null()) {
      ++stats_.type_checks_failed;
      return Fault::kTypeMismatch;
    }
    auto tdo_descriptor = kernel_->machine().table().Resolve(tdo);
    if (!tdo_descriptor.ok()) {
      return tdo_descriptor.fault();
    }
    auto tdo_type_id = kernel_->machine().memory().Read(
        tdo_descriptor.value()->data_base + TdoLayout::kOffTypeId, 4);
    if (!tdo_type_id.ok() || tdo_type_id.value() != image.type_id) {
      ++stats_.type_checks_failed;
      return Fault::kTypeMismatch;
    }
    IMAX_ASSIGN_OR_RETURN(
        object, types_->CreateTypedObject(tdo, sro,
                                          static_cast<uint32_t>(image.data.size()), 0,
                                          rights::kRead | rights::kWrite | rights::kDelete));
  } else {
    if (!tdo.is_null()) {
      ++stats_.type_checks_failed;
      return Fault::kTypeMismatch;  // asking for a typed view of an untyped image
    }
    IMAX_ASSIGN_OR_RETURN(
        object, kernel_->memory().CreateObject(
                    sro, SystemType::kGeneric, static_cast<uint32_t>(image.data.size()), 0,
                    rights::kRead | rights::kWrite | rights::kDelete));
  }
  if (!image.data.empty()) {
    Status wrote = kernel_->machine().addressing().WriteDataBlock(
        object, 0, image.data.data(), static_cast<uint32_t>(image.data.size()));
    if (!wrote.ok()) {
      DestroyAll({object});
      return wrote.fault();
    }
  }
  ++stats_.retrieved;
  EmitTrace(FilingOpKind::kRetrieve, static_cast<uint32_t>(image.data.size()), name);
  return object;
}

Status ObjectStore::Remove(const std::string& name) {
  if (!Contains(name)) {
    return Fault::kNotFound;  // nothing to remove, so nothing to journal
  }
  std::vector<uint8_t> payload;
  PutString(payload, name);
  IMAX_RETURN_IF_FAULT(JournalMutation(JournalRecordType::kRemove, payload));
  images_.erase(name);
  composites_.erase(name);
  ++stats_.removed;
  EmitTrace(FilingOpKind::kRemove, 0, name);
  MaybeCheckpoint();
  return Status::Ok();
}

Result<uint32_t> ObjectStore::FiledTypeId(const std::string& name) const {
  auto it = images_.find(name);
  if (it != images_.end()) {
    return it->second.type_id;
  }
  auto cit = composites_.find(name);
  if (cit != composites_.end()) {
    return cit->second.nodes.empty() ? 0u : cit->second.nodes[0].image.type_id;
  }
  return Fault::kNotFound;
}

// --- Journal serialization and recovery ---

uint64_t ObjectStore::StateDigest() const {
  std::vector<uint8_t> snapshot = EncodeSnapshot();
  uint64_t hash = 1469598103934665603ull;
  for (uint8_t byte : snapshot) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::vector<uint8_t> ObjectStore::EncodeSnapshot() const {
  // Snapshot = every live image and composite, re-encoded exactly as its mutation payload
  // so checkpoint replay shares the decoder with ordinary records.
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(images_.size()));
  for (const auto& [name, image] : images_) {
    PutString(out, name);
    PutU32(out, image.type_id);
    PutBytes(out, image.data);
  }
  PutU32(out, static_cast<uint32_t>(composites_.size()));
  for (const auto& [name, composite] : composites_) {
    PutString(out, name);
    PutU32(out, static_cast<uint32_t>(composite.nodes.size()));
    for (const Node& node : composite.nodes) {
      PutU32(out, node.image.type_id);
      PutBytes(out, node.image.data);
      PutU32(out, node.access_slots);
      PutU32(out, static_cast<uint32_t>(node.edges.size()));
      for (const auto& [slot, target] : node.edges) {
        PutU32(out, slot);
        PutU32(out, target);
      }
    }
  }
  return out;
}

namespace {

// Decodes one image payload body (after the name) into an ObjectStore-shaped pair.
bool DecodeImageBody(Cursor& cursor, uint32_t* type_id, std::vector<uint8_t>* data) {
  *type_id = cursor.U32();
  *data = cursor.Bytes();
  return cursor.ok;
}

}  // namespace

Status ObjectStore::ApplyJournalRecord(JournalRecordType type,
                                       const std::vector<uint8_t>& payload) {
  Cursor cursor{payload};
  switch (type) {
    case JournalRecordType::kFileImage: {
      std::string name = cursor.Str();
      Image image;
      if (!DecodeImageBody(cursor, &image.type_id, &image.data) || !cursor.Done()) {
        return Fault::kFilingFormatError;
      }
      images_[name] = std::move(image);
      composites_.erase(name);
      ++stats_.recovered_images;
      return Status::Ok();
    }
    case JournalRecordType::kFileComposite: {
      std::string name = cursor.Str();
      Composite composite;
      uint32_t node_count = cursor.U32();
      for (uint32_t i = 0; cursor.ok && i < node_count; ++i) {
        Node node;
        if (!DecodeImageBody(cursor, &node.image.type_id, &node.image.data)) {
          break;
        }
        node.access_slots = cursor.U32();
        uint32_t edge_count = cursor.U32();
        for (uint32_t e = 0; cursor.ok && e < edge_count; ++e) {
          uint32_t slot = cursor.U32();
          uint32_t target = cursor.U32();
          node.edges.emplace_back(slot, target);
        }
        composite.nodes.push_back(std::move(node));
      }
      if (!cursor.Done() || composite.nodes.size() != node_count) {
        return Fault::kFilingFormatError;
      }
      composites_[name] = std::move(composite);
      images_.erase(name);
      ++stats_.recovered_composites;
      return Status::Ok();
    }
    case JournalRecordType::kRemove: {
      std::string name = cursor.Str();
      if (!cursor.Done()) {
        return Fault::kFilingFormatError;
      }
      images_.erase(name);
      composites_.erase(name);
      return Status::Ok();
    }
    case JournalRecordType::kCheckpoint: {
      images_.clear();
      composites_.clear();
      uint32_t image_count = cursor.U32();
      for (uint32_t i = 0; cursor.ok && i < image_count; ++i) {
        std::string name = cursor.Str();
        Image image;
        if (!DecodeImageBody(cursor, &image.type_id, &image.data)) {
          break;
        }
        images_[name] = std::move(image);
        ++stats_.recovered_images;
      }
      uint32_t composite_count = cursor.ok ? cursor.U32() : 0;
      for (uint32_t c = 0; cursor.ok && c < composite_count; ++c) {
        std::string name = cursor.Str();
        Composite composite;
        uint32_t node_count = cursor.U32();
        for (uint32_t i = 0; cursor.ok && i < node_count; ++i) {
          Node node;
          if (!DecodeImageBody(cursor, &node.image.type_id, &node.image.data)) {
            break;
          }
          node.access_slots = cursor.U32();
          uint32_t edge_count = cursor.U32();
          for (uint32_t e = 0; cursor.ok && e < edge_count; ++e) {
            uint32_t slot = cursor.U32();
            uint32_t target = cursor.U32();
            node.edges.emplace_back(slot, target);
          }
          composite.nodes.push_back(std::move(node));
        }
        if (cursor.ok) {
          composites_[name] = std::move(composite);
          ++stats_.recovered_composites;
        }
      }
      if (!cursor.Done()) {
        // A malformed checkpoint must not leave half a snapshot pretending to be the
        // store: recovery falls back to empty-at-this-point and later records still apply.
        images_.clear();
        composites_.clear();
        return Fault::kFilingFormatError;
      }
      return Status::Ok();
    }
    case JournalRecordType::kCommit:
      return Fault::kInvalidArgument;  // commits seal transactions; they carry no state
  }
  return Fault::kInvalidArgument;
}

Status ObjectStore::Recover() {
  IMAX_CHECK(journal_ != nullptr);
  images_.clear();
  composites_.clear();
  mutations_since_checkpoint_ = 0;

  const JournalStats before = journal_->stats();
  Status replayed = journal_->Replay(
      [this](JournalRecordType type, const std::vector<uint8_t>& payload) {
        return ApplyJournalRecord(type, payload);
      });
  ++stats_.recoveries;
  const JournalStats& after = journal_->stats();
  uint32_t applied =
      static_cast<uint32_t>(after.replayed_transactions - before.replayed_transactions);
  uint32_t dropped = static_cast<uint32_t>(
      (after.rolled_back_transactions - before.rolled_back_transactions) +
      (after.corrupt_records_dropped - before.corrupt_records_dropped) +
      (after.orphan_commits - before.orphan_commits) +
      (after.torn_tail_truncations - before.torn_tail_truncations));
  kernel_->machine().trace().Emit(TraceEventKind::kFilingOp, kernel_->machine().now(),
                                  kTraceNoProcessor, kTraceNoProcess,
                                  static_cast<uint32_t>(FilingOpKind::kJournalReplay),
                                  applied, dropped);
  if (!replayed.ok()) {
    return replayed;  // unreadable device: boot proceeds with an empty store
  }
  // Compact the recovered state so torn garbage does not accumulate across restarts. A
  // failed compaction is tolerable — the pre-checkpoint log is still valid.
  (void)Checkpoint();
  return Status::Ok();
}

}  // namespace imax432

#include "src/filing/object_store.h"

namespace imax432 {

Result<ObjectStore::Image> ObjectStore::Capture(const AccessDescriptor& object) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                        kernel_->machine().table().Resolve(object));
  if (!object.HasRights(rights::kRead)) {
    return Fault::kRightsViolation;
  }
  Image image;
  auto type_id = types_->TypeIdOf(object);
  image.type_id = type_id.ok() ? type_id.value() : 0;
  image.data.resize(descriptor->data_length);
  if (descriptor->data_length > 0) {
    IMAX_RETURN_IF_FAULT(kernel_->machine().addressing().ReadDataBlock(
        object, 0, image.data.data(), descriptor->data_length));
  }
  return image;
}

Status ObjectStore::File(const std::string& name, const AccessDescriptor& object) {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                        kernel_->machine().table().Resolve(object));
  // Only fully passive objects file under the plain form: live capabilities cannot enter a
  // passive store (use FileComposite for linked structures).
  for (const AccessDescriptor& slot : descriptor->access) {
    if (!slot.is_null()) {
      return Fault::kInvalidArgument;
    }
  }
  IMAX_ASSIGN_OR_RETURN(Image image, Capture(object));
  images_[name] = std::move(image);
  ++stats_.filed;
  return Status::Ok();
}

Status ObjectStore::FileComposite(const std::string& name, const AccessDescriptor& root) {
  // Breadth-first closure over the access graph. Each discovered object becomes a node;
  // every AD becomes an (slot -> node) edge — structure, not capability.
  Composite composite;
  std::map<ObjectIndex, uint32_t> node_of;
  std::vector<AccessDescriptor> worklist = {root};
  IMAX_RETURN_IF_FAULT(kernel_->machine().table().Resolve(root).ok()
                           ? Status::Ok()
                           : Status(Fault::kNullAccess));
  node_of[root.index()] = 0;
  composite.nodes.emplace_back();

  for (size_t cursor = 0; cursor < worklist.size(); ++cursor) {
    AccessDescriptor current = worklist[cursor];
    IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                          kernel_->machine().table().Resolve(current));
    // Build into a local: composite.nodes grows inside the loop, so references into it
    // would dangle.
    Node node;
    IMAX_ASSIGN_OR_RETURN(node.image, Capture(current));
    node.access_slots = descriptor->access_count();
    for (uint32_t slot = 0; slot < descriptor->access_count(); ++slot) {
      const AccessDescriptor& edge = descriptor->access[slot];
      if (edge.is_null()) {
        continue;
      }
      if (!kernel_->machine().table().Resolve(edge).ok()) {
        return Fault::kInvalidAccess;  // dangling edges do not file
      }
      auto it = node_of.find(edge.index());
      uint32_t target;
      if (it == node_of.end()) {
        target = static_cast<uint32_t>(composite.nodes.size());
        node_of[edge.index()] = target;
        composite.nodes.emplace_back();
        worklist.push_back(edge);
      } else {
        target = it->second;
      }
      node.edges.emplace_back(slot, target);
    }
    composite.nodes[node_of[current.index()]] = std::move(node);
  }
  composites_[name] = std::move(composite);
  ++stats_.filed;
  return Status::Ok();
}

Result<AccessDescriptor> ObjectStore::RetrieveComposite(const std::string& name,
                                                        const AccessDescriptor& sro,
                                                        const TdoResolver& resolver) {
  auto it = composites_.find(name);
  if (it == composites_.end()) {
    return Fault::kNotFound;
  }
  const Composite& composite = it->second;

  // Pass 1: materialize every node (type identity restored through the resolver's TDOs).
  std::vector<AccessDescriptor> fresh;
  fresh.reserve(composite.nodes.size());
  for (const Node& node : composite.nodes) {
    AccessDescriptor object;
    uint32_t data_bytes = static_cast<uint32_t>(node.image.data.size());
    if (node.image.type_id != 0) {
      AccessDescriptor tdo = resolver ? resolver(node.image.type_id) : AccessDescriptor();
      if (tdo.is_null()) {
        ++stats_.type_checks_failed;
        return Fault::kTypeMismatch;
      }
      IMAX_ASSIGN_OR_RETURN(
          object, types_->CreateTypedObject(tdo, sro, data_bytes, node.access_slots,
                                            rights::kRead | rights::kWrite | rights::kDelete));
    } else {
      IMAX_ASSIGN_OR_RETURN(
          object, kernel_->memory().CreateObject(sro, SystemType::kGeneric, data_bytes,
                                                 node.access_slots,
                                                 rights::kRead | rights::kWrite |
                                                     rights::kDelete));
    }
    if (data_bytes > 0) {
      IMAX_RETURN_IF_FAULT(kernel_->machine().addressing().WriteDataBlock(
          object, 0, node.image.data.data(), data_bytes));
    }
    fresh.push_back(object);
  }
  // Pass 2: rebuild the edges with checked stores (all nodes share the SRO's level, so the
  // level rule is trivially satisfied within the graph).
  for (size_t i = 0; i < composite.nodes.size(); ++i) {
    for (const auto& [slot, target] : composite.nodes[i].edges) {
      IMAX_RETURN_IF_FAULT(
          kernel_->machine().addressing().WriteAd(fresh[i], slot, fresh[target]));
    }
  }
  ++stats_.retrieved;
  return fresh[0];
}

Result<uint32_t> ObjectStore::CompositeSize(const std::string& name) const {
  auto it = composites_.find(name);
  if (it == composites_.end()) {
    return Fault::kNotFound;
  }
  return static_cast<uint32_t>(it->second.nodes.size());
}

Result<AccessDescriptor> ObjectStore::Retrieve(const std::string& name,
                                               const AccessDescriptor& sro,
                                               const AccessDescriptor& tdo) {
  auto it = images_.find(name);
  if (it == images_.end()) {
    return Fault::kNotFound;
  }
  const Image& image = it->second;

  AccessDescriptor object;
  if (image.type_id != 0) {
    // The image is typed: it may only come back to life through its own type definition.
    if (tdo.is_null()) {
      ++stats_.type_checks_failed;
      return Fault::kTypeMismatch;
    }
    auto tdo_descriptor = kernel_->machine().table().Resolve(tdo);
    if (!tdo_descriptor.ok()) {
      return tdo_descriptor.fault();
    }
    auto tdo_type_id = kernel_->machine().memory().Read(
        tdo_descriptor.value()->data_base + TdoLayout::kOffTypeId, 4);
    if (!tdo_type_id.ok() || tdo_type_id.value() != image.type_id) {
      ++stats_.type_checks_failed;
      return Fault::kTypeMismatch;
    }
    IMAX_ASSIGN_OR_RETURN(
        object, types_->CreateTypedObject(tdo, sro,
                                          static_cast<uint32_t>(image.data.size()), 0,
                                          rights::kRead | rights::kWrite | rights::kDelete));
  } else {
    if (!tdo.is_null()) {
      ++stats_.type_checks_failed;
      return Fault::kTypeMismatch;  // asking for a typed view of an untyped image
    }
    IMAX_ASSIGN_OR_RETURN(
        object, kernel_->memory().CreateObject(
                    sro, SystemType::kGeneric, static_cast<uint32_t>(image.data.size()), 0,
                    rights::kRead | rights::kWrite | rights::kDelete));
  }
  if (!image.data.empty()) {
    IMAX_RETURN_IF_FAULT(kernel_->machine().addressing().WriteDataBlock(
        object, 0, image.data.data(), static_cast<uint32_t>(image.data.size())));
  }
  ++stats_.retrieved;
  return object;
}

Status ObjectStore::Remove(const std::string& name) {
  if (images_.erase(name) == 0) {
    return Fault::kNotFound;
  }
  return Status::Ok();
}

Result<uint32_t> ObjectStore::FiledTypeId(const std::string& name) const {
  auto it = images_.find(name);
  if (it == images_.end()) {
    return Fault::kNotFound;
  }
  return it->second.type_id;
}

}  // namespace imax432

#include "src/filing/journal.h"

#include <algorithm>

#include "src/obs/trace.h"
#include "src/sim/machine.h"

namespace imax432 {

namespace {

// FNV-1a/32: the same family the patrol uses for data CRCs; enough to catch torn and
// bit-rotted records in a simulated medium.
uint32_t Fnv32(uint32_t hash, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}
constexpr uint32_t kFnvBasis = 2166136261u;

void PutU32(std::vector<uint8_t>& out, uint32_t value) {
  out.push_back(static_cast<uint8_t>(value));
  out.push_back(static_cast<uint8_t>(value >> 8));
  out.push_back(static_cast<uint8_t>(value >> 16));
  out.push_back(static_cast<uint8_t>(value >> 24));
}

void PutU64(std::vector<uint8_t>& out, uint64_t value) {
  PutU32(out, static_cast<uint32_t>(value));
  PutU32(out, static_cast<uint32_t>(value >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) | static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

// CRC input: seq, type, payload_len, payload — everything the header protects except the
// magic (framing) and the crc field itself.
uint32_t RecordCrc(uint64_t seq, JournalRecordType type, const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> prefix;
  prefix.reserve(13);
  PutU64(prefix, seq);
  prefix.push_back(static_cast<uint8_t>(type));
  PutU32(prefix, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Fnv32(kFnvBasis, prefix.data(), prefix.size());
  return Fnv32(crc, payload.data(), payload.size());
}

// Replay refuses absurd lengths up front so one corrupt length field cannot make the
// parser treat megabytes of log as a single phantom payload.
constexpr uint32_t kMaxPayloadBytes = 16u * 1024 * 1024;

}  // namespace

const char* JournalRecordTypeName(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kFileImage: return "file-image";
    case JournalRecordType::kFileComposite: return "file-composite";
    case JournalRecordType::kRemove: return "remove";
    case JournalRecordType::kCommit: return "commit";
    case JournalRecordType::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

CounterMap CountersFor(const JournalStats& stats) {
  return {
      {"appends", stats.appends},
      {"commits", stats.commits},
      {"bytes_appended", stats.bytes_appended},
      {"syncs", stats.syncs},
      {"retries", stats.retries},
      {"backoff_cycles", stats.backoff_cycles},
      {"device_errors", stats.device_errors},
      {"checkpoints", stats.checkpoints},
      {"replayed_records", stats.replayed_records},
      {"replayed_transactions", stats.replayed_transactions},
      {"torn_tail_truncations", stats.torn_tail_truncations},
      {"corrupt_records_dropped", stats.corrupt_records_dropped},
      {"orphan_commits", stats.orphan_commits},
      {"rolled_back_transactions", stats.rolled_back_transactions},
  };
}

std::vector<uint8_t> Journal::EncodeRecord(uint64_t seq, JournalRecordType type,
                                           const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kRecordHeaderBytes + payload.size());
  PutU32(out, kRecordMagic);
  PutU64(out, seq);
  out.push_back(static_cast<uint8_t>(type));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, RecordCrc(seq, type, payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status Journal::AppendWithRetry(const std::vector<uint8_t>& batch) {
  size_t mark = device_->tail_size();
  for (uint32_t attempt = 0; attempt < kMaxAppendAttempts; ++attempt) {
    Status status = device_->Append(batch.data(), batch.size());
    if (status.ok()) {
      return Status::Ok();
    }
    if (attempt + 1 == kMaxAppendAttempts) {
      break;
    }
    // Same shape as the swap device's retry loop: exponential backoff charged to stats
    // (the journal runs off the event queue, not a processor's instruction stream).
    Cycles backoff = StableStore::kAccessLatencyCycles << attempt;
    ++stats_.retries;
    stats_.backoff_cycles += backoff;
    if (machine_ != nullptr) {
      machine_->trace().Emit(TraceEventKind::kFilingOp, machine_->now(), kTraceNoProcessor,
                             kTraceNoProcess,
                             static_cast<uint32_t>(FilingOpKind::kJournalRetry), attempt + 1,
                             static_cast<uint32_t>(backoff));
    }
  }
  device_->TruncateTail(mark);
  ++stats_.device_errors;
  return Fault::kDeviceError;
}

void Journal::ScheduleSync(uint64_t target_mutations, uint32_t batch_bytes) {
  if (machine_ == nullptr) {
    CompleteSync(target_mutations);
    return;
  }
  machine_->events().ScheduleAfter(
      StableStore::TransferCost(batch_bytes),
      [this, target_mutations] { CompleteSync(target_mutations); });
}

void Journal::CompleteSync(uint64_t target_mutations) {
  if (durable_mutations_ >= target_mutations) {
    return;  // an earlier flush already drained the tail past this transaction
  }
  Status status = device_->Sync();
  if (!status.ok()) {
    // The device refused the flush; the tail stays volatile. A later transaction's sync
    // (or the next checkpoint) retries; if power is cut first, the tail tears — which is
    // exactly what an unsynced journal means.
    ++stats_.retries;
    return;
  }
  ++stats_.syncs;
  // A sync drains the whole volatile tail, so everything appended so far is now durable,
  // including transactions whose own sync callbacks have not fired yet.
  stats_.commits += appended_mutations_ - durable_mutations_;
  durable_mutations_ = appended_mutations_;
}

Status Journal::Commit(JournalRecordType type, const std::vector<uint8_t>& payload) {
  uint64_t seq = next_seq_;
  std::vector<uint8_t> batch = EncodeRecord(seq, type, payload);
  std::vector<uint8_t> commit = EncodeRecord(seq, JournalRecordType::kCommit, {});
  batch.insert(batch.end(), commit.begin(), commit.end());
  IMAX_RETURN_IF_FAULT(AppendWithRetry(batch));
  next_seq_ = seq + 1;
  ++appended_mutations_;
  ++stats_.appends;
  stats_.bytes_appended += batch.size();
  ScheduleSync(appended_mutations_, static_cast<uint32_t>(batch.size()));
  return Status::Ok();
}

Status Journal::WriteCheckpoint(const std::vector<uint8_t>& snapshot) {
  uint64_t seq = next_seq_;
  std::vector<uint8_t> record = EncodeRecord(seq, JournalRecordType::kCheckpoint, snapshot);
  Status status;
  for (uint32_t attempt = 0; attempt < kMaxAppendAttempts; ++attempt) {
    status = device_->Overwrite(record);
    if (status.ok()) {
      break;
    }
    Cycles backoff = StableStore::kAccessLatencyCycles << attempt;
    ++stats_.retries;
    stats_.backoff_cycles += backoff;
  }
  if (!status.ok()) {
    ++stats_.device_errors;
    return status.fault();
  }
  // Overwrite is the atomic new-log swap: the checkpoint is durable and every earlier
  // record — synced or still volatile — is superseded by the snapshot that contains its
  // effects.
  next_seq_ = seq + 1;
  stats_.commits += appended_mutations_ - durable_mutations_;
  durable_mutations_ = appended_mutations_;
  ++stats_.checkpoints;
  if (machine_ != nullptr) {
    machine_->trace().Emit(TraceEventKind::kFilingOp, machine_->now(), kTraceNoProcessor,
                           kTraceNoProcess,
                           static_cast<uint32_t>(FilingOpKind::kJournalCheckpoint),
                           static_cast<uint32_t>(record.size()), 0);
  }
  return Status::Ok();
}

Status Journal::Replay(const ApplyFn& apply) {
  IMAX_ASSIGN_OR_RETURN(std::vector<uint8_t> log, device_->ReadAll());

  struct Pending {
    uint64_t seq = 0;
    JournalRecordType type = JournalRecordType::kCommit;
    std::vector<uint8_t> payload;
    bool active = false;
  };
  Pending pending;
  uint64_t max_seq = 0;
  size_t offset = 0;

  while (offset < log.size()) {
    size_t remaining = log.size() - offset;
    if (remaining < kRecordHeaderBytes) {
      ++stats_.torn_tail_truncations;  // header cut mid-write: the torn tail
      break;
    }
    const uint8_t* header = log.data() + offset;
    if (GetU32(header) != kRecordMagic) {
      // Framing lost: nothing after this point can be trusted to start on a record
      // boundary, so the rest of the log is dropped (and the pending mutation with it).
      ++stats_.corrupt_records_dropped;
      break;
    }
    uint64_t seq = GetU64(header + 4);
    JournalRecordType type = static_cast<JournalRecordType>(header[12]);
    uint32_t payload_len = GetU32(header + 16);
    uint32_t crc = GetU32(header + 20);
    if (payload_len > kMaxPayloadBytes) {
      ++stats_.corrupt_records_dropped;
      break;
    }
    if (remaining < kRecordHeaderBytes + payload_len) {
      ++stats_.torn_tail_truncations;  // payload cut mid-write
      break;
    }
    std::vector<uint8_t> payload(header + kRecordHeaderBytes,
                                 header + kRecordHeaderBytes + payload_len);
    if (RecordCrc(seq, type, payload) != crc) {
      ++stats_.corrupt_records_dropped;
      break;
    }
    offset += kRecordHeaderBytes + payload_len;
    ++stats_.replayed_records;
    max_seq = std::max(max_seq, seq);

    switch (type) {
      case JournalRecordType::kCheckpoint:
        // A checkpoint supersedes all earlier state, including any dangling mutation.
        if (pending.active) {
          ++stats_.rolled_back_transactions;
          pending.active = false;
        }
        if (apply(type, payload).ok()) {
          ++stats_.replayed_transactions;
        } else {
          ++stats_.rolled_back_transactions;
        }
        break;
      case JournalRecordType::kCommit:
        if (pending.active && pending.seq == seq) {
          if (apply(pending.type, pending.payload).ok()) {
            ++stats_.replayed_transactions;
          } else {
            ++stats_.rolled_back_transactions;
          }
          pending.active = false;
        } else {
          ++stats_.orphan_commits;  // a seal with no matching mutation record
        }
        break;
      case JournalRecordType::kFileImage:
      case JournalRecordType::kFileComposite:
      case JournalRecordType::kRemove:
        if (pending.active) {
          ++stats_.rolled_back_transactions;  // mutation never sealed by its commit
        }
        pending.seq = seq;
        pending.type = type;
        pending.payload = std::move(payload);
        pending.active = true;
        break;
    }
  }
  if (pending.active) {
    ++stats_.rolled_back_transactions;  // log ended before the sealing commit
  }
  next_seq_ = max_seq + 1;
  return Status::Ok();
}

}  // namespace imax432

#include "src/filing/crash_campaign.h"

#include <algorithm>
#include <string>

#include "src/base/xorshift.h"
#include "src/isa/assembler.h"
#include "src/memory/swapping_memory_manager.h"
#include "src/os/fault_service.h"
#include "src/os/system.h"

namespace imax432 {

namespace {

// The typed sentinel every epoch files: its recovery is the §7.2 cross-restart type
// identity check. Constant contents so any incarnation's copy verifies.
constexpr uint32_t kSentinelTypeId = 0x7432;
constexpr uint32_t kWrongTypeId = 0x0bad;
constexpr uint32_t kTickTypeId = 0x7001;
constexpr char kSentinelName[] = "crash-sentinel";
constexpr uint32_t kSentinelBytes = 64;

void SentinelData(uint8_t* out) {
  for (uint32_t i = 0; i < kSentinelBytes; ++i) {
    out[i] = static_cast<uint8_t>(0x43 + i * 7);
  }
}

uint64_t FingerprintTrace(const std::vector<TraceEvent>& events) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  for (const TraceEvent& event : events) {
    mix(event.ts);
    mix(event.process);
    mix((static_cast<uint64_t>(event.a) << 32) | event.b);
    mix((static_cast<uint64_t>(event.c) << 16) | event.cpu);
    mix(static_cast<uint64_t>(event.kind));
  }
  return hash;
}

// One epoch of the partitioned crash schedule. Times are epoch-relative: each incarnation
// boots at virtual time 0.
struct EpochPlan {
  Cycles start = 0;  // campaign-absolute start, for reporting
  Cycles span = 0;   // cut time (or remaining horizon for the final epoch)
  std::vector<InjectionEvent> in_run;
  bool has_cut = false;
  InjectionEvent cut;
};

std::vector<EpochPlan> PartitionSchedule(const std::vector<InjectionEvent>& schedule,
                                         Cycles horizon) {
  std::vector<EpochPlan> epochs(1);
  Cycles epoch_start = 0;
  for (const InjectionEvent& event : schedule) {
    if (event.kind == InjectionKind::kPowerCut) {
      EpochPlan& epoch = epochs.back();
      epoch.start = epoch_start;
      epoch.span = event.at - epoch_start;
      epoch.has_cut = true;
      epoch.cut = event;
      epoch.cut.at = event.at - epoch_start;
      epoch_start = event.at;
      epochs.emplace_back();
    } else {
      InjectionEvent relative = event;
      relative.at = event.at - epoch_start;
      epochs.back().in_run.push_back(relative);
    }
  }
  epochs.back().start = epoch_start;
  epochs.back().span = horizon > epoch_start ? horizon - epoch_start : 0;
  return epochs;
}

// The fault_campaign_test churn worker: allocation pressure, swap-ins, and compute, at the
// services level with faults routed to the recovery service.
void SpawnChurnWorkers(System& system, const AccessDescriptor& fault_port, int workers) {
  for (int w = 0; w < workers; ++w) {
    auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                                SystemType::kGeneric, 8, 2,
                                                rights::kRead | rights::kWrite);
    if (!carrier.ok()) {
      continue;
    }
    (void)system.machine().addressing().WriteAd(carrier.value(), 0,
                                                system.memory().global_heap());
    Assembler a("crash-churn");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0);
    auto loop = a.NewLabel();
    a.LoadImm(0, 0).LoadImm(1, 40).Bind(loop);
    a.CreateObject(3, 2, 4 * 1024);
    a.StoreData(3, 0, 0, 8);
    a.StoreAd(1, 3, 1);
    a.LoadAd(4, 1, 1);
    a.LoadData(5, 4, 0, 8);
    a.Compute(400);
    a.AddImm(0, 0, 1).BranchIfLess(0, 1, loop);
    a.Halt();
    ProcessOptions options;
    options.initial_arg = carrier.value();
    options.imax_level = kImaxLevelServices;
    options.fault_port = fault_port;
    (void)system.Spawn(a.Build(), options);
  }
}

// Mutation source shared by every filing tick in one epoch. Owns the deterministic RNG and
// the record of per-prefix store digests (the crash oracle).
struct FilingDriver {
  System* system = nullptr;
  StableStore* device = nullptr;
  AccessDescriptor tick_tdo;
  Xorshift rng;
  std::vector<uint64_t> prefix_digests;  // [0] = post-recovery state, then one per mutation

  explicit FilingDriver(uint64_t seed) : rng(seed) {}

  void RecordMutation() { prefix_digests.push_back(system->filing().StateDigest()); }

  Result<AccessDescriptor> MakeSource(uint32_t type_id, uint32_t bytes, uint32_t slots) {
    AccessDescriptor sro = system->memory().global_heap();
    Result<AccessDescriptor> object =
        type_id != 0
            ? system->types().CreateTypedObject(tick_tdo, sro, bytes, slots,
                                                rights::kRead | rights::kWrite |
                                                    rights::kDelete)
            : system->memory().CreateObject(sro, SystemType::kGeneric, bytes, slots,
                                            rights::kRead | rights::kWrite |
                                                rights::kDelete);
    if (!object.ok()) {
      return object;
    }
    std::vector<uint8_t> data(bytes);
    for (uint8_t& byte : data) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    if (bytes > 0) {
      IMAX_RETURN_IF_FAULT(system->machine().addressing().WriteDataBlock(
          object.value(), 0, data.data(), bytes));
    }
    return object;
  }

  // One deterministic filing mutation: file a plain image, a typed image, or a small
  // cyclic composite, or remove a previously filed name. Occasionally injects a transient
  // stable-device failure first, so the journal's retry-with-backoff path runs under the
  // campaign too.
  void Tick() {
    if (rng.NextChance(1, 16)) {
      device->InjectTransientFailures(1);
    }
    uint64_t choice = rng.NextBelow(8);
    ObjectStore& filing = system->filing();
    if (choice < 3) {
      std::string name = "img-" + std::to_string(rng.NextBelow(6));
      uint32_t bytes = static_cast<uint32_t>(16 + rng.NextBelow(240));
      auto object = MakeSource(0, bytes, 0);
      if (object.ok() && filing.File(name, object.value()).ok()) {
        RecordMutation();
      }
      if (object.ok()) {
        (void)system->memory().DestroyObject(object.value());
      }
    } else if (choice < 5) {
      std::string name = "typ-" + std::to_string(rng.NextBelow(4));
      auto object = MakeSource(kTickTypeId, 32, 0);
      if (object.ok() && filing.File(name, object.value()).ok()) {
        RecordMutation();
      }
      if (object.ok()) {
        (void)system->memory().DestroyObject(object.value());
      }
    } else if (choice < 6) {
      std::string name = "cmp-" + std::to_string(rng.NextBelow(3));
      auto a = MakeSource(0, 16, 2);
      auto b = MakeSource(0, 8, 1);
      auto c = MakeSource(0, 24, 0);
      if (a.ok() && b.ok() && c.ok()) {
        AddressingUnit& addressing = system->machine().addressing();
        bool linked = addressing.WriteAd(a.value(), 0, b.value()).ok() &&
                      addressing.WriteAd(a.value(), 1, c.value()).ok() &&
                      addressing.WriteAd(b.value(), 0, a.value()).ok();  // a cycle
        if (linked && filing.FileComposite(name, a.value()).ok()) {
          RecordMutation();
        }
      }
      for (auto* object : {&a, &b, &c}) {
        if (object->ok()) {
          (void)system->memory().DestroyObject(object->value());
        }
      }
    } else {
      static const char* const kPools[] = {"img-", "typ-", "cmp-"};
      std::string name = std::string(kPools[rng.NextBelow(3)]) +
                         std::to_string(rng.NextBelow(6));
      if (filing.Remove(name).ok()) {
        RecordMutation();
      }
    }
  }
};

// Files the sentinel typed image (constant contents, fixed type id) for the §7.2 check.
void FileSentinel(System& system) {
  auto tdo = system.types().CreateTypeDefinition(kSentinelTypeId);
  if (!tdo.ok()) {
    return;
  }
  auto object = system.types().CreateTypedObject(
      tdo.value(), system.memory().global_heap(), kSentinelBytes, 0,
      rights::kRead | rights::kWrite | rights::kDelete);
  if (!object.ok()) {
    return;
  }
  uint8_t data[kSentinelBytes];
  SentinelData(data);
  if (system.machine().addressing().WriteDataBlock(object.value(), 0, data,
                                                   kSentinelBytes).ok()) {
    (void)system.filing().File(kSentinelName, object.value());
  }
  (void)system.memory().DestroyObject(object.value());
}

// Post-recovery §7.2 check: the recovered sentinel resurrects through a matching TDO with
// its contents intact, and refuses a TDO with the wrong type id.
void CheckTypedIdentity(System& system, CrashEpochReport* epoch) {
  if (!system.filing().Contains(kSentinelName)) {
    return;  // nothing recovered to check (first epoch, or sentinel not durable yet)
  }
  epoch->typed_identity_checked = true;
  epoch->typed_identity_ok = false;

  auto wrong_tdo = system.types().CreateTypeDefinition(kWrongTypeId);
  if (wrong_tdo.ok()) {
    auto refused = system.filing().Retrieve(kSentinelName, system.memory().global_heap(),
                                            wrong_tdo.value());
    if (refused.ok() || refused.fault() != Fault::kTypeMismatch) {
      return;  // the wrong TDO must be refused with kTypeMismatch, nothing else
    }
  }
  auto tdo = system.types().CreateTypeDefinition(kSentinelTypeId);
  if (!tdo.ok()) {
    return;
  }
  auto object = system.filing().Retrieve(kSentinelName, system.memory().global_heap(),
                                         tdo.value());
  if (!object.ok()) {
    return;
  }
  uint8_t expected[kSentinelBytes];
  uint8_t actual[kSentinelBytes] = {};
  SentinelData(expected);
  bool data_ok = system.machine()
                     .addressing()
                     .ReadDataBlock(object.value(), 0, actual, kSentinelBytes)
                     .ok() &&
                 std::equal(expected, expected + kSentinelBytes, actual);
  bool type_ok = system.types().CheckType(object.value(), tdo.value()).ok();
  (void)system.memory().DestroyObject(object.value());
  epoch->typed_identity_ok = data_ok && type_ok;
}

void AccumulateJournal(const JournalStats& stats, JournalStats* total) {
  total->appends += stats.appends;
  total->commits += stats.commits;
  total->bytes_appended += stats.bytes_appended;
  total->syncs += stats.syncs;
  total->retries += stats.retries;
  total->backoff_cycles += stats.backoff_cycles;
  total->device_errors += stats.device_errors;
  total->checkpoints += stats.checkpoints;
  total->replayed_records += stats.replayed_records;
  total->replayed_transactions += stats.replayed_transactions;
  total->torn_tail_truncations += stats.torn_tail_truncations;
  total->corrupt_records_dropped += stats.corrupt_records_dropped;
  total->orphan_commits += stats.orphan_commits;
  total->rolled_back_transactions += stats.rolled_back_transactions;
}

}  // namespace

CrashCampaignReport RunCrashCampaign(const CrashCampaignConfig& config) {
  CrashCampaignReport report;
  report.config = config;

  std::vector<InjectionEvent> schedule = FaultInjector::GenerateCrashSchedule(
      config.seed, config.events, config.power_cuts, config.horizon);
  std::vector<EpochPlan> epochs = PartitionSchedule(schedule, config.horizon);
  report.epochs = static_cast<uint32_t>(epochs.size());

  // The one device the whole campaign shares: the only state that survives a cut.
  StableStore device;

  // The oracle carried across the boot boundary: digests of every valid mutation prefix of
  // the previous incarnation, and the durable floor at the moment of its cut.
  std::vector<uint64_t> expected_digests = {ObjectStore(nullptr, nullptr).StateDigest()};
  uint64_t durable_floor = 0;

  uint64_t campaign_hash = 1469598103934665603ull;
  auto mix = [&campaign_hash](uint64_t value) {
    campaign_hash ^= value;
    campaign_hash *= 1099511628211ull;
  };

  for (size_t index = 0; index < epochs.size(); ++index) {
    const EpochPlan& plan = epochs[index];
    CrashEpochReport epoch;
    epoch.start = plan.start;
    epoch.power_cut = plan.has_cut;
    epoch.durable_floor = durable_floor;

    SystemConfig system_config;
    system_config.processors = config.processors;
    system_config.machine.memory_bytes = config.memory_bytes;
    system_config.machine.object_table_capacity = config.object_table_capacity;
    system_config.memory_manager = MemoryManagerKind::kSwapping;
    system_config.trace = true;
    system_config.trace_capacity = config.trace_capacity;
    system_config.start_patrol_daemon = true;
    system_config.stable_store = &device;
    system_config.filing_checkpoint_interval = config.checkpoint_interval;
    System system(system_config);

    // --- Post-recovery verification (before any new work touches the store) ---
    epoch.recovered_digest = system.filing().StateDigest();
    for (uint64_t k = durable_floor; k < expected_digests.size(); ++k) {
      if (expected_digests[k] == epoch.recovered_digest) {
        epoch.recovery_matched = true;
        epoch.recovery_prefix = k;
        break;
      }
    }
    if (!epoch.recovery_matched) {
      ++report.recovery_mismatches;
    }
    {
      PatrolStats sweep = system.patrol().SweepNow();
      epoch.patrol_violations =
          sweep.checksum_failures + sweep.invariant_failures + sweep.data_crc_failures;
      report.post_recovery_violations += epoch.patrol_violations;
    }
    CheckTypedIdentity(system, &epoch);
    if (epoch.typed_identity_checked && !epoch.typed_identity_ok) {
      ++report.typed_identity_failures;
    }

    // --- Workload ---
    FaultService service(&system.kernel(), FaultService::MakeRecoveryPolicy());
    auto fault_port = service.Spawn();
    if (fault_port.ok()) {
      SpawnChurnWorkers(system, fault_port.value(), 3);
    }

    FilingDriver driver(config.seed ^ (0x9e3779b97f4a7c15ull * (index + 1)));
    driver.system = &system;
    driver.device = &device;
    auto tick_tdo = system.types().CreateTypeDefinition(kTickTypeId);
    if (tick_tdo.ok()) {
      driver.tick_tdo = tick_tdo.value();
    }
    FileSentinel(system);
    if (system.filing().stats().filed > 0) {
      driver.RecordMutation();  // the sentinel counts toward the prefix oracle
    }
    driver.prefix_digests.insert(driver.prefix_digests.begin(),
                                 epoch.recovered_digest);

    Cycles tick_limit = plan.span;
    for (Cycles t = config.filing_tick_interval; t < tick_limit;
         t += config.filing_tick_interval) {
      FilingDriver* d = &driver;
      system.machine().events().ScheduleAt(t, [d] { d->Tick(); });
    }

    FaultInjector injector(&system.kernel(),
                           static_cast<SwappingMemoryManager*>(&system.memory()));
    injector.Arm(plan.in_run);
    uint64_t durable_at_cut = 0;
    injector.SetPowerCutHook([&system, &device, &durable_at_cut](uint32_t arg) {
      durable_at_cut = system.journal()->durable_mutations();
      device.PowerCut(arg);
      return true;
    });

    // --- Run the epoch ---
    if (plan.has_cut) {
      system.RunUntil(plan.cut.at);
      injector.Apply(plan.cut);
    } else {
      system.Run();
      system.patrol().SweepNow();
    }

    // --- Harvest before teardown ---
    epoch.end = system.now();
    epoch.trace_fingerprint = FingerprintTrace(system.machine().trace().Snapshot());
    epoch.store_digest = system.filing().StateDigest();
    epoch.mutations_applied = driver.prefix_digests.size() - 1;
    epoch.panics = system.kernel().stats().panics;

    report.injections_fired += injector.stats().fired;
    report.injections_skipped += injector.stats().skipped;
    for (size_t k = 0; k < static_cast<size_t>(InjectionKind::kKindCount); ++k) {
      report.per_kind[k] += injector.stats().per_kind[k];
    }
    report.mutations_applied += epoch.mutations_applied;
    AccumulateJournal(system.journal()->stats(), &report.journal);
    report.filing_type_checks_failed += system.filing().stats().type_checks_failed;
    report.retrieve_cleanups += system.filing().stats().retrieve_cleanups;
    report.panics += epoch.panics;
    report.virtual_cycles += epoch.end;

    mix(epoch.end);
    mix(epoch.trace_fingerprint);
    mix(epoch.store_digest);
    mix(epoch.recovered_digest);

    // Hand the oracle to the next incarnation. A clean (final-epoch) teardown keeps the
    // whole tail, so the floor is everything applied; a cut floors at what was durable.
    if (plan.has_cut) {
      durable_floor = durable_at_cut;
      report.mutations_durable += durable_at_cut;
    } else {
      durable_floor = epoch.mutations_applied;
      report.mutations_durable += system.journal()->durable_mutations();
    }
    expected_digests = std::move(driver.prefix_digests);

    report.epoch_reports.push_back(epoch);
  }
  report.power_cuts_fired =
      report.per_kind[static_cast<size_t>(InjectionKind::kPowerCut)];

  // Final verification boot: a clean restart after the last epoch must recover the exact
  // final store (clean shutdown loses nothing: durable + tail both replay).
  {
    SystemConfig system_config;
    system_config.processors = 1;
    system_config.machine.memory_bytes = config.memory_bytes;
    system_config.machine.object_table_capacity = config.object_table_capacity;
    system_config.memory_manager = MemoryManagerKind::kSwapping;
    system_config.stable_store = &device;
    system_config.filing_checkpoint_interval = config.checkpoint_interval;
    System verifier(system_config);
    if (verifier.filing().StateDigest() != expected_digests.back()) {
      ++report.recovery_mismatches;
    }
    AccumulateJournal(verifier.journal()->stats(), &report.journal);
  }

  report.campaign_fingerprint = campaign_hash;
  return report;
}

}  // namespace imax432

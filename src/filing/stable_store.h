// StableStore: the simulated stable device behind the filing journal.
//
// Modeled like the swap device (src/memory/backing_store.h) — fixed access latency plus
// per-byte streaming cost, transient/permanent failure injection behind a CheckDevice()
// gate — but byte-addressed and append-only, because a write-ahead journal is a log, not a
// slot array. The device has two regions:
//
//   durable_  bytes a restarted node reads back. Survives System teardown (the store is
//             owned by the crash-restart driver, never by the System it serves).
//   tail_     bytes appended but not yet synced: the device's volatile write buffer. A
//             clean restart still sees them (Contents() = durable + tail, like a disk whose
//             cache drained on orderly shutdown); a power cut loses them mid-flight.
//
// PowerCut() is the crash model: it keeps an arbitrary *prefix* of the unsynced tail — the
// bytes the head happened to finish before the supply collapsed — so recovery always faces
// exactly the torn-write problem real journals are designed around: the last record may be
// cut anywhere, including inside its checksum or mid-way through a sealed commit.

#ifndef IMAX432_SRC_FILING_STABLE_STORE_H_
#define IMAX432_SRC_FILING_STABLE_STORE_H_

#include <cstdint>
#include <vector>

#include "src/arch/types.h"
#include "src/base/result.h"

namespace imax432 {

class StableStore {
 public:
  // Same cost model as the swap device: the journal shares the IP subsystem's media path.
  static constexpr Cycles kAccessLatencyCycles = 24000;
  static Cycles TransferCost(uint32_t bytes) { return kAccessLatencyCycles + bytes / 2; }

  StableStore() = default;

  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  // Appends bytes to the volatile tail. A media transfer: fails with kDeviceError under an
  // injected fault (the journal retries with backoff, like the swap layer).
  Status Append(const uint8_t* data, size_t size) {
    IMAX_RETURN_IF_FAULT(CheckDevice());
    tail_.insert(tail_.end(), data, data + size);
    ++writes_;
    bytes_written_ += size;
    return Status::Ok();
  }

  // Makes every tail byte durable (the journal's commit barrier). Also a media transfer.
  Status Sync() {
    IMAX_RETURN_IF_FAULT(CheckDevice());
    durable_.insert(durable_.end(), tail_.begin(), tail_.end());
    tail_.clear();
    ++syncs_;
    return Status::Ok();
  }

  // Drops tail bytes appended after `mark` (rollback of a failed append batch; the caller
  // snapshots tail_size() before appending). Pure bookkeeping, never a device error.
  void TruncateTail(size_t mark) {
    if (mark < tail_.size()) {
      tail_.resize(mark);
    }
  }

  // Atomically replaces the whole durable log (checkpoint compaction, modeled as the
  // classic write-new-then-swap). Any unsynced tail is folded into the replacement by the
  // caller, so it is cleared here.
  Status Overwrite(std::vector<uint8_t> bytes) {
    IMAX_RETURN_IF_FAULT(CheckDevice());
    durable_ = std::move(bytes);
    tail_.clear();
    ++writes_;
    bytes_written_ += durable_.size();
    return Status::Ok();
  }

  // What a rebooted node reads back. A clean shutdown keeps the tail; a power cut has
  // already torn it. Reading is a media transfer too: a dead device cannot recover.
  Result<std::vector<uint8_t>> ReadAll() {
    IMAX_RETURN_IF_FAULT(CheckDevice());
    ++reads_;
    std::vector<uint8_t> all = durable_;
    all.insert(all.end(), tail_.begin(), tail_.end());
    return all;
  }

  // --- Crash model (driven by the kPowerCut injection) ---
  // Loses power mid-operation: a `selector`-chosen prefix of the unsynced tail lands on the
  // medium (the torn write), the rest vanishes. Deterministic per (tail contents, selector).
  void PowerCut(uint32_t selector) {
    size_t keep = tail_.empty() ? 0 : selector % (tail_.size() + 1);
    durable_.insert(durable_.end(), tail_.begin(), tail_.begin() + keep);
    torn_bytes_ += tail_.size() - keep;
    tail_.clear();
    ++power_cuts_;
  }

  // --- Fault injection (same contract as BackingStore) ---
  void InjectTransientFailures(uint32_t count) { transient_failures_ += count; }
  void SetPermanentFailure(bool failed) { permanent_failure_ = failed; }
  bool permanent_failure() const { return permanent_failure_; }

  // --- Corpus seeding (tests and the imax_lint journal-integrity pass) ---
  // Flips bits in a durable byte (simulated media rot under a committed record).
  void CorruptDurable(size_t offset, uint8_t mask) {
    if (offset < durable_.size()) {
      durable_[offset] ^= mask;
    }
  }
  // Chops the durable log (a torn tail that predates this boot).
  void TruncateDurable(size_t size) {
    if (size < durable_.size()) {
      durable_.resize(size);
    }
  }
  // Replaces the device image wholesale (snapshot/restore for seeded corpora).
  void LoadImage(std::vector<uint8_t> bytes) {
    durable_ = std::move(bytes);
    tail_.clear();
  }
  const std::vector<uint8_t>& durable_bytes() const { return durable_; }

  size_t durable_size() const { return durable_.size(); }
  size_t tail_size() const { return tail_.size(); }
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t syncs() const { return syncs_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t failed_transfers() const { return failed_transfers_; }
  uint64_t power_cuts() const { return power_cuts_; }
  uint64_t torn_bytes() const { return torn_bytes_; }

 private:
  Status CheckDevice() {
    if (permanent_failure_) {
      ++failed_transfers_;
      return Fault::kDeviceError;
    }
    if (transient_failures_ > 0) {
      --transient_failures_;
      ++failed_transfers_;
      return Fault::kDeviceError;
    }
    return Status::Ok();
  }

  std::vector<uint8_t> durable_;
  std::vector<uint8_t> tail_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t syncs_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t failed_transfers_ = 0;
  uint64_t power_cuts_ = 0;
  uint64_t torn_bytes_ = 0;
  uint32_t transient_failures_ = 0;
  bool permanent_failure_ = false;
};

}  // namespace imax432

#endif  // IMAX432_SRC_FILING_STABLE_STORE_H_

// Crash-restart campaign driver: full-durability testing of the journaled filing system.
//
// A crash campaign is a seeded fault campaign (PR 5 semantics: pure schedule, bit-identical
// replay) whose schedule also contains kPowerCut events. The driver partitions the schedule
// at the cuts into *epochs*. Each epoch boots a fresh System against the one StableStore
// that survives the whole campaign, recovers the filing store from the journal, verifies
// the recovery, runs a mixed workload (churn processes + deterministic filing mutations)
// under the epoch's in-run injections, and then the power cut fires: the unsynced journal
// tail is torn at a seeded offset and the System is destroyed mid-operation. The next epoch
// must recover.
//
// Post-recovery verification per epoch:
//   1. Prefix consistency: the recovered store digest must equal the digest the previous
//      incarnation had after its k-th mutation, for some k between the durable count at the
//      cut and the total applied count (the torn tail may preserve complete unsynced
//      transactions, never partial ones).
//   2. Zero patrol violations: an ObjectPatrol sweep of the recovered System finds no
//      checksum / level-invariant / data-CRC failures.
//   3. Type identity across restart (§7.2): the recovered typed sentinel image resurrects
//      through a TDO carrying its type id and refuses one that does not (kTypeMismatch).
//
// The whole campaign is a pure function of its config: two runs produce identical
// per-epoch trace fingerprints and an identical campaign fingerprint.

#ifndef IMAX432_SRC_FILING_CRASH_CAMPAIGN_H_
#define IMAX432_SRC_FILING_CRASH_CAMPAIGN_H_

#include <cstdint>
#include <vector>

#include "src/arch/types.h"
#include "src/filing/journal.h"
#include "src/filing/object_store.h"
#include "src/sim/fault_injector.h"

namespace imax432 {

struct CrashCampaignConfig {
  uint64_t seed = 432;
  uint32_t events = 200;      // total injection events, power cuts included
  uint32_t power_cuts = 25;   // kPowerCut events among them (epochs = power_cuts + 1)
  Cycles horizon = 2'000'000;
  int processors = 2;
  uint32_t memory_bytes = 192 * 1024;
  uint32_t object_table_capacity = 4096;
  uint32_t checkpoint_interval = 24;  // journaled mutations between compactions
  Cycles filing_tick_interval = 9'000;
  uint32_t trace_capacity = 1u << 16;
};

struct CrashEpochReport {
  Cycles start = 0;            // campaign-absolute epoch start
  Cycles end = 0;              // virtual cycles this incarnation ran
  bool power_cut = false;      // ended by a cut (false only for the final epoch)
  uint64_t trace_fingerprint = 0;
  uint64_t store_digest = 0;          // live store digest at teardown
  uint64_t recovered_digest = 0;      // store digest right after boot-time recovery
  bool recovery_matched = false;      // digest matched a valid mutation prefix
  uint64_t recovery_prefix = 0;       // the matched k
  uint64_t durable_floor = 0;         // durable mutation count at the previous cut
  uint64_t mutations_applied = 0;     // filing mutations applied this epoch
  uint64_t patrol_violations = 0;     // post-recovery sweep failures (must be 0)
  bool typed_identity_checked = false;
  bool typed_identity_ok = false;
  uint64_t panics = 0;
};

struct CrashCampaignReport {
  CrashCampaignConfig config;
  uint32_t epochs = 0;
  uint64_t power_cuts_fired = 0;
  uint64_t injections_fired = 0;
  uint64_t injections_skipped = 0;
  uint64_t per_kind[static_cast<size_t>(InjectionKind::kKindCount)] = {};

  // Pass/fail aggregates (all failure counts must be zero for a healthy campaign).
  uint64_t recovery_mismatches = 0;
  uint64_t typed_identity_failures = 0;
  uint64_t post_recovery_violations = 0;
  uint64_t panics = 0;

  // Filing/journal aggregates across all incarnations.
  uint64_t mutations_applied = 0;
  uint64_t mutations_durable = 0;
  JournalStats journal;  // summed over epochs
  uint64_t filing_type_checks_failed = 0;
  uint64_t retrieve_cleanups = 0;

  Cycles virtual_cycles = 0;        // summed epoch end times
  uint64_t campaign_fingerprint = 0;  // FNV over per-epoch fingerprints/digests/end times

  std::vector<CrashEpochReport> epoch_reports;

  bool healthy() const {
    return recovery_mismatches == 0 && typed_identity_failures == 0 &&
           post_recovery_violations == 0 && panics == 0;
  }
};

// Runs the campaign. Deterministic: same config => same report, bit for bit.
CrashCampaignReport RunCrashCampaign(const CrashCampaignConfig& config);

}  // namespace imax432

#endif  // IMAX432_SRC_FILING_CRASH_CAMPAIGN_H_

// ObjectStore: a crash-consistent object filing system preserving hardware type identity.
//
// Full object filing is the subject of the companion paper; what *this* paper claims of it
// is one property, which this module reproduces: "No matter what path a system object
// follows within the 432, its hardware-recognized type identity is guaranteed to be
// preserved and checked, either by the hardware or by object filing." (§7.2)
//
// The store checkpoints an object's data part together with its user-type identity (the
// TDO's type id). Retrieval re-creates the object *through the type definition facility*,
// so the resurrected object carries the same hardware-checked identity it had when filed —
// unlike an ordinary byte store, which by the paper's argument ("if a storage system exists
// before the compilation of a package, then it cannot know of and therefore cannot preserve
// the type") would have laundered it into untyped bytes.
//
// Access parts are not filed: a passive store must not hold live capabilities (they would
// dangle across the store's lifetime). Filing an object with non-null access slots is
// rejected, mirroring the real system's requirement that filed composites be transitively
// passivated.
//
// With a Journal attached (src/filing/journal.h), the store is write-ahead logged: every
// mutation (File / FileComposite / Remove) first commits a checksummed record to the
// stable device, then applies in memory, and periodically checkpoints the whole store so
// the log compacts. Recover() rebuilds the store from the journal after a crash — the §7.2
// type-identity guarantee then holds *across restarts*, because recovered typed images
// still resurrect only through their matching TDO.

#ifndef IMAX432_SRC_FILING_OBJECT_STORE_H_
#define IMAX432_SRC_FILING_OBJECT_STORE_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/kernel.h"
#include "src/filing/journal.h"
#include "src/obs/trace.h"
#include "src/os/type_manager.h"

namespace imax432 {

struct FilingStats {
  uint64_t filed = 0;
  uint64_t retrieved = 0;
  uint64_t removed = 0;
  uint64_t type_checks_failed = 0;
  uint64_t journaled_mutations = 0;   // mutations that reached the stable log
  uint64_t journal_rejections = 0;    // mutations refused because the log append failed
  uint64_t recoveries = 0;            // Recover() calls completed
  uint64_t recovered_images = 0;      // plain images restored by journal replay
  uint64_t recovered_composites = 0;  // composites restored by journal replay
  uint64_t retrieve_cleanups = 0;     // partial graphs destroyed after a failed retrieval
};

class ObjectStore {
 public:
  // Maps a filed type id to the type definition object that may resurrect it (composite
  // retrieval). Returning a null AD rejects the type.
  using TdoResolver = std::function<AccessDescriptor(uint32_t type_id)>;

  ObjectStore(Kernel* kernel, TypeManagerFacility* types) : kernel_(kernel), types_(types) {}

  // Write-ahead journaling. Once attached, every mutation must reach the journal before it
  // applies; a mutation whose append fails (device error after retries) is rejected whole.
  // `checkpoint_interval` = journaled mutations between automatic compactions (0 disables
  // automatic checkpoints; Checkpoint() can still be called manually).
  void AttachJournal(Journal* journal, uint32_t checkpoint_interval = 64) {
    journal_ = journal;
    checkpoint_interval_ = checkpoint_interval;
    mutations_since_checkpoint_ = 0;
  }
  Journal* journal() const { return journal_; }

  // Rebuilds the store from the attached journal (crash recovery): committed transactions
  // re-applied in order, torn tails truncated, corrupt records and unsealed transactions
  // rolled back — then compacts the log to one checkpoint so recovered state is durable
  // again. Best-effort: an unreadable device yields an empty store and kDeviceError, but
  // recovery itself never panics.
  Status Recover();

  // Compacts the journal to a single checkpoint record snapshotting the live store.
  Status Checkpoint();

  // Files the object under `name`. Requires read rights. The object's user type id (or 0
  // for plain objects) is recorded with the image.
  Status File(const std::string& name, const AccessDescriptor& object);

  // Retrieves `name` into a fresh object allocated from `sro`. When the filed image carried
  // a user type, `tdo` must be the matching type definition (create rights required); the
  // new object is created through it, restoring hardware-checked identity. Retrieving a
  // typed image without the right TDO faults with kTypeMismatch — the filing-system type
  // check the paper refers to.
  Result<AccessDescriptor> Retrieve(const std::string& name, const AccessDescriptor& sro,
                                    const AccessDescriptor& tdo = {});

  // --- Composite filing (transitive passivation) ---
  // Files the whole object graph reachable from `root` through access parts. Every reached
  // object is serialized with its data part, its user type id, and its outgoing edges as
  // *internal* indices — capabilities become graph structure, which is how a passive store
  // can hold linked objects without holding live ADs. Requires read rights along the way.
  Status FileComposite(const std::string& name, const AccessDescriptor& root);

  // Re-creates a filed graph in `sro`: one fresh object per image node, edges rebuilt with
  // checked stores. Typed nodes are resurrected through the TDO supplied by `resolver`
  // (type identity restored and enforced); pass nullptr if the graph is untyped.
  // Failure atomicity: if any node fails to materialize or link, every object already
  // created for the graph is destroyed — no partial graph is left behind.
  Result<AccessDescriptor> RetrieveComposite(const std::string& name,
                                             const AccessDescriptor& sro,
                                             const TdoResolver& resolver = nullptr);

  // Number of nodes in a filed composite (kNotFound if the name is a plain image).
  Result<uint32_t> CompositeSize(const std::string& name) const;

  // Store maintenance. A name names either a plain image or a composite, never both, so
  // these treat the two maps as one namespace.
  bool Contains(const std::string& name) const {
    return images_.count(name) != 0 || composites_.count(name) != 0;
  }
  Status Remove(const std::string& name);
  // Type id of a filed name: the image's type for plain images, the root node's type for
  // composites (0 = untyped either way).
  Result<uint32_t> FiledTypeId(const std::string& name) const;
  size_t size() const { return images_.size() + composites_.size(); }
  const FilingStats& stats() const { return stats_; }

  // Deterministic digest (FNV-1a/64 over the canonical snapshot encoding) of the live
  // store contents. The crash-restart driver's recovery oracle: after a reboot the digest
  // must match the digest some valid mutation prefix of the previous incarnation produced.
  uint64_t StateDigest() const;

 private:
  struct Image {
    uint32_t type_id = 0;  // 0 = plain (no user type)
    std::vector<uint8_t> data;
  };

  // One node of a filed composite: the image plus outgoing edges (slot -> node index).
  struct Node {
    Image image;
    uint32_t access_slots = 0;
    std::vector<std::pair<uint32_t, uint32_t>> edges;
  };
  struct Composite {
    std::vector<Node> nodes;  // node 0 is the root
  };

  Result<Image> Capture(const AccessDescriptor& object) const;

  // Write-ahead step: no-op without a journal; with one, the mutation record must commit
  // before the caller may touch the in-memory maps.
  Status JournalMutation(JournalRecordType type, const std::vector<uint8_t>& payload);
  void MaybeCheckpoint();
  Status ApplyJournalRecord(JournalRecordType type, const std::vector<uint8_t>& payload);
  std::vector<uint8_t> EncodeSnapshot() const;
  void EmitTrace(FilingOpKind op, uint32_t b, const std::string& name) const;
  // Destroys every object in `created` (failed retrieval rollback).
  void DestroyAll(const std::vector<AccessDescriptor>& created);

  Kernel* kernel_;
  TypeManagerFacility* types_;
  Journal* journal_ = nullptr;
  uint32_t checkpoint_interval_ = 0;
  uint32_t mutations_since_checkpoint_ = 0;
  std::map<std::string, Image> images_;
  std::map<std::string, Composite> composites_;
  FilingStats stats_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_FILING_OBJECT_STORE_H_

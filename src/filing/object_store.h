// ObjectStore: a minimal object filing system preserving hardware type identity.
//
// Full object filing is the subject of the companion paper; what *this* paper claims of it
// is one property, which this module reproduces: "No matter what path a system object
// follows within the 432, its hardware-recognized type identity is guaranteed to be
// preserved and checked, either by the hardware or by object filing." (§7.2)
//
// The store checkpoints an object's data part together with its user-type identity (the
// TDO's type id). Retrieval re-creates the object *through the type definition facility*,
// so the resurrected object carries the same hardware-checked identity it had when filed —
// unlike an ordinary byte store, which by the paper's argument ("if a storage system exists
// before the compilation of a package, then it cannot know of and therefore cannot preserve
// the type") would have laundered it into untyped bytes.
//
// Access parts are not filed: a passive store must not hold live capabilities (they would
// dangle across the store's lifetime). Filing an object with non-null access slots is
// rejected, mirroring the real system's requirement that filed composites be transitively
// passivated.

#ifndef IMAX432_SRC_FILING_OBJECT_STORE_H_
#define IMAX432_SRC_FILING_OBJECT_STORE_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/kernel.h"
#include "src/os/type_manager.h"

namespace imax432 {

struct FilingStats {
  uint64_t filed = 0;
  uint64_t retrieved = 0;
  uint64_t type_checks_failed = 0;
};

class ObjectStore {
 public:
  // Maps a filed type id to the type definition object that may resurrect it (composite
  // retrieval). Returning a null AD rejects the type.
  using TdoResolver = std::function<AccessDescriptor(uint32_t type_id)>;

  ObjectStore(Kernel* kernel, TypeManagerFacility* types) : kernel_(kernel), types_(types) {}

  // Files the object under `name`. Requires read rights. The object's user type id (or 0
  // for plain objects) is recorded with the image.
  Status File(const std::string& name, const AccessDescriptor& object);

  // Retrieves `name` into a fresh object allocated from `sro`. When the filed image carried
  // a user type, `tdo` must be the matching type definition (create rights required); the
  // new object is created through it, restoring hardware-checked identity. Retrieving a
  // typed image without the right TDO faults with kTypeMismatch — the filing-system type
  // check the paper refers to.
  Result<AccessDescriptor> Retrieve(const std::string& name, const AccessDescriptor& sro,
                                    const AccessDescriptor& tdo = {});

  // --- Composite filing (transitive passivation) ---
  // Files the whole object graph reachable from `root` through access parts. Every reached
  // object is serialized with its data part, its user type id, and its outgoing edges as
  // *internal* indices — capabilities become graph structure, which is how a passive store
  // can hold linked objects without holding live ADs. Requires read rights along the way.
  Status FileComposite(const std::string& name, const AccessDescriptor& root);

  // Re-creates a filed graph in `sro`: one fresh object per image node, edges rebuilt with
  // checked stores. Typed nodes are resurrected through the TDO supplied by `resolver`
  // (type identity restored and enforced); pass nullptr if the graph is untyped.
  Result<AccessDescriptor> RetrieveComposite(const std::string& name,
                                             const AccessDescriptor& sro,
                                             const TdoResolver& resolver = nullptr);

  // Number of nodes in a filed composite (kNotFound if the name is a plain image).
  Result<uint32_t> CompositeSize(const std::string& name) const;

  // Store maintenance.
  bool Contains(const std::string& name) const { return images_.count(name) != 0; }
  Status Remove(const std::string& name);
  Result<uint32_t> FiledTypeId(const std::string& name) const;
  size_t size() const { return images_.size(); }
  const FilingStats& stats() const { return stats_; }

 private:
  struct Image {
    uint32_t type_id = 0;  // 0 = plain (no user type)
    std::vector<uint8_t> data;
  };

  // One node of a filed composite: the image plus outgoing edges (slot -> node index).
  struct Node {
    Image image;
    uint32_t access_slots = 0;
    std::vector<std::pair<uint32_t, uint32_t>> edges;
  };
  struct Composite {
    std::vector<Node> nodes;  // node 0 is the root
  };

  Result<Image> Capture(const AccessDescriptor& object) const;

  Kernel* kernel_;
  TypeManagerFacility* types_;
  std::map<std::string, Image> images_;
  std::map<std::string, Composite> composites_;
  FilingStats stats_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_FILING_OBJECT_STORE_H_

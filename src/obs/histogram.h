// Cycle-latency histograms with power-of-two buckets.
//
// Latencies in the simulator span five orders of magnitude (a 184-cycle send to a
// multi-million-cycle GC-stalled port wait), so linear buckets are useless; power-of-two
// buckets give constant-time Record() and a usable distribution at every scale. Bucket 0
// holds exactly the value 0 (a dispatch with no queueing, a zero-cost wait); bucket i >= 1
// holds values v with floor(log2(v)) == i - 1; the last bucket is open-ended.
//
// Recording is always on (a handful of adds per kernel event — too cheap to gate); only the
// TraceRecorder ring is opt-in.

#ifndef IMAX432_SRC_OBS_HISTOGRAM_H_
#define IMAX432_SRC_OBS_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/arch/types.h"

namespace imax432 {

class Histogram {
 public:
  // 1 zero bucket + 25 power-of-two buckets: last covers [2^24, inf) = 2+ seconds of
  // virtual time at 8 MHz, beyond any latency the cycle model can produce in one run.
  static constexpr size_t kBuckets = 26;

  void Record(Cycles value) {
    ++buckets_[BucketFor(value)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  static size_t BucketFor(Cycles value) {
    if (value == 0) return 0;
    // floor(log2(value)) via the bit width; clamp into the open-ended last bucket.
    size_t log2 = 63 - static_cast<size_t>(__builtin_clzll(value));
    size_t bucket = log2 + 1;
    return bucket < kBuckets ? bucket : kBuckets - 1;
  }

  // Inclusive lower bound of a bucket: 0, 1, 2, 4, 8, ...
  static Cycles BucketLowerBound(size_t bucket) {
    return bucket == 0 ? 0 : (Cycles{1} << (bucket - 1));
  }

  uint64_t count() const { return count_; }
  Cycles sum() const { return sum_; }
  Cycles min() const { return count_ == 0 ? 0 : min_; }
  Cycles max() const { return max_; }
  uint64_t bucket(size_t i) const { return buckets_[i]; }

  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  // Upper-bound estimate of the p-th percentile (p in [0, 100]): the lower bound of the
  // first bucket whose cumulative count reaches p% of the total. Good to within 2x, which
  // is all a power-of-two histogram can promise.
  Cycles Percentile(double p) const {
    if (count_ == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(p / 100.0 * count_);
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= rank) return BucketLowerBound(i);
    }
    return max_;
  }

  void Reset() {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  Cycles sum_ = 0;
  Cycles min_ = 0;
  Cycles max_ = 0;
};

// The four kernel latency distributions, owned by Machine so every subsystem can reach
// them through the pointer it already holds.
struct LatencyHistograms {
  Histogram port_wait;         // block -> unblock, per process
  Histogram dispatch_latency;  // dispatch decision -> process running (incl. bus wait)
  Histogram domain_call;       // inter-domain call -> matching return (residence time)
  Histogram allocation;        // modeled cost of each CreateObject

  void Reset() {
    port_wait.Reset();
    dispatch_latency.Reset();
    domain_call.Reset();
    allocation.Reset();
  }
};

}  // namespace imax432

#endif  // IMAX432_SRC_OBS_HISTOGRAM_H_

// TraceRecorder: a cycle-timestamped ring buffer of kernel events.
//
// The paper argues entirely in quantified behaviour ("a domain switch takes about 65
// microseconds"), but aggregate *Stats structs cannot show *when* a process blocked on a
// port or how a GC phase overlapped a mutator. The recorder gives the simulator a timeline:
// every interesting kernel transition emits one fixed-size POD TraceEvent stamped with the
// virtual clock. Events live in a fixed-capacity ring (oldest overwritten first), so tracing
// a long run is bounded-memory. When disabled — the default — Emit() is a single branch and
// the buffer is never allocated, so instrumented hot paths cost nothing measurable.
//
// This header is deliberately dependency-light (arch/types.h only) so that sim/machine.h can
// own a TraceRecorder without include cycles.

#ifndef IMAX432_SRC_OBS_TRACE_H_
#define IMAX432_SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/arch/types.h"

namespace imax432 {

// The event taxonomy. One kind per kernel transition worth plotting on a timeline; payload
// word meanings are documented per kind (and in DESIGN.md section 7).
enum class TraceEventKind : uint8_t {
  kDispatch = 0,    // process bound to a processor; a = dispatch latency in cycles
  kPreempt,         // time-slice end; process returned to its dispatching port
  kIdle,            // processor found no ready process; a = dispatching port index
  kBlockSend,       // process blocked sending; a = port index, b = queue depth
  kBlockReceive,    // process blocked receiving; a = port index, b = queue depth
  kUnblock,         // blocked process made ready again; a = port index, b = wait cycles
  kSend,            // message enqueued; a = port index, b = queue depth after
  kReceive,         // message dequeued; a = port index, b = queue depth after
  kAllocate,        // object created; a = object index, b = bytes, c = access slots
  kDestroy,         // object destroyed; a = object index
  kSwapOut,         // segment evicted to backing store; a = object index, b = bytes
  kSwapIn,          // segment brought back; a = object index, b = bytes
  kDomainCall,      // inter-domain call; a = callee context index, b = modeled cost cycles
  kDomainReturn,    // return across domains; a = returning context index, b = residence
  kLocalCall,       // intra-domain call; a = callee context index
  kLocalReturn,     // intra-domain return; a = returning context index
  kFault,           // fault raised; a = fault code, b = 1 if delivered to a fault port
  kGcPhase,         // collector phase transition; a = new phase (GcTracePhase)
  kTerminate,       // process terminated; a = 1 if by fault
  kInstruction,     // instruction-level event (kTrace logging); a = pc, b = opcode
  kRaceDetected,    // dynamic race sanitizer finding; a = object index, b = pc,
                    // c = the other process's object index
  kProcessorRetired,  // GDP retired; process = re-queued process (or kTraceNoProcess),
                      // a = surviving processor count
  kObjectQuarantined,  // patrol quarantined a corrupt object; a = object index,
                       // b = integrity check that failed (ObjectPatrol::CheckKind)
  kDeviceRetry,     // backing-store transfer retried; a = object index, b = attempt number,
                    // c = backoff cycles charged
  kInjection,       // fault injector fired; a = injection kind, b = concrete target, c = arg
  kPatrolSweep,     // patrol sweep completed; a = descriptors scanned, b = quarantined total
  kLifetimeViolation,  // demoted object escaped its context; a = object index,
                       // b = holding object index, c = allocation-site pc
  kInterferenceViolation,  // certified translation-cache entry failed its runtime
                           // cross-check; a = object index,
                           // b = InterferenceViolationKind, c = fill-time data_epoch
  kGuardViolation,  // check-elided execution failed its re-executed full check set;
                    // a = object index, b = GuardViolationKind, c = site pc
  kFilingOp,        // filing-layer operation; a = FilingOpKind, b = payload bytes or
                    // record count, c = FNV-1a hash of the filed name (0 if none)
};

// Payload word `a` of kFilingOp events (see src/filing/object_store.h).
enum class FilingOpKind : uint8_t {
  kFile = 0,           // plain image filed; b = image bytes
  kFileComposite,      // composite filed; b = node count
  kRetrieve,           // plain image retrieved; b = image bytes
  kRetrieveComposite,  // composite retrieved; b = node count
  kRemove,             // name removed; b = 0
  kJournalRetry,       // journal append retried after a device error; b = attempt,
                       // c = backoff cycles charged
  kJournalCheckpoint,  // journal checkpointed/compacted; b = bytes after compaction
  kJournalReplay,      // recovery replay finished; b = transactions applied,
                       // c = records rolled back or dropped
};

// GC phase payload for kGcPhase (mirrors gc/collector.h Phase without depending on it).
enum class GcTracePhase : uint8_t { kIdle = 0, kWhiten, kMark, kSweep };

const char* TraceEventKindName(TraceEventKind kind);
const char* GcTracePhaseName(GcTracePhase phase);
const char* FilingOpKindName(FilingOpKind kind);

// Sentinels for events with no processor / process association.
inline constexpr uint16_t kTraceNoProcessor = 0xffff;
inline constexpr uint32_t kTraceNoProcess = 0xffffffff;

// One timeline sample. POD with no default initializers so the ring can be allocated
// without touching its pages (Enable() would otherwise zero-fill megabytes up front).
struct TraceEvent {
  Cycles ts;           // virtual clock at emission
  uint32_t process;    // process object index, or kTraceNoProcess
  uint32_t a;          // payload words; meaning depends on kind
  uint32_t b;
  uint32_t c;
  uint16_t cpu;        // processor id, or kTraceNoProcessor
  TraceEventKind kind;
};

static_assert(sizeof(TraceEvent) <= 32, "TraceEvent must stay small and POD");

class TraceRecorder {
 public:
  TraceRecorder() = default;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Allocates the ring and starts recording. Idempotent; re-enabling with a different
  // capacity reallocates and clears.
  void Enable(uint32_t capacity = kDefaultCapacity);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }
  uint32_t capacity() const { return capacity_; }

  // The hot path: one predictable branch when disabled, one ring store when enabled.
  void Emit(TraceEventKind kind, Cycles ts, uint16_t cpu, uint32_t process, uint32_t a = 0,
            uint32_t b = 0, uint32_t c = 0) {
    if (!enabled_) return;
    TraceEvent& slot = ring_[head_];
    slot.ts = ts;
    slot.process = process;
    slot.a = a;
    slot.b = b;
    slot.c = c;
    slot.cpu = cpu;
    slot.kind = kind;
    head_ = (head_ + 1 == capacity_) ? 0 : head_ + 1;
    if (size_ < capacity_) ++size_;
    ++total_emitted_;
  }

  // Free-text side channel for kTrace-level log lines (bounded; oldest dropped first).
  void Annotate(Cycles ts, std::string text);

  // Events currently held, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  const std::deque<std::pair<Cycles, std::string>>& annotations() const {
    return annotations_;
  }

  size_t size() const { return size_; }
  uint64_t total_emitted() const { return total_emitted_; }
  // Events pushed out of the ring by later ones.
  uint64_t dropped() const { return total_emitted_ - size_; }

  void Clear();

  static constexpr uint32_t kDefaultCapacity = 1u << 16;
  static constexpr size_t kMaxAnnotations = 4096;

 private:
  bool enabled_ = false;
  // Null until Enable(): disabled mode allocates nothing. Deliberately uninitialized
  // storage (make_unique_for_overwrite) so enabling reserves address space but only the
  // pages events actually land on are ever touched.
  std::unique_ptr<TraceEvent[]> ring_;
  uint32_t capacity_ = 0;
  size_t head_ = 0;               // next slot to write
  size_t size_ = 0;               // events currently held (<= capacity_)
  uint64_t total_emitted_ = 0;
  std::deque<std::pair<Cycles, std::string>> annotations_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OBS_TRACE_H_

#include "src/obs/critical_path.h"

#include <cstdio>
#include <map>

namespace imax432 {

CriticalPathReport AnalyzeCriticalPath(SpanTracer& tracer) {
  CriticalPathReport report;
  const std::vector<SpanRecord>& spans = tracer.spans();
  report.spans = spans.size();
  report.dropped = tracer.dropped();

  struct RootAgg {
    Cycles start = 0;
    Cycles end = 0;
    uint64_t tail_span = 0;  // latest-ending span: the causal chain ends here
    bool seen = false;
  };
  std::map<uint64_t, RootAgg> roots;
  for (const SpanRecord& span : spans) {
    RootAgg& agg = roots[span.root];
    if (!agg.seen || span.start < agg.start) {
      agg.start = span.start;
    }
    if (!agg.seen || span.end > agg.end) {
      agg.end = span.end;
      agg.tail_span = span.id;
    }
    agg.seen = true;
  }
  report.roots = roots.size();

  for (const auto& [root, agg] : roots) {
    Cycles latency = agg.end - agg.start;
    tracer.latency().Record(latency);
    if (latency >= report.longest_latency) {
      report.longest_latency = latency;
      report.longest_root = root;
    }
  }
  const Histogram& latency = tracer.latency();
  report.p50 = latency.Percentile(50.0);
  report.p99 = latency.Percentile(99.0);
  report.p999 = latency.Percentile(99.9);
  report.max_latency = latency.max();

  // Walk the longest request's chain from its tail span back to the root. Parent ids are
  // always smaller than child ids (spans open in causal order), so the walk terminates.
  if (report.longest_root != 0 || !roots.empty()) {
    auto it = roots.find(report.longest_root);
    if (it != roots.end()) {
      uint64_t id = it->second.tail_span;
      while (id != 0 && id <= spans.size()) {
        const SpanRecord& span = spans[id - 1];
        ++report.longest_depth;
        for (size_t b = 0; b < kCycleBucketCount; ++b) {
          report.chain_cycles[b] += span.cycles[b];
        }
        if (span.parent >= id) {
          break;  // defensive: malformed link
        }
        id = span.parent;
      }
    }
  }

  size_t best = 0;
  for (size_t b = 1; b < kCycleBucketCount; ++b) {
    if (report.chain_cycles[b] > report.chain_cycles[best]) {
      best = b;
    }
  }
  report.dominant = static_cast<CycleBucket>(best);
  return report;
}

std::string CriticalPathReport::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "critical path: %llu roots, %llu spans (%llu dropped)\n",
                static_cast<unsigned long long>(roots),
                static_cast<unsigned long long>(spans),
                static_cast<unsigned long long>(dropped));
  out += line;
  std::snprintf(line, sizeof(line),
                "  end-to-end latency: p50 %llu  p99 %llu  p999 %llu  max %llu cycles\n",
                static_cast<unsigned long long>(p50), static_cast<unsigned long long>(p99),
                static_cast<unsigned long long>(p999),
                static_cast<unsigned long long>(max_latency));
  out += line;
  std::snprintf(line, sizeof(line),
                "  longest request: root %llu, %llu cycles end-to-end, chain depth %u\n",
                static_cast<unsigned long long>(longest_root),
                static_cast<unsigned long long>(longest_latency), longest_depth);
  out += line;
  Cycles chain_total = 0;
  for (Cycles c : chain_cycles) {
    chain_total += c;
  }
  for (size_t b = 0; b < kCycleBucketCount; ++b) {
    if (chain_cycles[b] == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "    %-14s %12llu cycles (%5.1f%%)\n",
                  CycleBucketName(static_cast<CycleBucket>(b)),
                  static_cast<unsigned long long>(chain_cycles[b]),
                  chain_total == 0 ? 0.0 : 100.0 * static_cast<double>(chain_cycles[b]) /
                                               static_cast<double>(chain_total));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  dominant bucket: %s\n", CycleBucketName(dominant));
  out += line;
  return out;
}

}  // namespace imax432

#include "src/obs/metrics.h"

#include <cstdio>

#include "src/exec/kernel.h"
#include "src/filing/object_store.h"
#include "src/gc/collector.h"
#include "src/io/device.h"
#include "src/os/fault_service.h"
#include "src/os/process_manager.h"
#include "src/os/schedulers.h"
#include "src/os/system.h"

namespace imax432 {

CounterMap CountersFor(const KernelStats& stats) {
  return {{"instructions_executed", stats.instructions_executed},
          {"dispatches", stats.dispatches},
          {"time_slice_ends", stats.time_slice_ends},
          {"blocks", stats.blocks},
          {"faults_delivered", stats.faults_delivered},
          {"panics", stats.panics},
          {"processes_created", stats.processes_created},
          {"processes_terminated", stats.processes_terminated},
          {"domain_calls", stats.domain_calls},
          {"local_calls", stats.local_calls},
          {"swap_faults", stats.swap_faults},
          {"programs_verified", stats.programs_verified},
          {"programs_rejected", stats.programs_rejected},
          {"effect_summaries", stats.effect_summaries},
          {"processors_retired", stats.processors_retired},
          {"processors_stalled", stats.processors_stalled},
          {"retirement_requeues", stats.retirement_requeues}};
}

CounterMap CountersFor(const PortStats& stats) {
  return {{"ports_created", stats.ports_created},
          {"messages_enqueued", stats.messages_enqueued},
          {"messages_dequeued", stats.messages_dequeued},
          {"direct_handoffs", stats.direct_handoffs},
          {"peak_queue_depth", stats.peak_queue_depth}};
}

CounterMap CountersFor(const GcStats& stats) {
  return {{"cycles_completed", stats.cycles_completed},
          {"objects_scanned", stats.objects_scanned},
          {"slots_scanned", stats.slots_scanned},
          {"objects_reclaimed", stats.objects_reclaimed},
          {"bytes_reclaimed", stats.bytes_reclaimed},
          {"objects_finalized", stats.objects_finalized},
          {"sros_kept_live", stats.sros_kept_live},
          {"filter_send_failures", stats.filter_send_failures}};
}

CounterMap CountersFor(const MemoryStats& stats) {
  return {{"objects_created", stats.objects_created},
          {"objects_destroyed", stats.objects_destroyed},
          {"sros_created", stats.sros_created},
          {"sros_destroyed", stats.sros_destroyed},
          {"bulk_reclaimed_objects", stats.bulk_reclaimed_objects},
          {"swap_ins", stats.swap_ins},
          {"swap_outs", stats.swap_outs},
          {"device_retries", stats.device_retries},
          {"device_errors", stats.device_errors},
          {"resident_bytes", stats.resident_bytes},
          {"backing_peak_used", stats.backing_peak_used}};
}

CounterMap CountersFor(const SchedulerStats& stats) {
  return {{"admitted", stats.admitted}, {"adjusted", stats.adjusted}};
}

CounterMap CountersFor(const ProcessManagerStats& stats) {
  return {{"created", stats.created},
          {"tree_starts", stats.tree_starts},
          {"tree_stops", stats.tree_stops},
          {"transitions", stats.transitions},
          {"scheduler_notifications", stats.scheduler_notifications}};
}

CounterMap CountersFor(const FilingStats& stats) {
  return {{"filed", stats.filed},
          {"retrieved", stats.retrieved},
          {"removed", stats.removed},
          {"type_checks_failed", stats.type_checks_failed},
          {"journaled_mutations", stats.journaled_mutations},
          {"journal_rejections", stats.journal_rejections},
          {"recoveries", stats.recoveries},
          {"recovered_images", stats.recovered_images},
          {"recovered_composites", stats.recovered_composites},
          {"retrieve_cleanups", stats.retrieve_cleanups}};
}

CounterMap CountersFor(const DeviceStats& stats) {
  return {{"requests", stats.requests},
          {"bytes_read", stats.bytes_read},
          {"bytes_written", stats.bytes_written},
          {"errors", stats.errors}};
}

CounterMap CountersFor(const FaultServiceStats& stats) {
  return {{"received", stats.received},
          {"retried", stats.retried},
          {"terminated", stats.terminated},
          {"escalated", stats.escalated},
          {"budget_exhausted", stats.budget_exhausted}};
}

CounterMap CountersFor(const PatrolStats& stats) {
  return {{"sweeps_completed", stats.sweeps_completed},
          {"descriptors_scanned", stats.descriptors_scanned},
          {"objects_quarantined", stats.objects_quarantined},
          {"checksum_failures", stats.checksum_failures},
          {"invariant_failures", stats.invariant_failures},
          {"data_crc_failures", stats.data_crc_failures},
          {"shadow_refreshes", stats.shadow_refreshes}};
}

MetricsRegistry::MetricsRegistry(System* system) {
  Machine* machine = &system->machine();
  clock_ = [machine] { return machine->now(); };
  Add("kernel", [system] { return CountersFor(system->kernel().stats()); });
  Add("ports", [system] { return CountersFor(system->kernel().ports().stats()); });
  Add("gc", [system] { return CountersFor(system->gc().stats()); });
  Add("memory", [system] { return CountersFor(system->memory().stats()); });
  Add("patrol", [system] { return CountersFor(system->patrol().stats()); });
  Add("process_manager", [system] { return CountersFor(system->process_manager().stats()); });
  Add("filing", [system] {
    CounterMap counters = CountersFor(system->filing().stats());
    if (system->journal() != nullptr) {
      for (auto& [name, value] : CountersFor(system->journal()->stats())) {
        counters.emplace_back("journal_" + name, value);
      }
    }
    return counters;
  });
  Add("machine", [machine] {
    CounterMap counters;
    counters.emplace_back("bus_busy_cycles", machine->bus().busy_cycles());
    counters.emplace_back("bus_wait_cycles", machine->bus().wait_cycles());
    counters.emplace_back("bus_transactions", machine->bus().transactions());
    counters.emplace_back("bus_dropped_transfers", machine->bus().dropped_transfers());
    counters.emplace_back("bus_duplicated_transfers", machine->bus().duplicated_transfers());
    counters.emplace_back(
        "bus_utilization_permille",
        static_cast<uint64_t>(machine->bus().Utilization(machine->now()) * 1000.0));
    counters.emplace_back("trace_events_recorded", machine->trace().total_emitted());
    counters.emplace_back("trace_events_dropped", machine->trace().dropped());
    return counters;
  });
  AddHistogram("port_wait", &machine->latency().port_wait);
  AddHistogram("dispatch_latency", &machine->latency().dispatch_latency);
  AddHistogram("domain_call", &machine->latency().domain_call);
  AddHistogram("allocation", &machine->latency().allocation);
  Add("profiler", [machine] {
    CounterMap counters;
    const CycleProfiler& profiler = machine->profiler();
    CycleBucketArray totals = profiler.Totals();
    for (size_t b = 0; b < kCycleBucketCount; ++b) {
      counters.emplace_back(
          std::string("cycles_") + CycleBucketName(static_cast<CycleBucket>(b)), totals[b]);
    }
    counters.emplace_back("hot_sites", profiler.hot_sites().size());
    counters.emplace_back("samples_taken", profiler.samples_taken());
    counters.emplace_back("samples_dropped", profiler.samples_dropped());
    const SpanTracer& spans = machine->spans();
    counters.emplace_back("spans_created", spans.spans_created());
    counters.emplace_back("roots_created", spans.roots_created());
    counters.emplace_back("spans_dropped", spans.dropped());
    return counters;
  });
  AddHistogram("request_latency", &machine->spans().latency());
}

void MetricsRegistry::Add(std::string group, Provider provider) {
  providers_.emplace_back(std::move(group), std::move(provider));
}

void MetricsRegistry::AddHistogram(std::string name, const Histogram* histogram) {
  histograms_.emplace_back(std::move(name), histogram);
}

MetricsSnapshot MetricsRegistry::Collect() const {
  MetricsSnapshot snapshot;
  snapshot.now = clock_ ? clock_() : 0;
  for (const auto& [group, provider] : providers_) {
    snapshot.groups.emplace_back(group, provider());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    h.p50 = histogram->Percentile(50.0);
    h.p95 = histogram->Percentile(95.0);
    h.p99 = histogram->Percentile(99.0);
    h.p999 = histogram->Percentile(99.9);
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (histogram->bucket(i) != 0) {
        last = i + 1;
      }
    }
    for (size_t i = 0; i < last; ++i) {
      h.buckets.push_back(histogram->bucket(i));
    }
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

namespace {

void AppendJsonNumber(std::string* out, uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu", static_cast<unsigned long long>(value));
  *out += buffer;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"now_cycles\":";
  AppendJsonNumber(&out, now);
  out += ",\"counters\":{";
  bool first_group = true;
  for (const auto& [group, counters] : groups) {
    if (!first_group) out += ',';
    first_group = false;
    out += '"';
    out += group;
    out += "\":{";
    bool first = true;
    for (const auto& [name, value] : counters) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += name;
      out += "\":";
      AppendJsonNumber(&out, value);
    }
    out += '}';
  }
  out += "},\"histograms\":{";
  bool first_histogram = true;
  for (const HistogramSnapshot& h : histograms) {
    if (!first_histogram) out += ',';
    first_histogram = false;
    out += '"';
    out += h.name;
    out += "\":{\"count\":";
    AppendJsonNumber(&out, h.count);
    out += ",\"sum\":";
    AppendJsonNumber(&out, h.sum);
    out += ",\"min\":";
    AppendJsonNumber(&out, h.min);
    out += ",\"max\":";
    AppendJsonNumber(&out, h.max);
    out += ",\"p50\":";
    AppendJsonNumber(&out, h.p50);
    out += ",\"p95\":";
    AppendJsonNumber(&out, h.p95);
    out += ",\"p99\":";
    AppendJsonNumber(&out, h.p99);
    out += ",\"p999\":";
    AppendJsonNumber(&out, h.p999);
    out += ",\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) out += ',';
      AppendJsonNumber(&out, h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace imax432

// Chrome / Perfetto trace_event exporter for the kernel event trace.
//
// Renders a TraceRecorder snapshot as the Chrome trace-event JSON format (the "traceEvents"
// array), loadable in Perfetto (ui.perfetto.dev) or chrome://tracing:
//   - one thread track per processor, with a duration slice for every process residency
//     (dispatch -> preempt/block/idle) and a complete slice per domain call whose duration
//     is the calibrated switch cost (~65 us at 8 MHz);
//   - async slices for port waits (block -> unblock, one per waiting process);
//   - a dedicated GC track whose slices are the collector's whiten/mark/sweep phases;
//   - instants for sends, receives, allocations, faults, swaps, and instruction steps;
//   - kTrace log annotations on their own track.
// Timestamps are virtual microseconds (cycles / 8, the paper's 8 MHz clock).

#ifndef IMAX432_SRC_OBS_PERFETTO_H_
#define IMAX432_SRC_OBS_PERFETTO_H_

#include <string>
#include <vector>

#include "src/isa/disassembler.h"
#include "src/obs/trace.h"

namespace imax432 {

class SpanTracer;

// Exports the recorder's current contents. `symbols` (usually Kernel::symbols()) names
// ports, domains, and processes on the timeline; pass nullptr for bare indices.
std::string ExportChromeTrace(const TraceRecorder& trace, const SymbolTable* symbols = nullptr);

// Exports the span tracer's request trees (call SpanTracer::FlushOpen first): one thread
// track per process, an "X" complete slice per span carrying its id/parent/root and
// per-bucket cycle composition in args, and "s"/"f" flow events drawing the causal edge
// from each parent span to its children. One JSON event per line, so the span round-trip
// test can re-derive the tree without a JSON library.
std::string ExportSpanChromeTrace(const SpanTracer& spans,
                                  const SymbolTable* symbols = nullptr);

// Lower-level form for pre-captured snapshots.
std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const std::vector<std::pair<Cycles, std::string>>& annotations,
                              const SymbolTable* symbols = nullptr);

}  // namespace imax432

#endif  // IMAX432_SRC_OBS_PERFETTO_H_

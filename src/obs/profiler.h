// CycleProfiler: cycle-exact attribution of every virtual cycle a GDP lives through.
//
// The kernel charges every interval of a processor's timeline into one CycleBucket
// (src/arch/cycle_model.h): instruction compute, dispatch machinery, bus wait/occupancy,
// swap service, fault-recovery gaps, idle parking, and post-retirement halt. The accounting
// is gap-free by construction — each per-CPU slot tracks `accounted_until`, the boundary up
// to which cycles have been binned, and the idle/halted closers absorb whatever remains — so
// after FlushOpenIntervals the per-CPU bucket sums equal (end - epoch_start) exactly. That
// identity is the profiler's correctness oracle (bench_profiler E17 asserts it to ±0).
//
// Pure observer: the profiler never touches virtual time, never emits trace events, and
// costs one predicted branch per charge site when disabled. Daemon processes (GC, patrol,
// fault service) are tagged so their interpreter cycles rebin under kGc / kFaultRecovery;
// tags are recorded unconditionally (boot-time, three entries) so enabling the profiler
// later still attributes daemons correctly.
//
// The hot-site table samples interpreter dispatch deterministically: every Nth charged
// instruction (N = sample_period, a plain counter — no host randomness, so two identical
// runs sample identical sites) records its (instruction segment, pc) and modeled duration.

#ifndef IMAX432_SRC_OBS_PROFILER_H_
#define IMAX432_SRC_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/arch/cycle_model.h"
#include "src/arch/types.h"

namespace imax432 {

class CycleProfiler {
 public:
  struct CpuSlot {
    Cycles epoch_start = 0;      // when the GDP came online
    Cycles accounted_until = 0;  // boundary up to which cycles are binned
    bool idle_open = false;      // parked at the dispatching port
    bool halted = false;         // retired
    CycleBucketArray buckets{};
  };

  struct HotSite {
    uint64_t samples = 0;
    Cycles cycles = 0;  // summed modeled duration of the sampled instructions
  };

  static constexpr uint32_t kDefaultSamplePeriod = 64;
  static constexpr size_t kMaxHotSites = 1 << 16;

  void Enable(uint32_t sample_period = kDefaultSamplePeriod) {
    enabled_ = true;
    sample_period_ = sample_period == 0 ? 1 : sample_period;
  }
  bool enabled() const { return enabled_; }

  // Called for every GDP at AddProcessors time, enabled or not (boot-time, cheap), so the
  // epoch baseline exists whenever profiling is armed.
  void OnProcessorAdded(uint16_t cpu, Cycles now) {
    if (cpus_.size() <= cpu) {
      cpus_.resize(cpu + 1u);
    }
    cpus_[cpu].epoch_start = now;
    cpus_[cpu].accounted_until = now;
  }

  // Tags a process so its interpreter cycles rebin under `bucket` (daemons). Recorded even
  // when disabled; ResolveTag only overrides the default kInterpreter attribution.
  void TagProcess(uint32_t process, CycleBucket bucket) { tags_[process] = bucket; }

  CycleBucket ResolveTag(uint32_t process, CycleBucket bucket) const {
    if (bucket != CycleBucket::kInterpreter || tags_.empty()) {
      return bucket;
    }
    auto it = tags_.find(process);
    return it == tags_.end() ? bucket : it->second;
  }

  void ChargeCpu(uint16_t cpu, CycleBucket bucket, Cycles cycles) {
    if (!enabled_ || cycles == 0 || cpu >= cpus_.size()) {
      return;
    }
    CpuSlot& slot = cpus_[cpu];
    slot.buckets[static_cast<size_t>(bucket)] += cycles;
    slot.accounted_until += cycles;
  }

  void ChargeProcess(uint32_t process, CycleBucket bucket, Cycles cycles) {
    if (!enabled_ || cycles == 0) {
      return;
    }
    processes_[process][static_cast<size_t>(bucket)] += cycles;
  }

  void Charge(uint16_t cpu, uint32_t process, CycleBucket bucket, Cycles cycles) {
    ChargeCpu(cpu, bucket, cycles);
    ChargeProcess(process, bucket, cycles);
  }

  // Idle bracketing: OpenIdle marks the GDP parked; CloseIdle bins everything since the
  // last charged boundary as kIdle. Charging idle at close (not open) makes the account
  // gap-free even if an unmodeled interval slipped between the park and the previous charge.
  void OpenIdle(uint16_t cpu) {
    if (!enabled_ || cpu >= cpus_.size()) {
      return;
    }
    cpus_[cpu].idle_open = true;
  }

  void CloseIdle(uint16_t cpu, Cycles now) {
    if (!enabled_ || cpu >= cpus_.size()) {
      return;
    }
    CpuSlot& slot = cpus_[cpu];
    if (!slot.idle_open) {
      return;
    }
    slot.idle_open = false;
    if (now > slot.accounted_until) {
      ChargeCpu(cpu, CycleBucket::kIdle, now - slot.accounted_until);
    }
  }

  // Processor retirement: close any open idle period; everything after `now` bins as
  // kHalted at flush time.
  void OnRetired(uint16_t cpu, Cycles now) {
    if (!enabled_ || cpu >= cpus_.size()) {
      return;
    }
    CloseIdle(cpu, now);
    cpus_[cpu].halted = true;
  }

  // Deterministic 1-in-N sampling of interpreter dispatch sites.
  void SampleSite(uint64_t segment, uint32_t pc, Cycles duration) {
    if (!enabled_) {
      return;
    }
    if (++sample_counter_ % sample_period_ != 0) {
      return;
    }
    ++samples_taken_;
    uint64_t key = (segment << 32) | pc;
    auto it = hot_sites_.find(key);
    if (it == hot_sites_.end()) {
      if (hot_sites_.size() >= kMaxHotSites) {
        ++samples_dropped_;
        return;
      }
      it = hot_sites_.emplace(key, HotSite{}).first;
    }
    ++it->second.samples;
    it->second.cycles += duration;
  }

  // Closes every open interval at quiescence: parked GDPs bin the tail as kIdle, retired
  // ones as kHalted, anything else (defensive) as kIdle. After this, CpuTotal(cpu) ==
  // end - epoch_start for every GDP that came online before profiling started.
  void FlushOpenIntervals(Cycles end) {
    if (!enabled_) {
      return;
    }
    for (size_t cpu = 0; cpu < cpus_.size(); ++cpu) {
      CpuSlot& slot = cpus_[cpu];
      if (end <= slot.accounted_until) {
        continue;
      }
      Cycles remainder = end - slot.accounted_until;
      CycleBucket bucket = slot.halted ? CycleBucket::kHalted : CycleBucket::kIdle;
      slot.buckets[static_cast<size_t>(bucket)] += remainder;
      slot.accounted_until = end;
      slot.idle_open = false;
    }
  }

  Cycles CpuTotal(uint16_t cpu) const {
    if (cpu >= cpus_.size()) {
      return 0;
    }
    Cycles total = 0;
    for (Cycles c : cpus_[cpu].buckets) {
      total += c;
    }
    return total;
  }

  // Bucket totals summed over every GDP.
  CycleBucketArray Totals() const {
    CycleBucketArray totals{};
    for (const CpuSlot& slot : cpus_) {
      for (size_t b = 0; b < kCycleBucketCount; ++b) {
        totals[b] += slot.buckets[b];
      }
    }
    return totals;
  }

  const std::vector<CpuSlot>& cpus() const { return cpus_; }
  const std::map<uint32_t, CycleBucketArray>& process_buckets() const { return processes_; }
  const std::map<uint64_t, HotSite>& hot_sites() const { return hot_sites_; }
  uint64_t samples_taken() const { return samples_taken_; }
  uint64_t samples_dropped() const { return samples_dropped_; }
  uint32_t sample_period() const { return sample_period_; }

 private:
  bool enabled_ = false;
  uint32_t sample_period_ = kDefaultSamplePeriod;
  uint64_t sample_counter_ = 0;
  uint64_t samples_taken_ = 0;
  uint64_t samples_dropped_ = 0;
  std::vector<CpuSlot> cpus_;
  std::map<uint32_t, CycleBucketArray> processes_;   // process index -> per-bucket cycles
  std::map<uint32_t, CycleBucket> tags_;             // daemon attribution overrides
  std::map<uint64_t, HotSite> hot_sites_;            // (segment << 32 | pc) -> samples
};

}  // namespace imax432

#endif  // IMAX432_SRC_OBS_PROFILER_H_

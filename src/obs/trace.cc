#include "src/obs/trace.h"

namespace imax432 {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kDispatch: return "dispatch";
    case TraceEventKind::kPreempt: return "preempt";
    case TraceEventKind::kIdle: return "idle";
    case TraceEventKind::kBlockSend: return "block-send";
    case TraceEventKind::kBlockReceive: return "block-receive";
    case TraceEventKind::kUnblock: return "unblock";
    case TraceEventKind::kSend: return "send";
    case TraceEventKind::kReceive: return "receive";
    case TraceEventKind::kAllocate: return "allocate";
    case TraceEventKind::kDestroy: return "destroy";
    case TraceEventKind::kSwapOut: return "swap-out";
    case TraceEventKind::kSwapIn: return "swap-in";
    case TraceEventKind::kDomainCall: return "domain-call";
    case TraceEventKind::kDomainReturn: return "domain-return";
    case TraceEventKind::kLocalCall: return "local-call";
    case TraceEventKind::kLocalReturn: return "local-return";
    case TraceEventKind::kFault: return "fault";
    case TraceEventKind::kGcPhase: return "gc-phase";
    case TraceEventKind::kTerminate: return "terminate";
    case TraceEventKind::kInstruction: return "instruction";
    case TraceEventKind::kRaceDetected: return "race-detected";
    case TraceEventKind::kProcessorRetired: return "processor-retired";
    case TraceEventKind::kObjectQuarantined: return "object-quarantined";
    case TraceEventKind::kDeviceRetry: return "device-retry";
    case TraceEventKind::kInjection: return "injection";
    case TraceEventKind::kPatrolSweep: return "patrol-sweep";
    case TraceEventKind::kLifetimeViolation: return "lifetime-violation";
    case TraceEventKind::kInterferenceViolation: return "interference-violation";
    case TraceEventKind::kGuardViolation: return "guard-violation";
    case TraceEventKind::kFilingOp: return "filing-op";
  }
  return "unknown";
}

const char* FilingOpKindName(FilingOpKind kind) {
  switch (kind) {
    case FilingOpKind::kFile: return "file";
    case FilingOpKind::kFileComposite: return "file-composite";
    case FilingOpKind::kRetrieve: return "retrieve";
    case FilingOpKind::kRetrieveComposite: return "retrieve-composite";
    case FilingOpKind::kRemove: return "remove";
    case FilingOpKind::kJournalRetry: return "journal-retry";
    case FilingOpKind::kJournalCheckpoint: return "journal-checkpoint";
    case FilingOpKind::kJournalReplay: return "journal-replay";
  }
  return "unknown";
}

const char* GcTracePhaseName(GcTracePhase phase) {
  switch (phase) {
    case GcTracePhase::kIdle: return "idle";
    case GcTracePhase::kWhiten: return "whiten";
    case GcTracePhase::kMark: return "mark";
    case GcTracePhase::kSweep: return "sweep";
  }
  return "unknown";
}

void TraceRecorder::Enable(uint32_t capacity) {
  if (capacity == 0) capacity = 1;
  if (capacity_ != capacity) {
    ring_ = std::make_unique_for_overwrite<TraceEvent[]>(capacity);
    capacity_ = capacity;
    head_ = 0;
    size_ = 0;
    total_emitted_ = 0;
  }
  enabled_ = true;
}

void TraceRecorder::Annotate(Cycles ts, std::string text) {
  if (!enabled_) return;
  if (annotations_.size() >= kMaxAnnotations) annotations_.pop_front();
  annotations_.emplace_back(ts, std::move(text));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  if (size_ == 0) return out;
  // Oldest event sits at head_ when the ring has wrapped, at 0 otherwise.
  size_t start = (size_ == capacity_) ? head_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void TraceRecorder::Clear() {
  head_ = 0;
  size_ = 0;
  total_emitted_ = 0;
  annotations_.clear();
}

}  // namespace imax432

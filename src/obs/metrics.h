// MetricsRegistry: one Collect() over every stats() struct in the system.
//
// Each iMAX package keeps its own aggregate counters (KernelStats, PortStats, GcStats, ...).
// The registry federates them behind named provider callbacks so a tool, test, or monitor
// takes one snapshot — counters plus the machine's cycle-latency histograms — and serializes
// it to JSON without knowing the package zoo. The System-constructor overload registers
// everything the assembled system exposes; packages used à la carte (schedulers, filing,
// devices, fault service) are added by the caller through the same CountersFor overloads.

#ifndef IMAX432_SRC_OBS_METRICS_H_
#define IMAX432_SRC_OBS_METRICS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/arch/types.h"
#include "src/obs/histogram.h"

namespace imax432 {

struct KernelStats;
struct PortStats;
struct GcStats;
struct MemoryStats;
struct SchedulerStats;
struct ProcessManagerStats;
struct FilingStats;
struct JournalStats;
struct DeviceStats;
struct FaultServiceStats;
struct PatrolStats;
class System;

// Ordered name -> value pairs; a vector (not a map) so serialization order is declaration
// order, which keeps JSON diffs stable.
using CounterMap = std::vector<std::pair<std::string, uint64_t>>;

// Flatteners for every stats() struct in the tree. Shared by the registry and ad-hoc
// callers (Introspection, tools).
CounterMap CountersFor(const KernelStats& stats);
CounterMap CountersFor(const PortStats& stats);
CounterMap CountersFor(const GcStats& stats);
CounterMap CountersFor(const MemoryStats& stats);
CounterMap CountersFor(const SchedulerStats& stats);
CounterMap CountersFor(const ProcessManagerStats& stats);
CounterMap CountersFor(const FilingStats& stats);
CounterMap CountersFor(const JournalStats& stats);
CounterMap CountersFor(const DeviceStats& stats);
CounterMap CountersFor(const FaultServiceStats& stats);
CounterMap CountersFor(const PatrolStats& stats);

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  Cycles sum = 0;
  Cycles min = 0;
  Cycles max = 0;
  Cycles p50 = 0;
  Cycles p95 = 0;
  Cycles p99 = 0;
  Cycles p999 = 0;
  std::vector<uint64_t> buckets;  // trailing empty buckets trimmed
};

struct MetricsSnapshot {
  Cycles now = 0;
  std::vector<std::pair<std::string, CounterMap>> groups;
  std::vector<HistogramSnapshot> histograms;

  // {"now_cycles":N, "counters":{group:{name:value,...},...},
  //  "histograms":{name:{count,sum,min,max,p50,p95,p99,buckets:[...]},...}}
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  using Provider = std::function<CounterMap()>;

  MetricsRegistry() = default;

  // Registers every stats() source the assembled System exposes — kernel, ports, gc,
  // memory, process manager, machine (bus + trace) — plus the machine's four latency
  // histograms. The System must outlive the registry.
  explicit MetricsRegistry(System* system);

  void Add(std::string group, Provider provider);
  // The histogram must outlive the registry; it is re-read at every Collect().
  void AddHistogram(std::string name, const Histogram* histogram);
  void SetClock(std::function<Cycles()> clock) { clock_ = std::move(clock); }

  MetricsSnapshot Collect() const;

 private:
  std::function<Cycles()> clock_;
  std::vector<std::pair<std::string, Provider>> providers_;
  std::vector<std::pair<std::string, const Histogram*>> histograms_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OBS_METRICS_H_

// Critical-path extraction over completed span trees (src/obs/span.h).
//
// Post-run analysis: group spans by root request, measure each request's end-to-end latency
// (first span start to last span end), feed the latencies into the tracer's request-latency
// histogram (p50/p99/p999 federate into MetricsRegistry), and walk the longest request's
// causal chain — from its latest-ending span back through parent links to the root — to
// report the chain's per-bucket cycle composition and the dominant bucket. That dominant
// bucket is the serialized resource a scaling effort must attack first (ROADMAP item 1's
// baseline measurement).

#ifndef IMAX432_SRC_OBS_CRITICAL_PATH_H_
#define IMAX432_SRC_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <string>

#include "src/arch/cycle_model.h"
#include "src/arch/types.h"
#include "src/obs/span.h"

namespace imax432 {

struct CriticalPathReport {
  uint64_t roots = 0;            // distinct root requests observed
  uint64_t spans = 0;            // spans analyzed
  uint64_t dropped = 0;          // spans lost to the tracer's capacity cap
  Cycles p50 = 0;                // end-to-end request latency percentiles (histogram
  Cycles p99 = 0;                // upper-bound estimates, see Histogram::Percentile)
  Cycles p999 = 0;
  Cycles max_latency = 0;
  uint64_t longest_root = 0;     // root id of the longest request
  Cycles longest_latency = 0;
  uint32_t longest_depth = 0;    // spans on the longest request's critical chain
  CycleBucketArray chain_cycles{};  // per-bucket composition of that chain
  CycleBucket dominant = CycleBucket::kInterpreter;  // argmax of chain_cycles

  // Human-readable summary (imax_trace --critical-path).
  std::string ToString() const;
};

// Analyzes the tracer's spans (call SpanTracer::FlushOpen first) and records every request
// latency into tracer.latency().
CriticalPathReport AnalyzeCriticalPath(SpanTracer& tracer);

}  // namespace imax432

#endif  // IMAX432_SRC_OBS_CRITICAL_PATH_H_

// SpanTracer: Dapper-style causal request tracing over the port mechanism.
//
// A *span* is one contiguous episode of a process working on behalf of one causal root
// request. The trace context — root request id + parent span id — rides with messages:
// DoSend stamps the port-subsystem transfer sequence of each enqueue with the sender's
// current span, DoReceive resolves the stamp at dequeue and opens a child span in the
// receiver, and the direct-handoff fast path links sender to receiver without touching the
// queue. Domain calls push nested spans; process spawn inherits the parent's context for
// the child's first span; traffic injected from outside the simulation (PostMessage — boot
// code, fault delivery, tests) starts a fresh root.
//
// Per-span cycle composition reuses the profiler's CycleBucket taxonomy: ChargeCycles feeds
// each charged instruction into the executing process's current span, so a completed span
// tree carries exactly where its latency went. Critical-path extraction
// (src/obs/critical_path.h) and the Perfetto flow export (src/obs/perfetto.h) consume the
// finished trees.
//
// Pure observer: no trace events, no virtual-time effect; one predicted branch per hook
// when disabled. All ids are deterministic counters, so two identical runs produce
// identical span trees — the PR 5 replay fingerprint stays bit-identical with tracing on.

#ifndef IMAX432_SRC_OBS_SPAN_H_
#define IMAX432_SRC_OBS_SPAN_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/arch/cycle_model.h"
#include "src/arch/types.h"
#include "src/obs/histogram.h"

namespace imax432 {

struct SpanRecord {
  uint64_t id = 0;      // 1-based; 0 is "no span"
  uint64_t parent = 0;  // parent span id; 0 = root span of its request
  uint64_t root = 0;    // root request id (shared by the whole causal tree)
  uint32_t process = 0xffffffff;
  Cycles start = 0;
  Cycles end = 0;       // last activity; authoritative once `closed`
  bool closed = false;
  CycleBucketArray cycles{};
};

class SpanTracer {
 public:
  static constexpr uint32_t kDefaultCapacity = 1 << 20;

  void Enable(uint32_t capacity = kDefaultCapacity);
  bool enabled() const { return enabled_; }

  // --- Kernel hooks (all no-ops when disabled) ---

  // CreateProcess: the child's first span will parent under the spawner's current span.
  void OnSpawn(uint32_t parent_process, uint32_t child_process);
  // DoSend queue path: stamp the enqueued transfer with the sender's current span.
  void OnSend(uint32_t process, uint64_t transfer_seq, Cycles ts);
  // DoReceive dequeue path: close the receiver's current span, open a child of the stamp
  // (or a fresh root for an unstamped message).
  void OnReceive(uint32_t process, uint64_t transfer_seq, Cycles ts);
  // DoSend fast path: message handed straight to a blocked receiver.
  void OnHandoff(uint32_t sender, uint32_t receiver, Cycles ts);
  // PostMessage: traffic from outside the simulation starts a fresh root request.
  void OnExternalSend(uint64_t transfer_seq);
  void OnExternalHandoff(uint32_t receiver, Cycles ts);
  // DoReceive blocking on an empty port ends the receiver's current episode (the wait for
  // the *next* request is not part of this one).
  void OnBlockReceive(uint32_t process, Cycles ts);
  // Domain call/return nesting.
  void OnDomainCall(uint32_t process, Cycles ts);
  void OnDomainReturn(uint32_t process, Cycles ts);
  // Fault delivery / termination close the process's whole span stack.
  void OnFault(uint32_t process, Cycles ts);
  void OnTerminate(uint32_t process, Cycles ts);

  // ChargeCycles: bin `cycles` into the process's current span (lazily opening a root span
  // for processes running outside any request context), and advance its last activity.
  void ChargeCurrent(uint32_t process, CycleBucket bucket, Cycles cycles, Cycles ts);

  // Closes every still-open span (end stays at last activity). Call at quiescence before
  // critical-path analysis or export.
  void FlushOpen();

  // --- Introspection ---

  const std::vector<SpanRecord>& spans() const { return spans_; }
  uint64_t spans_created() const { return spans_created_; }
  uint64_t roots_created() const { return roots_created_; }
  uint64_t dropped() const { return dropped_; }

  // End-to-end root-request latencies, filled by AnalyzeCriticalPath; federated into
  // MetricsRegistry as "request_latency".
  Histogram& latency() { return latency_; }
  const Histogram& latency() const { return latency_; }

 private:
  struct Stamp {
    uint64_t root = 0;
    uint64_t parent = 0;  // 0: receiver opens the root span of this request
  };

  // Opens a span for `process` (0 on capacity overflow) and pushes it on the stack.
  uint64_t OpenSpan(uint32_t process, uint64_t parent, uint64_t root, Cycles ts);
  // Current span of `process`, opening a root (or spawn-inherited) span if none is active.
  uint64_t EnsureActive(uint32_t process, Cycles ts);
  void CloseTop(uint32_t process, Cycles ts);
  SpanRecord* Find(uint64_t id) {
    return id == 0 || id > spans_.size() ? nullptr : &spans_[id - 1];
  }

  bool enabled_ = false;
  uint32_t capacity_ = kDefaultCapacity;
  uint64_t next_span_ = 1;
  uint64_t next_root_ = 1;
  uint64_t spans_created_ = 0;
  uint64_t roots_created_ = 0;
  uint64_t dropped_ = 0;
  std::vector<SpanRecord> spans_;
  std::map<uint32_t, std::vector<uint64_t>> stacks_;  // process -> open span ids
  std::map<uint64_t, Stamp> inflight_;                // transfer seq -> trace context
  std::map<uint32_t, Stamp> pending_parent_;          // spawned child -> inherited context
  Histogram latency_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OBS_SPAN_H_

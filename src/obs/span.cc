#include "src/obs/span.h"

namespace imax432 {

void SpanTracer::Enable(uint32_t capacity) {
  enabled_ = true;
  capacity_ = capacity == 0 ? 1 : capacity;
  spans_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

uint64_t SpanTracer::OpenSpan(uint32_t process, uint64_t parent, uint64_t root, Cycles ts) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    stacks_[process].push_back(0);
    return 0;
  }
  SpanRecord span;
  span.id = next_span_++;
  span.parent = parent;
  span.root = root;
  span.process = process;
  span.start = ts;
  span.end = ts;
  spans_.push_back(span);
  ++spans_created_;
  stacks_[process].push_back(span.id);
  return span.id;
}

uint64_t SpanTracer::EnsureActive(uint32_t process, Cycles ts) {
  auto& stack = stacks_[process];
  if (!stack.empty()) {
    return stack.back();
  }
  // First activity outside any request context: inherit the spawn context once, else start
  // a fresh root request.
  auto pending = pending_parent_.find(process);
  if (pending != pending_parent_.end()) {
    Stamp stamp = pending->second;
    pending_parent_.erase(pending);
    return OpenSpan(process, stamp.parent, stamp.root, ts);
  }
  ++roots_created_;
  return OpenSpan(process, 0, next_root_++, ts);
}

void SpanTracer::CloseTop(uint32_t process, Cycles ts) {
  auto it = stacks_.find(process);
  if (it == stacks_.end() || it->second.empty()) {
    return;
  }
  SpanRecord* span = Find(it->second.back());
  it->second.pop_back();
  if (span != nullptr && !span->closed) {
    span->closed = true;
    if (ts > span->end) {
      span->end = ts;
    }
  }
}

void SpanTracer::OnSpawn(uint32_t parent_process, uint32_t child_process) {
  if (!enabled_) {
    return;
  }
  auto it = stacks_.find(parent_process);
  if (it == stacks_.end() || it->second.empty()) {
    return;  // spawner has no active span: the child starts its own root lazily
  }
  SpanRecord* span = Find(it->second.back());
  if (span != nullptr) {
    pending_parent_[child_process] = Stamp{span->root, span->id};
  }
}

void SpanTracer::OnSend(uint32_t process, uint64_t transfer_seq, Cycles ts) {
  if (!enabled_) {
    return;
  }
  uint64_t id = EnsureActive(process, ts);
  SpanRecord* span = Find(id);
  if (span != nullptr) {
    inflight_[transfer_seq] = Stamp{span->root, span->id};
  }
}

void SpanTracer::OnReceive(uint32_t process, uint64_t transfer_seq, Cycles ts) {
  if (!enabled_) {
    return;
  }
  CloseTop(process, ts);
  auto stamp = inflight_.find(transfer_seq);
  if (stamp != inflight_.end()) {
    Stamp s = stamp->second;
    inflight_.erase(stamp);
    if (s.parent == 0) {
      // External root request: this receive opens the root span of its tree.
      OpenSpan(process, 0, s.root, ts);
    } else {
      OpenSpan(process, s.parent, s.root, ts);
    }
    return;
  }
  // Unstamped transfer (e.g. enqueued before tracing was armed): fresh root.
  ++roots_created_;
  OpenSpan(process, 0, next_root_++, ts);
}

void SpanTracer::OnHandoff(uint32_t sender, uint32_t receiver, Cycles ts) {
  if (!enabled_) {
    return;
  }
  uint64_t sender_id = EnsureActive(sender, ts);
  SpanRecord* span = Find(sender_id);
  CloseTop(receiver, ts);  // defensive: the blocked receiver's episode already closed
  if (span != nullptr) {
    OpenSpan(receiver, span->id, span->root, ts);
  } else {
    ++roots_created_;
    OpenSpan(receiver, 0, next_root_++, ts);
  }
}

void SpanTracer::OnExternalSend(uint64_t transfer_seq) {
  if (!enabled_) {
    return;
  }
  ++roots_created_;
  inflight_[transfer_seq] = Stamp{next_root_++, 0};
}

void SpanTracer::OnExternalHandoff(uint32_t receiver, Cycles ts) {
  if (!enabled_) {
    return;
  }
  CloseTop(receiver, ts);
  ++roots_created_;
  OpenSpan(receiver, 0, next_root_++, ts);
}

void SpanTracer::OnBlockReceive(uint32_t process, Cycles ts) {
  if (!enabled_) {
    return;
  }
  CloseTop(process, ts);
}

void SpanTracer::OnDomainCall(uint32_t process, Cycles ts) {
  if (!enabled_) {
    return;
  }
  uint64_t parent_id = EnsureActive(process, ts);
  SpanRecord* parent = Find(parent_id);
  if (parent != nullptr) {
    OpenSpan(process, parent->id, parent->root, ts);
  }
}

void SpanTracer::OnDomainReturn(uint32_t process, Cycles ts) {
  if (!enabled_) {
    return;
  }
  auto it = stacks_.find(process);
  // Keep the outermost span open: a depth-1 "return" would otherwise orphan the episode
  // that a receive opened (call/return and receive/close can interleave at equal depth).
  if (it == stacks_.end() || it->second.size() < 2) {
    return;
  }
  CloseTop(process, ts);
}

void SpanTracer::OnFault(uint32_t process, Cycles ts) {
  if (!enabled_) {
    return;
  }
  auto it = stacks_.find(process);
  if (it == stacks_.end()) {
    return;
  }
  while (!it->second.empty()) {
    CloseTop(process, ts);
  }
}

void SpanTracer::OnTerminate(uint32_t process, Cycles ts) {
  if (!enabled_) {
    return;
  }
  OnFault(process, ts);
  pending_parent_.erase(process);
}

void SpanTracer::ChargeCurrent(uint32_t process, CycleBucket bucket, Cycles cycles,
                               Cycles ts) {
  if (!enabled_ || cycles == 0) {
    return;
  }
  uint64_t id = EnsureActive(process, ts);
  SpanRecord* span = Find(id);
  if (span == nullptr) {
    return;
  }
  span->cycles[static_cast<size_t>(bucket)] += cycles;
  if (ts > span->end) {
    span->end = ts;
  }
}

void SpanTracer::FlushOpen() {
  if (!enabled_) {
    return;
  }
  for (auto& [process, stack] : stacks_) {
    while (!stack.empty()) {
      SpanRecord* span = Find(stack.back());
      stack.pop_back();
      if (span != nullptr) {
        span->closed = true;  // end stays at last activity
      }
    }
  }
}

}  // namespace imax432

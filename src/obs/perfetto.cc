#include "src/obs/perfetto.h"

#include <cstdio>
#include <map>
#include <set>

#include "src/arch/cycle_model.h"
#include "src/base/result.h"
#include "src/obs/span.h"

namespace imax432 {

namespace {

// Emits one JSON object per trace event into `out`. All events share pid 0; tids are
// 1 + cpu for processor tracks, then GC / kernel / log tracks above the highest cpu.
class Exporter {
 public:
  Exporter(const std::vector<TraceEvent>& events,
           const std::vector<std::pair<Cycles, std::string>>& annotations,
           const SymbolTable* symbols)
      : events_(events), annotations_(annotations), symbols_(symbols) {}

  std::string Run();

 private:
  static std::string Escape(const std::string& text);
  static std::string Ts(Cycles cycles);

  std::string NameFor(const char* prefix, uint32_t index) const;

  void Append(const std::string& event);
  void Metadata(uint32_t tid, const std::string& name);
  void OpenSlice(uint32_t tid, Cycles ts, const std::string& name, const std::string& args);
  void CloseSlice(uint32_t tid, Cycles ts);
  void Instant(uint32_t tid, Cycles ts, const std::string& name, const std::string& args);

  void HandleEvent(const TraceEvent& event);

  const std::vector<TraceEvent>& events_;
  const std::vector<std::pair<Cycles, std::string>>& annotations_;
  const SymbolTable* symbols_;

  uint32_t gc_tid_ = 0;
  uint32_t kernel_tid_ = 0;
  uint32_t log_tid_ = 0;
  std::map<uint32_t, bool> cpu_slice_open_;   // cpu tid -> B slice currently open
  bool gc_slice_open_ = false;
  std::set<uint32_t> open_port_waits_;        // process indices with an open async slice
  std::string out_;
  bool first_ = true;
};

std::string Exporter::Escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

std::string Exporter::Ts(Cycles cycles) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", cycles::ToMicroseconds(cycles));
  return buffer;
}

std::string Exporter::NameFor(const char* prefix, uint32_t index) const {
  if (symbols_ != nullptr) {
    const std::string* name = symbols_->Find(index);
    if (name != nullptr) {
      return Escape(*name);
    }
  }
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%s %u", prefix, index);
  return buffer;
}

void Exporter::Append(const std::string& event) {
  if (!first_) out_ += ",\n";
  first_ = false;
  out_ += event;
}

void Exporter::Metadata(uint32_t tid, const std::string& name) {
  Append("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + name + "\"}}");
}

void Exporter::OpenSlice(uint32_t tid, Cycles ts, const std::string& name,
                         const std::string& args) {
  Append("{\"ph\":\"B\",\"pid\":0,\"tid\":" + std::to_string(tid) + ",\"ts\":" + Ts(ts) +
         ",\"name\":\"" + name + "\"" + (args.empty() ? "" : ",\"args\":" + args) + "}");
}

void Exporter::CloseSlice(uint32_t tid, Cycles ts) {
  Append("{\"ph\":\"E\",\"pid\":0,\"tid\":" + std::to_string(tid) + ",\"ts\":" + Ts(ts) + "}");
}

void Exporter::Instant(uint32_t tid, Cycles ts, const std::string& name,
                       const std::string& args) {
  Append("{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" + std::to_string(tid) +
         ",\"ts\":" + Ts(ts) + ",\"name\":\"" + name + "\"" +
         (args.empty() ? "" : ",\"args\":" + args) + "}");
}

void Exporter::HandleEvent(const TraceEvent& event) {
  uint32_t tid = event.cpu == kTraceNoProcessor ? kernel_tid_ : event.cpu + 1u;
  switch (event.kind) {
    case TraceEventKind::kDispatch: {
      if (cpu_slice_open_[tid]) CloseSlice(tid, event.ts);
      OpenSlice(tid, event.ts, NameFor("process", event.process),
                "{\"process\":" + std::to_string(event.process) +
                    ",\"dispatch_latency_cycles\":" + std::to_string(event.a) + "}");
      cpu_slice_open_[tid] = true;
      break;
    }
    case TraceEventKind::kPreempt:
    case TraceEventKind::kIdle: {
      if (cpu_slice_open_[tid]) {
        CloseSlice(tid, event.ts);
        cpu_slice_open_[tid] = false;
      }
      if (event.kind == TraceEventKind::kPreempt) {
        Instant(tid, event.ts, "preempt", "{\"process\":" + std::to_string(event.process) + "}");
      }
      break;
    }
    case TraceEventKind::kDomainCall: {
      // The calibrated switch cost rides in payload b: ~520 cycles = ~65 us.
      char dur[32];
      std::snprintf(dur, sizeof(dur), "%.3f", cycles::ToMicroseconds(event.b));
      Append("{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(tid) +
             ",\"ts\":" + Ts(event.ts) + ",\"dur\":" + dur +
             ",\"cat\":\"call\",\"name\":\"domain call\",\"args\":{\"domain\":\"" +
             NameFor("domain", event.c) + "\",\"callee_context\":" + std::to_string(event.a) +
             "}}");
      break;
    }
    case TraceEventKind::kBlockSend:
    case TraceEventKind::kBlockReceive: {
      const char* what = event.kind == TraceEventKind::kBlockSend ? "send" : "receive";
      Append("{\"ph\":\"b\",\"cat\":\"port-wait\",\"id\":" + std::to_string(event.process) +
             ",\"pid\":0,\"tid\":" + std::to_string(tid) + ",\"ts\":" + Ts(event.ts) +
             ",\"name\":\"wait " + NameFor("port", event.a) + "\",\"args\":{\"op\":\"" + what +
             "\",\"queue_depth\":" + std::to_string(event.b) + "}}");
      open_port_waits_.insert(event.process);
      break;
    }
    case TraceEventKind::kUnblock: {
      if (open_port_waits_.erase(event.process) != 0) {
        Append("{\"ph\":\"e\",\"cat\":\"port-wait\",\"id\":" + std::to_string(event.process) +
               ",\"pid\":0,\"tid\":" + std::to_string(kernel_tid_) + ",\"ts\":" + Ts(event.ts) +
               ",\"name\":\"wait " + NameFor("port", event.a) + "\"}");
      }
      Instant(kernel_tid_, event.ts, "unblock",
              "{\"process\":" + std::to_string(event.process) +
                  ",\"waited_cycles\":" + std::to_string(event.b) + "}");
      break;
    }
    case TraceEventKind::kGcPhase: {
      if (gc_slice_open_) {
        CloseSlice(gc_tid_, event.ts);
        gc_slice_open_ = false;
      }
      auto phase = static_cast<GcTracePhase>(event.a);
      if (phase != GcTracePhase::kIdle) {
        OpenSlice(gc_tid_, event.ts, std::string("gc ") + GcTracePhaseName(phase), "");
        gc_slice_open_ = true;
      }
      break;
    }
    case TraceEventKind::kSend:
    case TraceEventKind::kReceive: {
      Instant(tid, event.ts, TraceEventKindName(event.kind),
              "{\"port\":\"" + NameFor("port", event.a) +
                  "\",\"queue_depth\":" + std::to_string(event.b) + "}");
      break;
    }
    case TraceEventKind::kAllocate:
    case TraceEventKind::kDestroy:
    case TraceEventKind::kSwapOut:
    case TraceEventKind::kSwapIn: {
      Instant(tid, event.ts, TraceEventKindName(event.kind),
              "{\"object\":" + std::to_string(event.a) +
                  ",\"bytes\":" + std::to_string(event.b) + "}");
      break;
    }
    case TraceEventKind::kFault: {
      Instant(tid, event.ts, std::string("fault: ") + FaultName(static_cast<Fault>(event.a)),
              "{\"process\":" + std::to_string(event.process) +
                  ",\"delivered\":" + std::to_string(event.b) + "}");
      break;
    }
    case TraceEventKind::kTerminate: {
      Instant(tid, event.ts, "terminate",
              "{\"process\":" + std::to_string(event.process) +
                  ",\"faulted\":" + std::to_string(event.a) + "}");
      break;
    }
    case TraceEventKind::kDomainReturn:
    case TraceEventKind::kLocalReturn:
    case TraceEventKind::kLocalCall: {
      Instant(tid, event.ts, TraceEventKindName(event.kind),
              "{\"context\":" + std::to_string(event.a) + "}");
      break;
    }
    case TraceEventKind::kInstruction: {
      Instant(tid, event.ts, "step",
              "{\"pc\":" + std::to_string(event.a) +
                  ",\"opcode\":" + std::to_string(event.b) + "}");
      break;
    }
    case TraceEventKind::kRaceDetected: {
      Instant(tid, event.ts, "race-detected",
              "{\"process\":" + std::to_string(event.process) +
                  ",\"object\":" + std::to_string(event.a) +
                  ",\"pc\":" + std::to_string(event.b) +
                  ",\"other\":" + std::to_string(event.c) + "}");
      break;
    }
    case TraceEventKind::kProcessorRetired: {
      // A retired GDP's execution slice ends forever; close it before the marker.
      if (cpu_slice_open_[tid]) {
        CloseSlice(tid, event.ts);
        cpu_slice_open_[tid] = false;
      }
      Instant(tid, event.ts, "processor-retired",
              "{\"requeued_process\":" + std::to_string(event.process) +
                  ",\"survivors\":" + std::to_string(event.a) + "}");
      break;
    }
    case TraceEventKind::kObjectQuarantined: {
      Instant(tid, event.ts, "object-quarantined",
              "{\"object\":" + std::to_string(event.a) +
                  ",\"check\":" + std::to_string(event.b) + "}");
      break;
    }
    case TraceEventKind::kDeviceRetry: {
      Instant(tid, event.ts, "device-retry",
              "{\"object\":" + std::to_string(event.a) +
                  ",\"attempt\":" + std::to_string(event.b) +
                  ",\"backoff_cycles\":" + std::to_string(event.c) + "}");
      break;
    }
    case TraceEventKind::kInjection: {
      Instant(tid, event.ts, "injection",
              "{\"kind\":" + std::to_string(event.a) +
                  ",\"target\":" + std::to_string(event.b) +
                  ",\"arg\":" + std::to_string(event.c) + "}");
      break;
    }
    case TraceEventKind::kPatrolSweep: {
      Instant(tid, event.ts, "patrol-sweep",
              "{\"scanned\":" + std::to_string(event.a) +
                  ",\"quarantined\":" + std::to_string(event.b) + "}");
      break;
    }
    case TraceEventKind::kLifetimeViolation: {
      Instant(tid, event.ts, "lifetime-violation",
              "{\"object\":" + std::to_string(event.a) +
                  ",\"holder\":" + std::to_string(event.b) +
                  ",\"alloc_pc\":" + std::to_string(event.c) + "}");
      break;
    }
    case TraceEventKind::kInterferenceViolation: {
      Instant(tid, event.ts, "interference-violation",
              "{\"object\":" + std::to_string(event.a) +
                  ",\"kind\":" + std::to_string(event.b) +
                  ",\"fill_epoch\":" + std::to_string(event.c) + "}");
      break;
    }
    case TraceEventKind::kGuardViolation: {
      Instant(tid, event.ts, "guard-violation",
              "{\"object\":" + std::to_string(event.a) +
                  ",\"kind\":" + std::to_string(event.b) +
                  ",\"pc\":" + std::to_string(event.c) + "}");
      break;
    }
    case TraceEventKind::kFilingOp: {
      Instant(tid, event.ts,
              std::string("filing-") +
                  FilingOpKindName(static_cast<FilingOpKind>(event.a)),
              "{\"op\":" + std::to_string(event.a) +
                  ",\"size\":" + std::to_string(event.b) +
                  ",\"name_hash\":" + std::to_string(event.c) + "}");
      break;
    }
  }
}

std::string Exporter::Run() {
  uint32_t max_cpu = 0;
  for (const TraceEvent& event : events_) {
    if (event.cpu != kTraceNoProcessor && event.cpu > max_cpu) {
      max_cpu = event.cpu;
    }
  }
  gc_tid_ = max_cpu + 2;
  kernel_tid_ = max_cpu + 3;
  log_tid_ = max_cpu + 4;

  out_ = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  Append("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"iMAX-432\"}}");
  for (uint32_t cpu = 0; cpu <= max_cpu; ++cpu) {
    Metadata(cpu + 1, "GDP " + std::to_string(cpu));
  }
  Metadata(gc_tid_, "GC");
  Metadata(kernel_tid_, "kernel");
  if (!annotations_.empty()) {
    Metadata(log_tid_, "log");
  }

  Cycles last_ts = 0;
  for (const TraceEvent& event : events_) {
    HandleEvent(event);
    if (event.ts > last_ts) last_ts = event.ts;
  }
  for (const auto& [ts, message] : annotations_) {
    Instant(log_tid_, ts, Escape(message), "");
    if (ts > last_ts) last_ts = ts;
  }

  // Close whatever is still running so every slice has an end.
  for (auto& [tid, open] : cpu_slice_open_) {
    if (open) CloseSlice(tid, last_ts);
  }
  if (gc_slice_open_) CloseSlice(gc_tid_, last_ts);

  out_ += "\n]}\n";
  return out_;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const std::vector<std::pair<Cycles, std::string>>& annotations,
                              const SymbolTable* symbols) {
  return Exporter(events, annotations, symbols).Run();
}

std::string ExportChromeTrace(const TraceRecorder& trace, const SymbolTable* symbols) {
  std::vector<std::pair<Cycles, std::string>> annotations(trace.annotations().begin(),
                                                          trace.annotations().end());
  return ExportChromeTrace(trace.Snapshot(), annotations, symbols);
}

std::string ExportSpanChromeTrace(const SpanTracer& spans, const SymbolTable* symbols) {
  auto ts_of = [](Cycles cycles) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f", cycles::ToMicroseconds(cycles));
    return std::string(buffer);
  };
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto append = [&out, &first](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };
  append("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"iMAX-432 spans\"}}");

  // One track per iMAX process, in order of first appearance.
  std::map<uint32_t, uint32_t> tids;
  for (const SpanRecord& span : spans.spans()) {
    if (tids.find(span.process) != tids.end()) {
      continue;
    }
    uint32_t tid = static_cast<uint32_t>(tids.size()) + 1;
    tids[span.process] = tid;
    std::string name = "process " + std::to_string(span.process);
    if (symbols != nullptr) {
      const std::string* symbol = symbols->Find(span.process);
      if (symbol != nullptr) name = *symbol;
    }
    append("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + name + "\"}}");
  }

  const std::vector<SpanRecord>& records = spans.spans();
  for (const SpanRecord& span : records) {
    uint32_t tid = tids[span.process];
    std::string name = span.parent == 0 ? "request " + std::to_string(span.root)
                                        : "span " + std::to_string(span.id);
    std::string args = "{\"span\":" + std::to_string(span.id) +
                       ",\"parent\":" + std::to_string(span.parent) +
                       ",\"root\":" + std::to_string(span.root) +
                       ",\"process\":" + std::to_string(span.process);
    for (size_t b = 0; b < kCycleBucketCount; ++b) {
      if (span.cycles[b] == 0) continue;
      args += ",\"cycles_";
      args += CycleBucketName(static_cast<CycleBucket>(b));
      args += "\":" + std::to_string(span.cycles[b]);
    }
    args += '}';
    append("{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"ts\":" + ts_of(span.start) + ",\"dur\":" + ts_of(span.end - span.start) +
           ",\"cat\":\"span\",\"name\":\"" + name + "\",\"args\":" + args + "}");

    // Causal edge from the parent span: a flow-start pinned inside the parent slice and a
    // flow-finish at this span's beginning. Flow id = child span id (unique per edge).
    if (span.parent != 0 && span.parent <= records.size()) {
      const SpanRecord& parent = records[span.parent - 1];
      Cycles anchor = span.start;
      if (anchor > parent.end) anchor = parent.end;
      if (anchor < parent.start) anchor = parent.start;
      append("{\"ph\":\"s\",\"cat\":\"span-flow\",\"id\":" + std::to_string(span.id) +
             ",\"pid\":0,\"tid\":" + std::to_string(tids[parent.process]) +
             ",\"ts\":" + ts_of(anchor) + ",\"name\":\"causal\"}");
      append("{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"span-flow\",\"id\":" +
             std::to_string(span.id) + ",\"pid\":0,\"tid\":" + std::to_string(tid) +
             ",\"ts\":" + ts_of(span.start) + ",\"name\":\"causal\"}");
    }
  }

  out += "\n]}\n";
  return out;
}

}  // namespace imax432

// Per-processor AD-translation cache: the Phase 3 consumer of the interference analysis.
//
// Every object touch in the interpreter funnels through ObjectTable::Resolve — a capacity
// check plus allocated/generation validation per access, roughly a dozen times per
// instruction once context fields, registers, and cycle accounting are counted. On the real
// 432 each processor kept the hot descriptors in an on-chip cache; this class is that
// structure for the emulator, a small direct-mapped array bound into the AddressingUnit by
// Kernel::ProcessorStep when SystemConfig::xlat_cache is set.
//
// Entries come in two tiers (DESIGN.md §6.4):
//
//   epoch-keyed — the default. A hit still revalidates the descriptor's `allocated` bit and
//       generation against the presented AD (exactly the checks ObjectTable::Resolve
//       performs), so a freed or reallocated slot can never serve stale; what the hit skips
//       is the call, the capacity test, and the Result plumbing. Instruction-fetch payload
//       hits additionally revalidate the segment type, the descriptor's `data_epoch`, and
//       the ProgramStore version before bypassing the store's map lookup.
//   certified — armed only for objects the interference analysis certified immutable (see
//       Kernel::EnsureInterferenceCertificates for the exact consumption rule). A certified
//       hit performs no descriptor revalidation at all: the analysis proved no summarized
//       program writes or destroys the object, and every kernel path that could retract the
//       proof (program registration/removal, analysis forgetting) clears these caches
//       wholesale. The pure-observer interference auditor cross-checks every certified hit
//       at runtime via the hook below.
//
// Downstream checks are NOT cached: rights, bounds, quarantine, and swap state are examined
// per access by the AddressingUnit on the descriptor a hit returns, and `data_base` is
// re-read on every data access (so swap-in relocation needs no invalidation). The cache
// holds host-side state only and charges no cycles — virtual time is bit-identical with the
// cache on or off, preserving the PR 5 replay-fingerprint contract.

#ifndef IMAX432_SRC_ARCH_XLAT_CACHE_H_
#define IMAX432_SRC_ARCH_XLAT_CACHE_H_

#include <array>
#include <cstdint>
#include <set>

#include "src/arch/types.h"

namespace imax432 {

struct ObjectDescriptor;

struct XlatEntry {
  ObjectIndex index = kInvalidObjectIndex;
  uint32_t generation = 0;
  // Descriptor slot pointer. Stable for the table's lifetime (slots are never reallocated);
  // liveness is revalidated per hit on the epoch-keyed tier.
  ObjectDescriptor* descriptor = nullptr;
  // Decoded-program payload for instruction segments (kernel-owned const Program*, typed
  // void to keep this arch header free of isa dependencies). Null for entries filled by the
  // AddressingUnit resolve path.
  const void* program = nullptr;
  uint64_t program_version = 0;  // ProgramStore::version() at program fill
  uint32_t data_epoch = 0;       // descriptor->data_epoch at fill (immutability witness)
  uint8_t type = 0;              // SystemType at fill, for the auditor's retype check
  bool certified = false;
};

struct XlatCacheStats {
  uint64_t hits = 0;                    // epoch-keyed resolve hits (AddressingUnit path)
  uint64_t certified_hits = 0;          // certified resolve hits (no revalidation)
  uint64_t misses = 0;                  // probes that fell back to the authoritative Resolve
  uint64_t program_hits = 0;            // epoch-keyed instruction-fetch payload hits
  uint64_t certified_program_hits = 0;  // certified instruction-fetch payload hits
  uint64_t program_misses = 0;
};

class XlatCache {
 public:
  static constexpr uint32_t kEntries = 64;  // direct-mapped, power of two

  // Fires on every certified hit when installed (the interference auditor's tap). Host-side
  // only; must not consume virtual time.
  using CertifiedHitHook = void (*)(void* user, const XlatEntry& entry);

  XlatEntry& Probe(ObjectIndex index) { return entries_[index & (kEntries - 1)]; }

  void Clear() {
    entries_.fill(XlatEntry{});
  }

  // Certified-object set, owned by the kernel and updated in place; the kernel clears the
  // cache whenever the set's contents change, so `certified` bits never outlive the proof.
  void SetCertifiedSet(const std::set<ObjectIndex>* certified) { certified_ = certified; }
  bool IsCertified(ObjectIndex index) const {
    return certified_ != nullptr && certified_->count(index) != 0;
  }

  void SetCertifiedHitHook(CertifiedHitHook hook, void* user) {
    hook_ = hook;
    hook_user_ = user;
  }
  void NotifyCertifiedHit(const XlatEntry& entry) const {
    if (hook_ != nullptr) hook_(hook_user_, entry);
  }

  XlatCacheStats& stats() { return stats_; }
  const XlatCacheStats& stats() const { return stats_; }

 private:
  std::array<XlatEntry, kEntries> entries_{};
  const std::set<ObjectIndex>* certified_ = nullptr;
  CertifiedHitHook hook_ = nullptr;
  void* hook_user_ = nullptr;
  XlatCacheStats stats_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_ARCH_XLAT_CACHE_H_

// Architectural value types and limits of the emulated iAPX 432.
//
// Terminology follows the 432 Architecture Reference Manual as summarized in the paper:
//   - An *object* is a segment with two parts: a data part (raw bytes, <= 64 KB) and an
//     access part (a list of access descriptors, <= 64 KB at 4 bytes per AD).
//   - An *object descriptor* is the one table entry describing a given segment.
//   - An *access descriptor* (AD) is a capability naming an object descriptor plus rights.
//   - Every object carries a *level number*: 0 = global (lives forever, reclaimed only by
//     GC), higher numbers = progressively shorter lifetimes tied to activation depth.

#ifndef IMAX432_SRC_ARCH_TYPES_H_
#define IMAX432_SRC_ARCH_TYPES_H_

#include <cstdint>

namespace imax432 {

// Ada-derived scalar names used throughout the iMAX interface.
using Ordinal = uint32_t;        // Ada "ordinal"
using ShortOrdinal = uint16_t;   // Ada "short_ordinal"

// Index into the global object descriptor table.
using ObjectIndex = uint32_t;
inline constexpr ObjectIndex kInvalidObjectIndex = 0xffffffffu;

// Lifetime level number. 0 is global; each nested activation / local SRO adds one.
using Level = uint16_t;
inline constexpr Level kGlobalLevel = 0;

// Physical byte address in the flat system memory.
using PhysAddr = uint32_t;

// Virtual time, measured in processor clock cycles (8 MHz => 8 cycles per microsecond).
using Cycles = uint64_t;

// Architectural limits from the paper: a segment is 1 byte .. 128 KB, each of the two parts
// at most 64 KB. An access descriptor occupies 4 architectural bytes, so the access part
// holds at most 16 K ADs.
inline constexpr uint32_t kMaxDataPartBytes = 64 * 1024;
inline constexpr uint32_t kAdArchBytes = 4;
inline constexpr uint32_t kMaxAccessPartSlots = (64 * 1024) / kAdArchBytes;

// Hardware-recognized system types. "The simplest type of object is generic for which no
// additional semantics exist. Other types of objects are recognized by the processor and are
// used to control its operation."
enum class SystemType : uint8_t {
  kGeneric = 0,        // no hardware semantics; user data or user-typed objects
  kProcessor,          // one per GDP; names its dispatching port and current process
  kProcess,            // schedulable activity
  kStorageResource,    // SRO: describes free memory, allocates segments at a fixed level
  kPort,               // interprocess communication queue
  kDomain,             // package instance: groups subprogram entries + package state
  kContext,            // activation record of an invoked subprogram
  kInstructionSegment, // code: a program executed by contexts
  kTypeDefinition,     // TDO: defines a user type, optionally with a destruction filter
};

const char* SystemTypeName(SystemType type);

// Number of SystemType values (for tables indexed by type).
inline constexpr int kNumSystemTypes = 9;

}  // namespace imax432

#endif  // IMAX432_SRC_ARCH_TYPES_H_

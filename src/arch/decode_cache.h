// Per-processor decode cache: the Phase 3 consumer of the guard-dominance analysis.
//
// Even with the AD-translation cache armed, every instruction step re-fetches the Program
// through the translation tier and re-reads the encoded instruction. ROADMAP item 1 names
// the fix: flatten the hot path with a decode cache keyed by instruction segment + epoch.
// This class is that structure — a small direct-mapped array of pre-decoded segments, one
// per processor, consulted by Kernel::ProcessorStep when SystemConfig::decode_cache is set.
//
// Every entry is epoch-keyed: a hit revalidates the descriptor's `allocated` bit,
// generation, segment type, `data_epoch`, and the ProgramStore version before serving, so a
// freed, reallocated, retyped, or in-place-mutated segment can never serve stale decode
// (the same revalidation set as the xlat cache's instruction-fetch payload tier). What a
// hit skips is the store's map lookup plus the per-instruction re-decode.
//
// Certification is carried per *instruction*, not per entry: each DecodedInst holds the
// elision mask its ElisionCertificate proved (analysis/guards/guards.h), folded in at fill
// time by Kernel::FetchDecoded. Certified instructions execute the check-elided
// addressing-unit fast path; everything else keeps the full layered checks. Every kernel
// path that could retract a certificate (program registration/removal, analysis
// forgetting, spawn) clears these caches wholesale via
// Kernel::InvalidateTranslationCaches.
//
// The cache holds host-side state only and charges no cycles — virtual time is
// bit-identical with the cache on or off, preserving the PR 5 replay-fingerprint contract.
//
// Layering note: unlike xlat_cache.h this header depends on isa/program.h — a decoded
// superblock is a vector of Instructions, so the dependency is structural (isa depends only
// on arch/access_descriptor.h; there is no cycle).

#ifndef IMAX432_SRC_ARCH_DECODE_CACHE_H_
#define IMAX432_SRC_ARCH_DECODE_CACHE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/arch/types.h"
#include "src/isa/program.h"

namespace imax432 {

struct ObjectDescriptor;

// One pre-decoded instruction plus its certified check-elision mask (guard_check bits;
// 0 = full layered checks).
struct DecodedInst {
  Instruction inst;
  uint8_t elide = 0;
};

struct DecodedSegment {
  ObjectIndex segment = kInvalidObjectIndex;
  uint32_t generation = 0;
  // Descriptor slot pointer. Stable for the table's lifetime (slots are never reallocated);
  // liveness/type/epoch are revalidated per hit.
  ObjectDescriptor* descriptor = nullptr;
  const Program* program = nullptr;   // decode source (ProgramStore-owned)
  uint64_t store_version = 0;         // ProgramStore::version() at fill
  uint32_t data_epoch = 0;            // descriptor->data_epoch at fill
  std::vector<DecodedInst> code;      // one slot per program pc

  bool valid() const { return program != nullptr; }
};

struct DecodeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;  // probes that fell back to resolve + store lookup + re-decode
};

class DecodeCache {
 public:
  static constexpr uint32_t kEntries = 8;  // direct-mapped, power of two

  DecodedSegment& Probe(ObjectIndex segment) { return entries_[segment & (kEntries - 1)]; }

  void Clear() {
    for (DecodedSegment& entry : entries_) entry = DecodedSegment{};
  }

  DecodeCacheStats& stats() { return stats_; }
  const DecodeCacheStats& stats() const { return stats_; }

 private:
  std::array<DecodedSegment, kEntries> entries_;
  DecodeCacheStats stats_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_ARCH_DECODE_CACHE_H_

#include "src/arch/types.h"

namespace imax432 {

const char* SystemTypeName(SystemType type) {
  switch (type) {
    case SystemType::kGeneric:
      return "generic";
    case SystemType::kProcessor:
      return "processor";
    case SystemType::kProcess:
      return "process";
    case SystemType::kStorageResource:
      return "storage_resource";
    case SystemType::kPort:
      return "port";
    case SystemType::kDomain:
      return "domain";
    case SystemType::kContext:
      return "context";
    case SystemType::kInstructionSegment:
      return "instruction_segment";
    case SystemType::kTypeDefinition:
      return "type_definition";
  }
  return "?";
}

}  // namespace imax432

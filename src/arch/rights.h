// Access rights carried in every access descriptor.
//
// "Each access descriptor (there may be many) for a given object contains rights flags that
// control the access available via that access descriptor." The 432 distinguished generic
// read/write rights on the segment parts from three per-type rights interpreted by the type's
// manager (hardware for system types, type managers for user types). Rights can only ever be
// *removed* when copying an AD; amplification is a privileged type-manager operation.

#ifndef IMAX432_SRC_ARCH_RIGHTS_H_
#define IMAX432_SRC_ARCH_RIGHTS_H_

#include <cstdint>

namespace imax432 {

using RightsMask = uint8_t;

namespace rights {

inline constexpr RightsMask kNone = 0;
inline constexpr RightsMask kRead = 1u << 0;   // read the data part
inline constexpr RightsMask kWrite = 1u << 1;  // write the data part / access part slots
inline constexpr RightsMask kDelete = 1u << 2; // explicitly destroy the object
inline constexpr RightsMask kType1 = 1u << 3;  // type-specific right 1
inline constexpr RightsMask kType2 = 1u << 4;  // type-specific right 2
inline constexpr RightsMask kType3 = 1u << 5;  // type-specific right 3

inline constexpr RightsMask kAll = kRead | kWrite | kDelete | kType1 | kType2 | kType3;

// Conventional interpretations of the type rights for the hardware types, mirroring the 432
// convention that the meaning of T1..T3 is fixed per type.
inline constexpr RightsMask kPortSend = kType1;       // may Send to the port
inline constexpr RightsMask kPortReceive = kType2;    // may Receive from the port
inline constexpr RightsMask kSroAllocate = kType1;    // may allocate objects from the SRO
inline constexpr RightsMask kSroDestroy = kType2;     // may destroy the SRO (bulk reclaim)
inline constexpr RightsMask kProcessControl = kType1; // may start/stop the process
inline constexpr RightsMask kDomainCall = kType1;     // may call into the domain
inline constexpr RightsMask kTdoCreate = kType1;      // may create objects of the type
inline constexpr RightsMask kTdoAmplify = kType2;     // may amplify rights on the type

inline constexpr bool Has(RightsMask mask, RightsMask required) {
  return (mask & required) == required;
}

// Copying an AD may only restrict rights, never add them.
inline constexpr RightsMask Restrict(RightsMask mask, RightsMask keep) { return mask & keep; }

}  // namespace rights

}  // namespace imax432

#endif  // IMAX432_SRC_ARCH_RIGHTS_H_

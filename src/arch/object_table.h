// ObjectTable: the single global object descriptor table.
//
// Every AD in the system names an entry here. The table hands out descriptor slots from a
// free list, stamps generations on reuse, and is the authority for resolving an AD to its
// descriptor (with null / liveness / generation checks).

#ifndef IMAX432_SRC_ARCH_OBJECT_TABLE_H_
#define IMAX432_SRC_ARCH_OBJECT_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/arch/access_descriptor.h"
#include "src/arch/object_descriptor.h"
#include "src/arch/types.h"
#include "src/base/result.h"

namespace imax432 {

class ObjectTable {
 public:
  // `capacity` is the maximum number of simultaneously live objects.
  explicit ObjectTable(uint32_t capacity);

  ObjectTable(const ObjectTable&) = delete;
  ObjectTable& operator=(const ObjectTable&) = delete;

  // Claims a free descriptor slot and initializes it. Returns kObjectTableFull when no slot
  // is free. The caller (an SRO) has already placed the data part.
  Result<ObjectIndex> Allocate(SystemType type, Level level, PhysAddr data_base,
                               uint32_t data_length, uint32_t access_slots,
                               ObjectIndex origin_sro, uint32_t storage_claim);

  // Releases a descriptor slot. The slot's generation advances so outstanding ADs die.
  Status Free(ObjectIndex index);

  // Resolves an AD to its live descriptor. Faults: kNullAccess, kInvalidAccess (bad index,
  // unallocated slot, or generation mismatch).
  Result<ObjectDescriptor*> Resolve(const AccessDescriptor& ad);
  Result<const ObjectDescriptor*> Resolve(const AccessDescriptor& ad) const;

  // Mints an AD for a live descriptor with the given rights. This is a privileged operation:
  // only object-creating services (SROs, type managers) and the GC's destruction-filter path
  // ("The garbage collector will manufacture an access descriptor for such objects") call it.
  Result<AccessDescriptor> MintAd(ObjectIndex index, RightsMask ad_rights) const;

  // Unchecked descriptor access by index for iteration (GC, diagnostics). Index must be
  // < capacity(); the slot may be unallocated.
  ObjectDescriptor& At(ObjectIndex index);
  const ObjectDescriptor& At(ObjectIndex index) const;

  uint32_t capacity() const { return static_cast<uint32_t>(slots_.size()); }
  uint32_t live_count() const { return live_count_; }
  uint32_t free_count() const { return capacity() - live_count_; }

  // Lifetime-rule helper: true when an AD for `referenced` may be stored into `container`
  // ("The hardware ensures that an access for an object may never be stored into an object
  // with a lower (more global) level number.")
  static bool StorePermitted(const ObjectDescriptor& container,
                             const ObjectDescriptor& referenced) {
    return container.level >= referenced.level;
  }

  // Checksum over the descriptor's identity fields (type, level, data_length, access slot
  // count, origin SRO). Mutable operational state (data_base, swap state, GC color,
  // generation) is deliberately excluded so the patrol scan never flags normal operation.
  static uint32_t DescriptorChecksum(const ObjectDescriptor& descriptor);

  // Recomputes and stores the identity checksum for a live slot. Allocate seals every new
  // descriptor; callers that legitimately mutate identity fields afterwards (e.g. the kernel
  // overriding a context's level) must re-seal.
  void Seal(ObjectIndex index);

 private:
  std::vector<ObjectDescriptor> slots_;
  std::vector<ObjectIndex> free_list_;
  uint32_t live_count_ = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_ARCH_OBJECT_TABLE_H_

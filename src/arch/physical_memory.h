// PhysicalMemory: the flat, shared system memory all GDPs see.
//
// "iMAX is fundamentally a multiprocessor operating system, providing a tightly coupled
// environment in which all processors see a single homogeneous memory." Addressing here is
// purely physical; segment-relative addressing, bounds and rights live in AddressingUnit.

#ifndef IMAX432_SRC_ARCH_PHYSICAL_MEMORY_H_
#define IMAX432_SRC_ARCH_PHYSICAL_MEMORY_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/arch/types.h"
#include "src/base/result.h"

namespace imax432 {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(uint32_t size_bytes) : bytes_(size_bytes, 0) {}

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }

  // Little-endian scalar access (the 432, like the 8086 family, was little-endian).
  Result<uint64_t> Read(PhysAddr addr, uint32_t width_bytes) const {
    if (!InRange(addr, width_bytes)) {
      return Fault::kBoundsViolation;
    }
    uint64_t value = 0;
    std::memcpy(&value, &bytes_[addr], width_bytes);
    return value;
  }

  Status Write(PhysAddr addr, uint32_t width_bytes, uint64_t value) {
    if (!InRange(addr, width_bytes)) {
      return Fault::kBoundsViolation;
    }
    std::memcpy(&bytes_[addr], &value, width_bytes);
    return Status::Ok();
  }

  Status ReadBlock(PhysAddr addr, void* out, uint32_t length) const {
    if (!InRange(addr, length)) {
      return Fault::kBoundsViolation;
    }
    std::memcpy(out, &bytes_[addr], length);
    return Status::Ok();
  }

  Status WriteBlock(PhysAddr addr, const void* in, uint32_t length) {
    if (!InRange(addr, length)) {
      return Fault::kBoundsViolation;
    }
    std::memcpy(&bytes_[addr], in, length);
    return Status::Ok();
  }

  Status Zero(PhysAddr addr, uint32_t length) {
    if (!InRange(addr, length)) {
      return Fault::kBoundsViolation;
    }
    std::memset(&bytes_[addr], 0, length);
    return Status::Ok();
  }

  bool InRange(PhysAddr addr, uint32_t length) const {
    // Overflow-safe: addr + length may wrap in 32 bits.
    return static_cast<uint64_t>(addr) + length <= bytes_.size();
  }

  // Direct byte access for the addressing unit's fused fast path. Callers must pair with
  // an InRange check; the accessor itself performs none.
  const uint8_t* at(PhysAddr addr) const { return &bytes_[addr]; }
  uint8_t* at(PhysAddr addr) { return &bytes_[addr]; }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_ARCH_PHYSICAL_MEMORY_H_

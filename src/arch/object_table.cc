#include "src/arch/object_table.h"

#include "src/base/check.h"

namespace imax432 {

ObjectTable::ObjectTable(uint32_t capacity) {
  IMAX_CHECK(capacity > 0 && capacity < kInvalidObjectIndex);
  slots_.resize(capacity);
  free_list_.reserve(capacity);
  // Hand out low indices first: push in reverse so pop_back yields ascending order.
  for (uint32_t i = capacity; i > 0; --i) {
    free_list_.push_back(i - 1);
  }
}

Result<ObjectIndex> ObjectTable::Allocate(SystemType type, Level level, PhysAddr data_base,
                                          uint32_t data_length, uint32_t access_slots,
                                          ObjectIndex origin_sro, uint32_t storage_claim) {
  if (data_length > kMaxDataPartBytes || access_slots > kMaxAccessPartSlots) {
    return Fault::kSegmentTooLarge;
  }
  if (free_list_.empty()) {
    return Fault::kObjectTableFull;
  }
  ObjectIndex index = free_list_.back();
  free_list_.pop_back();

  ObjectDescriptor& slot = slots_[index];
  IMAX_DCHECK(!slot.allocated);
  slot.allocated = true;
  slot.type = type;
  slot.level = level;
  slot.data_base = data_base;
  slot.data_length = data_length;
  slot.access.assign(access_slots, AccessDescriptor());
  slot.type_def = kInvalidObjectIndex;
  slot.origin_sro = origin_sro;
  slot.color = GcColor::kWhite;
  slot.gc_exempt = false;
  slot.finalized = false;
  slot.swapped_out = false;
  slot.backing_slot = 0;
  slot.data_epoch = 0;
  slot.quarantined = false;
  slot.storage_claim = storage_claim;
  slot.checksum = DescriptorChecksum(slot);
  ++live_count_;
  return index;
}

Status ObjectTable::Free(ObjectIndex index) {
  if (index >= capacity()) {
    return Fault::kInvalidAccess;
  }
  ObjectDescriptor& slot = slots_[index];
  if (!slot.allocated) {
    return Fault::kNotAllocated;
  }
  slot.allocated = false;
  slot.access.clear();
  slot.access.shrink_to_fit();
  slot.quarantined = false;
  ++slot.generation;
  --live_count_;
  free_list_.push_back(index);
  return Status::Ok();
}

uint32_t ObjectTable::DescriptorChecksum(const ObjectDescriptor& descriptor) {
  // FNV-1a over the identity fields; cheap and stable across platforms.
  uint32_t hash = 2166136261u;
  auto mix = [&hash](uint32_t word) {
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (word >> shift) & 0xFFu;
      hash *= 16777619u;
    }
  };
  mix(static_cast<uint32_t>(descriptor.type));
  mix(static_cast<uint32_t>(descriptor.level));
  mix(descriptor.data_length);
  mix(descriptor.access_count());
  mix(descriptor.origin_sro);
  return hash;
}

void ObjectTable::Seal(ObjectIndex index) {
  IMAX_CHECK(index < capacity());
  ObjectDescriptor& slot = slots_[index];
  IMAX_CHECK(slot.allocated);
  slot.checksum = DescriptorChecksum(slot);
}

Result<ObjectDescriptor*> ObjectTable::Resolve(const AccessDescriptor& ad) {
  if (ad.is_null()) {
    return Fault::kNullAccess;
  }
  if (ad.index() >= capacity()) {
    return Fault::kInvalidAccess;
  }
  ObjectDescriptor& slot = slots_[ad.index()];
  if (!slot.allocated || slot.generation != ad.generation()) {
    return Fault::kInvalidAccess;
  }
  return &slot;
}

Result<const ObjectDescriptor*> ObjectTable::Resolve(const AccessDescriptor& ad) const {
  auto result = const_cast<ObjectTable*>(this)->Resolve(ad);
  if (!result.ok()) {
    return result.fault();
  }
  return static_cast<const ObjectDescriptor*>(result.value());
}

Result<AccessDescriptor> ObjectTable::MintAd(ObjectIndex index, RightsMask ad_rights) const {
  if (index >= capacity()) {
    return Fault::kInvalidAccess;
  }
  const ObjectDescriptor& slot = slots_[index];
  if (!slot.allocated) {
    return Fault::kNotAllocated;
  }
  return AccessDescriptor(index, slot.generation, ad_rights);
}

ObjectDescriptor& ObjectTable::At(ObjectIndex index) {
  IMAX_CHECK(index < capacity());
  return slots_[index];
}

const ObjectDescriptor& ObjectTable::At(ObjectIndex index) const {
  IMAX_CHECK(index < capacity());
  return slots_[index];
}

}  // namespace imax432

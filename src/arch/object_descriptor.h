// ObjectDescriptor: one entry of the global object descriptor table.
//
// "The one object descriptor for a given segment provides the physical base address and
// length of the segment, indicates whether the segment contains data or accesses, indicates
// what type of object it represents, and includes information needed for virtual memory
// management and parallel garbage collection."
//
// In this emulator an object always has both parts; either may be empty. The data part lives
// in PhysicalMemory at [data_base, data_base + data_length). The access part is held as typed
// AD slots directly in the descriptor: the hardware's enforced partition between data and
// access segments means data instructions can never forge or inspect raw AD bits, which the
// emulator guarantees structurally by never serializing ADs into byte memory.

#ifndef IMAX432_SRC_ARCH_OBJECT_DESCRIPTOR_H_
#define IMAX432_SRC_ARCH_OBJECT_DESCRIPTOR_H_

#include <cstdint>
#include <vector>

#include "src/arch/access_descriptor.h"
#include "src/arch/types.h"

namespace imax432 {

// Tri-color marking state for the Dijkstra et al. on-the-fly collector. The "gray bit" the
// 432 hardware sets whenever access descriptors are moved corresponds to the kWhite -> kGray
// transition performed by the addressing unit on every AD store.
enum class GcColor : uint8_t {
  kWhite = 0,  // not yet reached this cycle; candidate garbage at sweep
  kGray,       // reached but children not yet scanned
  kBlack,      // reached and fully scanned
};

struct ObjectDescriptor {
  bool allocated = false;

  SystemType type = SystemType::kGeneric;

  // Lifetime level: 0 = global. The storing rule (no AD to this object may be stored into an
  // object of a lower level) is enforced by AddressingUnit::WriteAd.
  Level level = kGlobalLevel;

  // Data part: physical placement. data_length == 0 for access-only objects.
  PhysAddr data_base = 0;
  uint32_t data_length = 0;

  // Access part: typed AD slots (see file comment). access.size() <= kMaxAccessPartSlots.
  std::vector<AccessDescriptor> access;

  // User type: the TDO that minted this object, or kInvalidObjectIndex for plain objects of
  // a hardware type. "via the user type definition facilities of the 432 such a guarantee
  // [type identity] is available to any user defined object type".
  ObjectIndex type_def = kInvalidObjectIndex;

  // SRO this object was allocated from, so that destroying a local SRO can bulk-reclaim all
  // objects it created, and so freed storage returns to the right free list.
  ObjectIndex origin_sro = kInvalidObjectIndex;

  // Garbage collection state.
  GcColor color = GcColor::kWhite;

  // Demoted allocation (lifetime analysis): the collector never whitens, marks, or sweeps
  // this object — it stays permanently black and its outgoing slots are scanned as roots.
  // Reclamation happens only through the bulk destroy of its demote SRO at context exit.
  // Invariant: gc_exempt implies color == kBlack (established at demotion, preserved by
  // GarbageCollector::Step's whiten phase).
  bool gc_exempt = false;

  // Set once the destruction filter has seen this object; a finalized object that becomes
  // garbage again is reclaimed silently (the type manager had its chance to disassemble it).
  bool finalized = false;

  // Virtual memory state (swapping memory manager only). While swapped_out, the data part
  // contents live in the backing store at backing_slot and any data access faults with
  // kSegmentSwapped.
  bool swapped_out = false;
  uint32_t backing_slot = 0;

  // Incremented every time this table entry is freed; ADs minted against older generations
  // fault with kInvalidAccess on use.
  uint32_t generation = 0;

  // Integrity state maintained for the object-table patrol scan. `checksum` seals the
  // descriptor's identity fields (type, level, data_length, access slot count, origin SRO)
  // at allocation — ObjectTable::Seal recomputes it after any legitimate identity mutation.
  // `data_epoch` counts mutator writes to the data part (bumped by the AddressingUnit), so
  // the patrol can tell a legitimate rewrite from silent bit rot. A quarantined object has
  // had its representation rights revoked: every checked data or access-part operation
  // faults with kObjectQuarantined instead of exposing corrupt state.
  uint32_t checksum = 0;
  uint32_t data_epoch = 0;
  bool quarantined = false;

  // Total architectural bytes charged to the origin SRO for this object (data part plus
  // kAdArchBytes per access slot), remembered so reclamation returns exactly what was taken.
  uint32_t storage_claim = 0;

  uint32_t access_count() const { return static_cast<uint32_t>(access.size()); }
};

}  // namespace imax432

#endif  // IMAX432_SRC_ARCH_OBJECT_DESCRIPTOR_H_

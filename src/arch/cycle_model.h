// Cycle cost model of the emulated 432.
//
// The paper gives two absolute costs for an 8 MHz processor with no-wait-state memory, which
// calibrate this table exactly:
//   - "a domain switch on the 432 takes about 65 microseconds"            -> 520 cycles
//   - "it takes 80 microseconds ... to allocate a segment from an SRO"    -> 640 cycles
// Every other cost is an estimate scaled relative to those two, chosen to be plausible for
// the 432's microcoded high-level instructions; EXPERIMENTS.md discusses the calibration.
//
// Costs are split into *compute* cycles (local to a processor, perfectly parallel across
// GDPs) and *bus* cycles (serialized on the shared packet bus / memory interconnect). The
// split is what produces the multiprocessor saturation behaviour measured in E3.

#ifndef IMAX432_SRC_ARCH_CYCLE_MODEL_H_
#define IMAX432_SRC_ARCH_CYCLE_MODEL_H_

#include <array>
#include <cstddef>

#include "src/arch/types.h"

namespace imax432 {

namespace cycles {

// Clock: 8 MHz => 8 cycles per microsecond.
inline constexpr Cycles kPerMicrosecond = 8;

// -- Calibrated by the paper --
// Inter-domain subprogram call: allocate + initialize a context object from the context SRO,
// switch the addressing environment. 520 cycles = 65 us.
inline constexpr Cycles kDomainCall = 520;
// Segment allocation from an SRO via the create-object instruction. 640 cycles = 80 us.
inline constexpr Cycles kCreateObjectBase = 640;

// -- Estimates relative to the calibration --
// Return from a domain call (no allocation: context is released to its SRO free list).
inline constexpr Cycles kDomainReturn = 280;
// Intra-domain call (enter a subprogram of the current domain; context still allocated but
// no domain transition / rights evaluation). The paper notes domain switch cost "compares
// reasonably with the cost of procedure activation on other contemporary processors".
inline constexpr Cycles kLocalCall = 220;
inline constexpr Cycles kLocalReturn = 140;
// Zeroing / descriptor init beyond the first 128 bytes of a created segment.
inline constexpr Cycles kCreateObjectPer64Bytes = 4;
// Explicit destroy (return storage to the SRO free list).
inline constexpr Cycles kDestroyObject = 180;
// Port machinery: send / receive as single high-level instructions.
inline constexpr Cycles kSend = 184;
inline constexpr Cycles kReceive = 184;
// Extra work when a send/receive must block: queue the process on the port and re-enter
// dispatching.
inline constexpr Cycles kBlockOnPort = 240;
// Bind a ready process to a processor at a dispatching port.
inline constexpr Cycles kDispatch = 400;
// Ordinary data operations.
inline constexpr Cycles kSimpleOp = 6;           // register-register ALU step
inline constexpr Cycles kDataAccessBase = 10;    // segment-relative load/store, compute part
inline constexpr Cycles kAdMove = 24;            // AD copy incl. level check and gray-bit set
inline constexpr Cycles kBranch = 8;
// GC daemon work quanta.
inline constexpr Cycles kGcScanSlot = 12;        // examine one AD slot during marking
inline constexpr Cycles kGcSweepObject = 20;     // per-object sweep decision
inline constexpr Cycles kGcFreeObject = 160;     // reclaim storage of one garbage object

// -- Bus (shared interconnect) costs --
// Cycles the memory interconnect is busy per 32-bit word moved. With no-wait-state memory a
// word transaction occupies the packet bus for ~4 cycles.
inline constexpr Cycles kBusPerWord = 4;
// Bus share of the fixed costs above (descriptor fetches, queue links): approximations.
inline constexpr Cycles kBusDomainCall = 96;
inline constexpr Cycles kBusCreateObject = 128;
inline constexpr Cycles kBusSend = 48;
inline constexpr Cycles kBusReceive = 48;
inline constexpr Cycles kBusDispatch = 112;
inline constexpr Cycles kBusAdMove = 8;
inline constexpr Cycles kBusDataAccess = 4;

// Default hardware time slice (10 ms at 8 MHz).
inline constexpr Cycles kDefaultTimeSlice = 80000;

inline constexpr double ToMicroseconds(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kPerMicrosecond);
}

// Cost of the create-object instruction for a segment with `data_bytes` of data part and
// `access_slots` AD slots.
inline constexpr Cycles CreateObjectCost(uint32_t data_bytes, uint32_t access_slots) {
  Cycles total_bytes = data_bytes + access_slots * kAdArchBytes;
  Cycles extra = total_bytes > 128 ? ((total_bytes - 128) / 64) * kCreateObjectPer64Bytes : 0;
  return kCreateObjectBase + extra;
}

}  // namespace cycles

// Attribution buckets for the cycle profiler (src/obs/profiler.h). Every virtual cycle a
// processor lives through lands in exactly one bucket, so per-GDP bucket sums reconstruct
// wall time exactly (the invariant bench_profiler asserts). The taxonomy follows the cost
// model's own split: compute local to a GDP, bus serialized on the interconnect, and the
// scheduling / recovery gaps between charged instructions.
enum class CycleBucket : uint8_t {
  kInterpreter = 0,  // instruction compute (the microcoded high-level instruction bodies)
  kDispatch,         // dispatching-port binds, time-slice machinery, stop/park transitions
  kBusTransfer,      // granted interconnect occupancy (incl. fault-window retransmissions)
  kBusWait,          // waiting for an interconnect channel grant
  kMemoryWait,       // transparent swap-in service (kSegmentSwapped residency faults)
  kPortWait,         // blocked at a port (per-process only; a blocked process holds no GDP)
  kGc,               // the collector daemon's interpreter cycles (by process tag)
  kFaultRecovery,    // fault delivery gaps, stalls, patrol / fault-service daemons (by tag)
  kIdle,             // parked at the dispatching port with nothing ready
  kHalted,           // retired GDP, from retirement to end of run
};

inline constexpr size_t kCycleBucketCount = 10;

using CycleBucketArray = std::array<Cycles, kCycleBucketCount>;

inline constexpr const char* CycleBucketName(CycleBucket bucket) {
  switch (bucket) {
    case CycleBucket::kInterpreter: return "interpreter";
    case CycleBucket::kDispatch: return "dispatch";
    case CycleBucket::kBusTransfer: return "bus_transfer";
    case CycleBucket::kBusWait: return "bus_wait";
    case CycleBucket::kMemoryWait: return "memory_wait";
    case CycleBucket::kPortWait: return "port_wait";
    case CycleBucket::kGc: return "gc";
    case CycleBucket::kFaultRecovery: return "fault_recovery";
    case CycleBucket::kIdle: return "idle";
    case CycleBucket::kHalted: return "halted";
  }
  return "unknown";
}

}  // namespace imax432

#endif  // IMAX432_SRC_ARCH_CYCLE_MODEL_H_

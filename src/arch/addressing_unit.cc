#include "src/arch/addressing_unit.h"

#include "src/base/check.h"

namespace imax432 {

Result<PhysAddr> AddressingUnit::CheckDataAccess(const AccessDescriptor& ad, uint32_t offset,
                                                 uint32_t length, RightsMask required) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* object, table_->Resolve(ad));
  if (object->quarantined) {
    return Fault::kObjectQuarantined;
  }
  if (!ad.HasRights(required)) {
    return Fault::kRightsViolation;
  }
  if (object->swapped_out) {
    last_swapped_object_ = ad.index();
    return Fault::kSegmentSwapped;
  }
  if (static_cast<uint64_t>(offset) + length > object->data_length) {
    return Fault::kBoundsViolation;
  }
  return static_cast<PhysAddr>(object->data_base + offset);
}

Result<uint64_t> AddressingUnit::ReadData(const AccessDescriptor& ad, uint32_t offset,
                                          uint32_t width) const {
  if (width != 1 && width != 2 && width != 4 && width != 8) {
    return Fault::kInvalidArgument;
  }
  IMAX_ASSIGN_OR_RETURN(PhysAddr addr, CheckDataAccess(ad, offset, width, rights::kRead));
  return memory_->Read(addr, width);
}

Status AddressingUnit::WriteData(const AccessDescriptor& ad, uint32_t offset, uint32_t width,
                                 uint64_t value) {
  if (width != 1 && width != 2 && width != 4 && width != 8) {
    return Fault::kInvalidArgument;
  }
  IMAX_ASSIGN_OR_RETURN(PhysAddr addr, CheckDataAccess(ad, offset, width, rights::kWrite));
  IMAX_RETURN_IF_FAULT(memory_->Write(addr, width, value));
  // Mutator writes advance the data epoch so the patrol scan can distinguish a legitimate
  // rewrite from silent corruption of the data part.
  ++table_->At(ad.index()).data_epoch;
  return Status::Ok();
}

Status AddressingUnit::ReadDataBlock(const AccessDescriptor& ad, uint32_t offset, void* out,
                                     uint32_t length) const {
  IMAX_ASSIGN_OR_RETURN(PhysAddr addr, CheckDataAccess(ad, offset, length, rights::kRead));
  return memory_->ReadBlock(addr, out, length);
}

Status AddressingUnit::WriteDataBlock(const AccessDescriptor& ad, uint32_t offset, const void* in,
                                      uint32_t length) {
  IMAX_ASSIGN_OR_RETURN(PhysAddr addr, CheckDataAccess(ad, offset, length, rights::kWrite));
  IMAX_RETURN_IF_FAULT(memory_->WriteBlock(addr, in, length));
  ++table_->At(ad.index()).data_epoch;
  return Status::Ok();
}

Result<AccessDescriptor> AddressingUnit::ReadAd(const AccessDescriptor& container,
                                                uint32_t slot) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* object, table_->Resolve(container));
  if (object->quarantined) {
    return Fault::kObjectQuarantined;
  }
  if (!container.HasRights(rights::kRead)) {
    return Fault::kRightsViolation;
  }
  if (slot >= object->access_count()) {
    return Fault::kBoundsViolation;
  }
  return object->access[slot];
}

Status AddressingUnit::WriteAd(const AccessDescriptor& container, uint32_t slot,
                               const AccessDescriptor& ad) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * object, table_->Resolve(container));
  if (object->quarantined) {
    return Fault::kObjectQuarantined;
  }
  if (!container.HasRights(rights::kWrite)) {
    return Fault::kRightsViolation;
  }
  if (slot >= object->access_count()) {
    return Fault::kBoundsViolation;
  }
  if (ad.is_null()) {
    object->access[slot] = AccessDescriptor();
    return Status::Ok();
  }
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * referenced, table_->Resolve(ad));
  // Lifetime storing rule: container.level must be >= referenced.level.
  if (!ObjectTable::StorePermitted(*object, *referenced)) {
    return Fault::kLevelViolation;
  }
  // Hardware gray bit: shade the target of the moved reference so the on-the-fly collector
  // never loses a reachable object to a concurrent pointer move.
  if (referenced->color == GcColor::kWhite) {
    referenced->color = GcColor::kGray;
    ++shade_count_;
  }
  object->access[slot] = ad;
  return Status::Ok();
}

Status AddressingUnit::WriteAdPrivileged(const AccessDescriptor& container, uint32_t slot,
                                         const AccessDescriptor& ad) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * object, table_->Resolve(container));
  if (slot >= object->access_count()) {
    return Fault::kBoundsViolation;
  }
  if (!ad.is_null()) {
    IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * referenced, table_->Resolve(ad));
    if (referenced->color == GcColor::kWhite) {
      referenced->color = GcColor::kGray;
      ++shade_count_;
    }
  }
  object->access[slot] = ad;
  return Status::Ok();
}

Result<ObjectDescriptor*> AddressingUnit::ResolveTyped(const AccessDescriptor& ad,
                                                       SystemType type, RightsMask required) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * object, table_->Resolve(ad));
  if (object->type != type) {
    return Fault::kTypeMismatch;
  }
  if (!ad.HasRights(required)) {
    return Fault::kRightsViolation;
  }
  return object;
}

Result<ObjectDescriptor*> AddressingUnit::ResolveChecked(const AccessDescriptor& ad,
                                                         RightsMask required) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * object, table_->Resolve(ad));
  if (!ad.HasRights(required)) {
    return Fault::kRightsViolation;
  }
  return object;
}

}  // namespace imax432

#include "src/arch/addressing_unit.h"

#include <cstring>

#include "src/base/check.h"

namespace imax432 {

namespace {

// Width-dispatched little-endian scalar access for the fused fast path: each case compiles
// to a single fixed-size move instead of a variable-length memcpy call.
inline uint64_t LoadScalar(const uint8_t* p, uint32_t width) {
  switch (width) {
    case 1:
      return *p;
    case 2: {
      uint16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    case 4: {
      uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    default: {
      uint64_t v;
      std::memcpy(&v, p, 8);
      return v;
    }
  }
}

inline void StoreScalar(uint8_t* p, uint32_t width, uint64_t value) {
  switch (width) {
    case 1:
      *p = static_cast<uint8_t>(value);
      return;
    case 2: {
      uint16_t v = static_cast<uint16_t>(value);
      std::memcpy(p, &v, 2);
      return;
    }
    case 4: {
      uint32_t v = static_cast<uint32_t>(value);
      std::memcpy(p, &v, 4);
      return;
    }
    default:
      std::memcpy(p, &value, 8);
      return;
  }
}

// A fused-fast-path probe: a translation hit plus every per-access check CheckDataAccess
// performs, evaluated on the already-probed entry in one branch chain. Returns {nullptr,
// nullptr} on any miss or check failure, sending the caller to the layered slow path —
// which owns fault selection, so fault semantics are byte-identical with the cache bound.
struct FastDataHit {
  XlatEntry* entry = nullptr;
  ObjectDescriptor* descriptor = nullptr;
};

inline FastDataHit ProbeFastDataHit(XlatCache* xlat, const PhysicalMemory& memory,
                                    const AccessDescriptor& ad, uint32_t offset,
                                    uint32_t width, RightsMask required) {
  FastDataHit hit;
  XlatEntry& entry = xlat->Probe(ad.index());
  if (entry.descriptor == nullptr || entry.index != ad.index() ||
      entry.generation != ad.generation()) {
    return hit;
  }
  ObjectDescriptor* descriptor = entry.descriptor;
  // Certified entries skip the liveness revalidation under the interference analysis's
  // immutability proof; epoch-keyed entries replicate Resolve's checks.
  if (!entry.certified &&
      !(descriptor->allocated && descriptor->generation == ad.generation())) {
    return hit;
  }
  if (descriptor->quarantined || descriptor->swapped_out || !ad.HasRights(required) ||
      static_cast<uint64_t>(offset) + width > descriptor->data_length ||
      !memory.InRange(descriptor->data_base + offset, width) ||
      (width != 1 && width != 2 && width != 4 && width != 8)) {
    return hit;
  }
  hit.entry = &entry;
  hit.descriptor = descriptor;
  return hit;
}

}  // namespace

Result<ObjectDescriptor*> AddressingUnit::ResolveAndFill(const AccessDescriptor& ad) const {
  ++xlat_->stats().misses;
  Result<ObjectDescriptor*> resolved = table_->Resolve(ad);
  if (!resolved.ok()) {
    return resolved;
  }
  ObjectDescriptor* descriptor = resolved.value();
  XlatEntry& entry = xlat_->Probe(ad.index());
  if (entry.index != ad.index() || entry.generation != ad.generation()) {
    // New identity in this slot: drop any payload carried for the evicted translation.
    entry = XlatEntry{};
    entry.index = ad.index();
    entry.generation = ad.generation();
  }
  entry.descriptor = descriptor;
  entry.data_epoch = descriptor->data_epoch;
  entry.type = static_cast<uint8_t>(descriptor->type);
  entry.certified = xlat_->IsCertified(ad.index());
  return resolved;
}

Result<PhysAddr> AddressingUnit::CheckDataAccess(const AccessDescriptor& ad, uint32_t offset,
                                                 uint32_t length, RightsMask required) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* object, CachedResolve(ad));
  if (object->quarantined) {
    return Fault::kObjectQuarantined;
  }
  if (!ad.HasRights(required)) {
    return Fault::kRightsViolation;
  }
  if (object->swapped_out) {
    last_swapped_object_ = ad.index();
    return Fault::kSegmentSwapped;
  }
  if (static_cast<uint64_t>(offset) + length > object->data_length) {
    return Fault::kBoundsViolation;
  }
  return static_cast<PhysAddr>(object->data_base + offset);
}

Result<uint64_t> AddressingUnit::ReadData(const AccessDescriptor& ad, uint32_t offset,
                                          uint32_t width) const {
  if (xlat_ != nullptr) {
    FastDataHit hit = ProbeFastDataHit(xlat_, *memory_, ad, offset, width, rights::kRead);
    if (hit.descriptor != nullptr) {
      if (hit.entry->certified) {
        ++xlat_->stats().certified_hits;
        xlat_->NotifyCertifiedHit(*hit.entry);
      } else {
        ++xlat_->stats().hits;
      }
      return LoadScalar(memory_->at(hit.descriptor->data_base + offset), width);
    }
  }
  if (width != 1 && width != 2 && width != 4 && width != 8) {
    return Fault::kInvalidArgument;
  }
  IMAX_ASSIGN_OR_RETURN(PhysAddr addr, CheckDataAccess(ad, offset, width, rights::kRead));
  return memory_->Read(addr, width);
}

Status AddressingUnit::WriteData(const AccessDescriptor& ad, uint32_t offset, uint32_t width,
                                 uint64_t value) {
  if (xlat_ != nullptr) {
    FastDataHit hit = ProbeFastDataHit(xlat_, *memory_, ad, offset, width, rights::kWrite);
    if (hit.descriptor != nullptr) {
      if (hit.entry->certified) {
        ++xlat_->stats().certified_hits;
        xlat_->NotifyCertifiedHit(*hit.entry);
      } else {
        ++xlat_->stats().hits;
      }
      StoreScalar(memory_->at(hit.descriptor->data_base + offset), width, value);
      // Same epoch bump as the slow path, on the descriptor already in hand.
      ++hit.descriptor->data_epoch;
      return Status::Ok();
    }
  }
  if (width != 1 && width != 2 && width != 4 && width != 8) {
    return Fault::kInvalidArgument;
  }
  IMAX_ASSIGN_OR_RETURN(PhysAddr addr, CheckDataAccess(ad, offset, width, rights::kWrite));
  IMAX_RETURN_IF_FAULT(memory_->Write(addr, width, value));
  // Mutator writes advance the data epoch so the patrol scan can distinguish a legitimate
  // rewrite from silent corruption of the data part.
  ++table_->At(ad.index()).data_epoch;
  return Status::Ok();
}

Status AddressingUnit::ReadDataBlock(const AccessDescriptor& ad, uint32_t offset, void* out,
                                     uint32_t length) const {
  IMAX_ASSIGN_OR_RETURN(PhysAddr addr, CheckDataAccess(ad, offset, length, rights::kRead));
  return memory_->ReadBlock(addr, out, length);
}

Status AddressingUnit::WriteDataBlock(const AccessDescriptor& ad, uint32_t offset, const void* in,
                                      uint32_t length) {
  IMAX_ASSIGN_OR_RETURN(PhysAddr addr, CheckDataAccess(ad, offset, length, rights::kWrite));
  IMAX_RETURN_IF_FAULT(memory_->WriteBlock(addr, in, length));
  ++table_->At(ad.index()).data_epoch;
  return Status::Ok();
}

Result<uint64_t> AddressingUnit::ReadDataElided(const AccessDescriptor& ad, uint32_t offset,
                                                uint32_t width) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* object, CachedResolve(ad));
  if (object->quarantined) {
    return Fault::kObjectQuarantined;
  }
  if (object->swapped_out) {
    last_swapped_object_ = ad.index();
    return Fault::kSegmentSwapped;
  }
  const PhysAddr addr = static_cast<PhysAddr>(object->data_base + offset);
  if (!memory_->InRange(addr, width)) {
    return Fault::kBoundsViolation;
  }
  return LoadScalar(memory_->at(addr), width);
}

Status AddressingUnit::WriteDataElided(const AccessDescriptor& ad, uint32_t offset,
                                       uint32_t width, uint64_t value) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * object, CachedResolve(ad));
  if (object->quarantined) {
    return Fault::kObjectQuarantined;
  }
  if (object->swapped_out) {
    last_swapped_object_ = ad.index();
    return Fault::kSegmentSwapped;
  }
  const PhysAddr addr = static_cast<PhysAddr>(object->data_base + offset);
  if (!memory_->InRange(addr, width)) {
    return Fault::kBoundsViolation;
  }
  StoreScalar(memory_->at(addr), width, value);
  // Same epoch bump as the full path, on the descriptor already in hand.
  ++object->data_epoch;
  return Status::Ok();
}

Result<AccessDescriptor> AddressingUnit::ReadAdElided(const AccessDescriptor& container,
                                                      uint32_t slot) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* object, CachedResolve(container));
  if (object->quarantined) {
    return Fault::kObjectQuarantined;
  }
  if (slot >= object->access_count()) {
    // Defense in depth: a wrong certificate must not index past the access vector.
    return Fault::kBoundsViolation;
  }
  return object->access[slot];
}

Result<AccessDescriptor> AddressingUnit::ReadAd(const AccessDescriptor& container,
                                                uint32_t slot) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* object, CachedResolve(container));
  if (object->quarantined) {
    return Fault::kObjectQuarantined;
  }
  if (!container.HasRights(rights::kRead)) {
    return Fault::kRightsViolation;
  }
  if (slot >= object->access_count()) {
    return Fault::kBoundsViolation;
  }
  return object->access[slot];
}

Status AddressingUnit::WriteAd(const AccessDescriptor& container, uint32_t slot,
                               const AccessDescriptor& ad) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * object, CachedResolve(container));
  if (object->quarantined) {
    return Fault::kObjectQuarantined;
  }
  if (!container.HasRights(rights::kWrite)) {
    return Fault::kRightsViolation;
  }
  if (slot >= object->access_count()) {
    return Fault::kBoundsViolation;
  }
  if (ad.is_null()) {
    object->access[slot] = AccessDescriptor();
    return Status::Ok();
  }
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * referenced, CachedResolve(ad));
  // Lifetime storing rule: container.level must be >= referenced.level.
  if (!ObjectTable::StorePermitted(*object, *referenced)) {
    return Fault::kLevelViolation;
  }
  // Hardware gray bit: shade the target of the moved reference so the on-the-fly collector
  // never loses a reachable object to a concurrent pointer move.
  if (referenced->color == GcColor::kWhite) {
    referenced->color = GcColor::kGray;
    ++shade_count_;
  }
  object->access[slot] = ad;
  return Status::Ok();
}

Status AddressingUnit::WriteAdPrivileged(const AccessDescriptor& container, uint32_t slot,
                                         const AccessDescriptor& ad) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * object, CachedResolve(container));
  if (slot >= object->access_count()) {
    return Fault::kBoundsViolation;
  }
  if (!ad.is_null()) {
    IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * referenced, CachedResolve(ad));
    if (referenced->color == GcColor::kWhite) {
      referenced->color = GcColor::kGray;
      ++shade_count_;
    }
  }
  object->access[slot] = ad;
  return Status::Ok();
}

Result<ObjectDescriptor*> AddressingUnit::ResolveTyped(const AccessDescriptor& ad,
                                                       SystemType type, RightsMask required) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * object, CachedResolve(ad));
  if (object->type != type) {
    return Fault::kTypeMismatch;
  }
  if (!ad.HasRights(required)) {
    return Fault::kRightsViolation;
  }
  return object;
}

Result<ObjectDescriptor*> AddressingUnit::ResolveChecked(const AccessDescriptor& ad,
                                                         RightsMask required) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * object, CachedResolve(ad));
  if (!ad.HasRights(required)) {
    return Fault::kRightsViolation;
  }
  return object;
}

}  // namespace imax432

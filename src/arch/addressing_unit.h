// AddressingUnit: every segment-relative access in the system funnels through here.
//
// This is the emulator's stand-in for the 432's on-chip address translation and protection
// machinery. It enforces, on every operation:
//   - AD validity (null / stale generation),
//   - rights (read/write on the data part, write on access slots),
//   - part bounds (data offsets, access slot indices),
//   - the lifetime storing rule ("an access for an object may never be stored into an object
//     with a lower (more global) level number"),
//   - residency (swapped-out segments fault with kSegmentSwapped for the memory manager),
// and performs, on every AD store, the Dijkstra-collector cooperation the paper attributes to
// hardware: "the 432 hardware implements the gray bit of that algorithm, setting it whenever
// access descriptors are moved."

#ifndef IMAX432_SRC_ARCH_ADDRESSING_UNIT_H_
#define IMAX432_SRC_ARCH_ADDRESSING_UNIT_H_

#include <cstdint>

#include "src/arch/access_descriptor.h"
#include "src/arch/object_table.h"
#include "src/arch/physical_memory.h"
#include "src/arch/types.h"
#include "src/arch/xlat_cache.h"
#include "src/base/result.h"

namespace imax432 {

class AddressingUnit {
 public:
  AddressingUnit(ObjectTable* table, PhysicalMemory* memory) : table_(table), memory_(memory) {}

  // --- Data part access (scalar, little-endian; width in {1, 2, 4, 8}) ---
  Result<uint64_t> ReadData(const AccessDescriptor& ad, uint32_t offset, uint32_t width) const;
  Status WriteData(const AccessDescriptor& ad, uint32_t offset, uint32_t width, uint64_t value);

  // Bulk variants used by object filing and device DMA models; same checks as the scalar
  // forms, one rights evaluation for the whole transfer.
  Status ReadDataBlock(const AccessDescriptor& ad, uint32_t offset, void* out,
                       uint32_t length) const;
  Status WriteDataBlock(const AccessDescriptor& ad, uint32_t offset, const void* in,
                        uint32_t length);

  // --- Access part access ---
  // Reading an AD slot requires read rights on the container.
  Result<AccessDescriptor> ReadAd(const AccessDescriptor& container, uint32_t slot) const;
  // Storing an AD requires write rights on the container, performs the level check against
  // the *referenced* object, and shades the referenced object gray (mutator cooperation with
  // the on-the-fly collector). Storing a null AD always succeeds (it clears the slot).
  Status WriteAd(const AccessDescriptor& container, uint32_t slot, const AccessDescriptor& ad);

  // Privileged AD store: bounds-checked and gray-shading, but exempt from rights and level
  // checks. This models two things the 432 microcode did outside the mutator store path:
  // maintaining system-object linkage (a process object referencing its deeper-level current
  // context), and the per-processor register file (our AD registers live in context objects,
  // but architecturally they are registers, which the level rule does not govern — only
  // stores into *memory* are checked). Kernel-internal use only.
  Status WriteAdPrivileged(const AccessDescriptor& container, uint32_t slot,
                           const AccessDescriptor& ad);

  // --- Check-elided fast paths (guard-dominance Phase 3; see analysis/guards/guards.h) ---
  // The caller holds an ElisionCertificate proving the rights and bounds checks were
  // performed by a dominating instruction on every path to this site. Liveness/generation
  // (via CachedResolve), quarantine, and residency remain dynamic, so the elided path
  // faults identically to the full path on everything the certificate does not cover; what
  // is skipped is exactly the HasRights test and the data/slot bounds compare. Widths are
  // certified statically valid. A host-memory range check is kept as defense in depth
  // against a wrong certificate (the guard auditor is the diagnostic surface for that).
  Result<uint64_t> ReadDataElided(const AccessDescriptor& ad, uint32_t offset,
                                  uint32_t width) const;
  Status WriteDataElided(const AccessDescriptor& ad, uint32_t offset, uint32_t width,
                         uint64_t value);
  Result<AccessDescriptor> ReadAdElided(const AccessDescriptor& container, uint32_t slot) const;

  // --- Typed resolution helpers used by the high-level instructions ---
  // Resolves and checks the object's system type and that the AD carries `required` rights.
  Result<ObjectDescriptor*> ResolveTyped(const AccessDescriptor& ad, SystemType type,
                                         RightsMask required);
  // Resolve with rights check only.
  Result<ObjectDescriptor*> ResolveChecked(const AccessDescriptor& ad, RightsMask required);

  ObjectTable& table() { return *table_; }
  const ObjectTable& table() const { return *table_; }
  PhysicalMemory& memory() { return *memory_; }

  // Count of AD stores that shaded a white object gray (diagnostics for GC experiments).
  uint64_t shade_count() const { return shade_count_; }

  // The object whose non-residency caused the most recent kSegmentSwapped fault (the 432's
  // fault-information area; the memory manager reads it to service the fault).
  ObjectIndex last_swapped_object() const { return last_swapped_object_; }

  // Binds (or unbinds, with nullptr) a per-processor AD-translation cache
  // (SystemConfig::xlat_cache). Every Resolve in this unit then goes through CachedResolve:
  // an epoch-keyed hit replicates Resolve's allocated/generation checks on the cached
  // descriptor pointer; a certified hit skips them under the interference analysis's
  // immutability proof. Rights, bounds, quarantine, swap state, and data_base stay per-access
  // on the resolved descriptor, so fault semantics are byte-identical with the cache bound.
  void BindXlatCache(XlatCache* cache) { xlat_ = cache; }
  XlatCache* xlat_cache() const { return xlat_; }

 private:
  // Common data-part checks; returns the physical address of (ad.data_base + offset).
  // always_inline pins the no-cache configuration's codegen: the fused fast path below
  // grows ReadData/WriteData past GCC's inlining budget, and letting this helper fall out
  // of line would slow the default (cache-off) interpreter hot path by ~50%.
  __attribute__((always_inline)) inline Result<PhysAddr> CheckDataAccess(
      const AccessDescriptor& ad, uint32_t offset, uint32_t length, RightsMask required) const;

  // ObjectTable::Resolve through the bound translation cache (authoritative Resolve when no
  // cache is bound). Hot: inline, one predictable branch on the unbound path.
  Result<ObjectDescriptor*> CachedResolve(const AccessDescriptor& ad) const {
    if (xlat_ != nullptr) {
      XlatEntry& entry = xlat_->Probe(ad.index());
      if (entry.descriptor != nullptr && entry.index == ad.index() &&
          entry.generation == ad.generation()) {
        if (entry.certified) {
          ++xlat_->stats().certified_hits;
          xlat_->NotifyCertifiedHit(entry);
          return entry.descriptor;
        }
        if (entry.descriptor->allocated && entry.descriptor->generation == ad.generation()) {
          ++xlat_->stats().hits;
          return entry.descriptor;
        }
      }
      return ResolveAndFill(ad);
    }
    return table_->Resolve(ad);
  }

  // Slow path: authoritative Resolve, then (on success) fill the probed entry. Fault
  // outcomes are never cached.
  Result<ObjectDescriptor*> ResolveAndFill(const AccessDescriptor& ad) const;

  ObjectTable* table_;
  PhysicalMemory* memory_;
  uint64_t shade_count_ = 0;
  mutable ObjectIndex last_swapped_object_ = kInvalidObjectIndex;
  XlatCache* xlat_ = nullptr;
};

}  // namespace imax432

#endif  // IMAX432_SRC_ARCH_ADDRESSING_UNIT_H_

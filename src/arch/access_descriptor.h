// AccessDescriptor: the 432 capability.
//
// An AD names an entry in the global object descriptor table and carries rights. The emulator
// additionally stores the generation counter of the table entry at the time the AD was minted
// so that use of an AD after its object's table slot was freed and reused raises
// kInvalidAccess, modelling the hardware's reclamation discipline (the real machine relied on
// GC to guarantee no dangling ADs; the generation check turns any emulator bug that violates
// that guarantee into a hard fault instead of silent corruption).

#ifndef IMAX432_SRC_ARCH_ACCESS_DESCRIPTOR_H_
#define IMAX432_SRC_ARCH_ACCESS_DESCRIPTOR_H_

#include <cstdint>

#include "src/arch/rights.h"
#include "src/arch/types.h"

namespace imax432 {

class AccessDescriptor {
 public:
  // The null AD: "any_access" default; dereferencing it faults with kNullAccess.
  constexpr AccessDescriptor() = default;

  constexpr AccessDescriptor(ObjectIndex index, uint32_t generation, RightsMask ad_rights)
      : index_(index), generation_(generation), rights_(ad_rights) {}

  constexpr bool is_null() const { return index_ == kInvalidObjectIndex; }
  constexpr ObjectIndex index() const { return index_; }
  constexpr uint32_t generation() const { return generation_; }
  constexpr RightsMask rights() const { return rights_; }

  constexpr bool HasRights(RightsMask required) const {
    return rights::Has(rights_, required);
  }

  // Returns a copy of this AD with rights restricted to `keep`. Restriction is the only
  // unprivileged rights transformation the architecture permits.
  constexpr AccessDescriptor Restricted(RightsMask keep) const {
    return AccessDescriptor(index_, generation_, rights::Restrict(rights_, keep));
  }

  friend constexpr bool operator==(const AccessDescriptor& a, const AccessDescriptor& b) {
    return a.index_ == b.index_ && a.generation_ == b.generation_ && a.rights_ == b.rights_;
  }

  // True if both ADs designate the same object, regardless of rights.
  constexpr bool SameObject(const AccessDescriptor& other) const {
    return index_ == other.index_ && generation_ == other.generation_ && !is_null();
  }

 private:
  ObjectIndex index_ = kInvalidObjectIndex;
  uint32_t generation_ = 0;
  RightsMask rights_ = rights::kNone;
};

// The predefined untyped capability type of the iMAX standard environment: "The type
// any_access is predefined in the standard environment for the 432 and corresponds to an
// otherwise untyped access descriptor."
using AnyAccess = AccessDescriptor;

}  // namespace imax432

#endif  // IMAX432_SRC_ARCH_ACCESS_DESCRIPTOR_H_

// Bus: the shared memory interconnect contention model.
//
// "With the bussing schemes designed for the 432, a factor of 10 in total processing power of
// a single 432 system is realizable." Compute cycles are local to a GDP and scale perfectly;
// bus cycles serialize on a small number of interconnect channels. A processor needing the
// bus at time t is granted the earliest channel slot >= t, FIFO per arrival order, which makes
// speedup saturate once aggregate bus demand reaches channel capacity — the behaviour E3
// measures.

#ifndef IMAX432_SRC_SIM_BUS_H_
#define IMAX432_SRC_SIM_BUS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/arch/types.h"
#include "src/base/check.h"

namespace imax432 {

// Breakdown of one Acquire: how long the requester waited for a channel and how long the
// granted transfer occupied it (after any fault-window doubling). The profiler's bus
// attribution reads these; done == earliest + wait + busy always holds.
struct BusGrant {
  Cycles wait = 0;
  Cycles busy = 0;
};

class Bus {
 public:
  explicit Bus(int channels = 1) : next_free_(static_cast<size_t>(channels), 0) {
    IMAX_CHECK(channels >= 1);
  }

  // Reserves `bus_cycles` of interconnect time starting no earlier than `earliest`.
  // Returns the completion time of the transfer. Zero-cycle requests complete immediately.
  Cycles Acquire(Cycles earliest, Cycles bus_cycles) {
    BusGrant grant;
    return Acquire(earliest, bus_cycles, &grant);
  }

  // As above, also reporting the wait/busy split of the grant.
  Cycles Acquire(Cycles earliest, Cycles bus_cycles, BusGrant* grant) {
    grant->wait = 0;
    grant->busy = 0;
    if (bus_cycles == 0) {
      return earliest;
    }
    // A transfer starting inside an injected fault window occupies the channel twice over:
    // a dropped transfer is lost and retransmitted; a duplicated one is sent twice. Either
    // way the payload arrives (the interconnect protocol is assumed reliable-with-retry),
    // so the fault is purely a timing/occupancy event — which keeps replay deterministic.
    if (earliest < fault_window_end_ && earliest >= fault_window_begin_) {
      bus_cycles *= 2;
      if (fault_window_drops_) {
        ++dropped_transfers_;
      } else {
        ++duplicated_transfers_;
      }
    }
    // Pick the channel that can start soonest.
    size_t best = 0;
    for (size_t i = 1; i < next_free_.size(); ++i) {
      if (next_free_[i] < next_free_[best]) {
        best = i;
      }
    }
    Cycles start = std::max(earliest, next_free_[best]);
    Cycles done = start + bus_cycles;
    next_free_[best] = done;
    busy_cycles_ += bus_cycles;
    wait_cycles_ += start - earliest;
    ++transactions_;
    grant->wait = start - earliest;
    grant->busy = bus_cycles;
    return done;
  }

  // Arms a fault window over [begin, end): transfers requested inside it are dropped
  // (`drops` = true) or duplicated. Windows do not stack; the latest call wins.
  void SetFaultWindow(Cycles begin, Cycles end, bool drops) {
    fault_window_begin_ = begin;
    fault_window_end_ = end;
    fault_window_drops_ = drops;
  }

  int channels() const { return static_cast<int>(next_free_.size()); }

  // Total interconnect cycles consumed (across channels).
  Cycles busy_cycles() const { return busy_cycles_; }
  // Total cycles requesters spent waiting for a channel grant.
  Cycles wait_cycles() const { return wait_cycles_; }
  uint64_t transactions() const { return transactions_; }
  uint64_t dropped_transfers() const { return dropped_transfers_; }
  uint64_t duplicated_transfers() const { return duplicated_transfers_; }

  // Utilization of the interconnect over [0, now]: busy / (channels * now).
  double Utilization(Cycles now) const {
    if (now == 0) {
      return 0.0;
    }
    return static_cast<double>(busy_cycles_) /
           (static_cast<double>(now) * static_cast<double>(next_free_.size()));
  }

 private:
  std::vector<Cycles> next_free_;
  Cycles busy_cycles_ = 0;
  Cycles wait_cycles_ = 0;
  uint64_t transactions_ = 0;
  Cycles fault_window_begin_ = 0;
  Cycles fault_window_end_ = 0;     // begin == end: no window armed
  bool fault_window_drops_ = false;
  uint64_t dropped_transfers_ = 0;
  uint64_t duplicated_transfers_ = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_SIM_BUS_H_

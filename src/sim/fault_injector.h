// FaultInjector: deterministic, replayable hardware-fault campaigns.
//
// iMAX's reliability story rests on recovery mechanisms (processor retirement, transfer
// retry, patrol scan) that only fire when hardware misbehaves — which the simulator's
// hardware never does on its own. The injector supplies the misbehaviour: a schedule of
// injection events, each pinned to a virtual-cycle timestamp, drawn from a seeded xorshift
// stream. Two runs with the same {seed, schedule} inject the same faults at the same
// instants against the same targets, so a whole campaign — faults, recoveries, final
// metrics — replays bit-identically. Target selection is deferred to fire time (the
// schedule stores an abstract selector, Apply maps it onto the then-live candidate set by
// index order), so a schedule generated before boot still lands on real objects.

#ifndef IMAX432_SRC_SIM_FAULT_INJECTOR_H_
#define IMAX432_SRC_SIM_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/arch/types.h"

namespace imax432 {

class Kernel;
class SwappingMemoryManager;

enum class InjectionKind : uint8_t {
  kProcessorRetire = 0,  // halt a GDP permanently; kernel retires it
  kProcessorStall,       // freeze a GDP for `arg` cycles (thermal throttle / bus hang)
  kDeviceTransient,      // next `arg` backing-store transfers fail (retry recovers)
  kDevicePermanent,      // backing store down until healed after `arg` cycles
  kBitFlip,              // flip one bit in a generic object's data part (silent bit rot)
  kChecksumCorrupt,      // corrupt a descriptor's identity checksum (patrol catches it)
  kBusDrop,              // transfers in a `arg`-cycle window are lost and retransmitted
  kBusDuplicate,         // transfers in a `arg`-cycle window are sent twice
  kPowerCut,             // whole-System power loss: the live System is torn down
                         // mid-operation (unsynced journal tail torn at `arg`), then a
                         // fresh boot recovers from stable storage. Never drawn by
                         // GenerateSchedule — a cut ends the epoch, so in-run schedules
                         // cannot contain one; use GenerateCrashSchedule.
  kKindCount,
};

const char* InjectionKindName(InjectionKind kind);

struct InjectionEvent {
  Cycles at = 0;        // virtual time the injection fires
  InjectionKind kind = InjectionKind::kProcessorRetire;
  uint32_t target = 0;  // abstract selector, mapped onto live candidates at fire time
  uint32_t arg = 0;     // kind-specific magnitude (see InjectionKind comments)
};

struct InjectorStats {
  uint64_t fired = 0;    // events whose fault was actually applied
  uint64_t skipped = 0;  // events with no eligible target at fire time
  uint64_t per_kind[static_cast<size_t>(InjectionKind::kKindCount)] = {};
};

class FaultInjector {
 public:
  // `swap` may be null; device injections are then recorded as skipped. The kernel (and
  // through it the machine) must outlive the injector.
  FaultInjector(Kernel* kernel, SwappingMemoryManager* swap)
      : kernel_(kernel), swap_(swap) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Draws `count` events uniformly over [0, horizon) from a seeded stream and returns them
  // sorted by fire time. Pure function of (seed, count, horizon) — the replay contract.
  // kPowerCut is never drawn: existing seeded schedules stay bit-identical, and a cut ends
  // the run it fires in, which the crash-restart driver models as an epoch boundary.
  static std::vector<InjectionEvent> GenerateSchedule(uint64_t seed, uint32_t count,
                                                      Cycles horizon);

  // GenerateSchedule plus `power_cuts` kPowerCut events drawn from an independent stream
  // derived from the same seed (so adding cuts does not perturb the in-run event draw).
  // Pure function of its arguments; power_cuts must be <= count. The crash-restart driver
  // partitions the result at the cut events into per-boot epochs.
  static std::vector<InjectionEvent> GenerateCrashSchedule(uint64_t seed, uint32_t count,
                                                           uint32_t power_cuts,
                                                           Cycles horizon);

  // Schedules Apply() for every event on the machine's event queue. Events already in the
  // past fire at now(). Call once; campaigns append by calling Arm with a fresh schedule.
  void Arm(const std::vector<InjectionEvent>& schedule);

  // Fires one event immediately (tests drive this directly). Returns true if the fault was
  // applied, false if no eligible target existed.
  bool Apply(const InjectionEvent& event);

  // Receives kPowerCut events (the injector itself cannot tear down the System that owns
  // it — the crash-restart driver does, after tearing the stable device's tail at `arg`).
  // Returns whether the cut was applied. Without a hook, kPowerCut events are skipped.
  using PowerCutHook = std::function<bool(uint32_t arg)>;
  void SetPowerCutHook(PowerCutHook hook) { power_cut_hook_ = std::move(hook); }

  const InjectorStats& stats() const { return stats_; }

 private:
  // Picks the target % size element of the candidate set, built in deterministic index
  // order. Returns false if the set is empty.
  bool PickProcessor(uint32_t target, bool keep_one_alive, uint16_t* out) const;
  bool PickGenericObject(uint32_t target, bool needs_data, ObjectIndex* out) const;

  Kernel* kernel_;
  SwappingMemoryManager* swap_;
  PowerCutHook power_cut_hook_;
  InjectorStats stats_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_SIM_FAULT_INJECTOR_H_

// Machine: the aggregate hardware state of one emulated 432 system.
//
// One Machine = one shared physical memory, one global object descriptor table, one
// addressing/protection unit, one interconnect, and one virtual clock. Processors, processes
// and the iMAX software layers all operate on a Machine. Constructing a Machine models
// power-on; the first software to run (the memory subsystem boot) hand-crafts the root
// storage resource object, just as iMAX's initialization built the initial memory image.

#ifndef IMAX432_SRC_SIM_MACHINE_H_
#define IMAX432_SRC_SIM_MACHINE_H_

#include <cstdint>

#include "src/arch/addressing_unit.h"
#include "src/arch/cycle_model.h"
#include "src/arch/object_table.h"
#include "src/arch/physical_memory.h"
#include "src/obs/histogram.h"
#include "src/obs/profiler.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/sim/bus.h"
#include "src/sim/event_queue.h"

namespace imax432 {

struct MachineConfig {
  uint32_t memory_bytes = 4 * 1024 * 1024;   // total physical memory
  uint32_t object_table_capacity = 65536;    // max simultaneously live objects
  int bus_channels = 1;                      // memory interconnect channels
  Cycles time_slice = cycles::kDefaultTimeSlice;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config)
      : config_(config),
        memory_(config.memory_bytes),
        table_(config.object_table_capacity),
        addressing_(&table_, &memory_),
        bus_(config.bus_channels) {}

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }
  PhysicalMemory& memory() { return memory_; }
  ObjectTable& table() { return table_; }
  AddressingUnit& addressing() { return addressing_; }
  Bus& bus() { return bus_; }
  EventQueue& events() { return events_; }

  // Observability state lives with the clock it timestamps against. Every subsystem holds a
  // Machine*, so no extra plumbing is needed to reach the recorder or the histograms.
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }
  LatencyHistograms& latency() { return latency_; }
  const LatencyHistograms& latency() const { return latency_; }
  CycleProfiler& profiler() { return profiler_; }
  const CycleProfiler& profiler() const { return profiler_; }
  SpanTracer& spans() { return spans_; }
  const SpanTracer& spans() const { return spans_; }

  Cycles now() const { return events_.now(); }

 private:
  MachineConfig config_;
  PhysicalMemory memory_;
  ObjectTable table_;
  AddressingUnit addressing_;
  Bus bus_;
  EventQueue events_;
  TraceRecorder trace_;
  LatencyHistograms latency_;
  CycleProfiler profiler_;
  SpanTracer spans_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_SIM_MACHINE_H_

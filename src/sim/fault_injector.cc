#include "src/sim/fault_injector.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/log.h"
#include "src/base/xorshift.h"
#include "src/exec/kernel.h"
#include "src/memory/swapping_memory_manager.h"

namespace imax432 {

const char* InjectionKindName(InjectionKind kind) {
  switch (kind) {
    case InjectionKind::kProcessorRetire: return "processor-retire";
    case InjectionKind::kProcessorStall: return "processor-stall";
    case InjectionKind::kDeviceTransient: return "device-transient";
    case InjectionKind::kDevicePermanent: return "device-permanent";
    case InjectionKind::kBitFlip: return "bit-flip";
    case InjectionKind::kChecksumCorrupt: return "checksum-corrupt";
    case InjectionKind::kBusDrop: return "bus-drop";
    case InjectionKind::kBusDuplicate: return "bus-duplicate";
    case InjectionKind::kPowerCut: return "power-cut";
    case InjectionKind::kKindCount: break;
  }
  return "unknown";
}

std::vector<InjectionEvent> FaultInjector::GenerateSchedule(uint64_t seed, uint32_t count,
                                                            Cycles horizon) {
  IMAX_CHECK(horizon > 0);
  Xorshift rng(seed);
  std::vector<InjectionEvent> schedule(count);
  for (InjectionEvent& event : schedule) {
    event.at = rng.NextBelow(horizon);
    // Draw from the original eight kinds only: kPowerCut sits just before kKindCount but
    // never appears in an in-run schedule (see the header), and excluding it here keeps
    // every pre-existing {seed, schedule} bit-identical.
    event.kind = static_cast<InjectionKind>(
        rng.NextBelow(static_cast<uint64_t>(InjectionKind::kPowerCut)));
    event.target = static_cast<uint32_t>(rng.Next());
    switch (event.kind) {
      case InjectionKind::kProcessorRetire:
        event.arg = 0;
        break;
      case InjectionKind::kProcessorStall:
        event.arg = static_cast<uint32_t>(rng.NextInRange(1'000, 50'000));
        break;
      case InjectionKind::kDeviceTransient:
        // 1..3 consecutive failures: within the swap layer's retry budget, so these always
        // recover via backoff rather than surfacing kDeviceError.
        event.arg = static_cast<uint32_t>(rng.NextInRange(1, 3));
        break;
      case InjectionKind::kDevicePermanent:
        // Heal delay. Long enough to exhaust retries on an unlucky transfer (surfacing
        // kDeviceError to the fault service), short enough that the campaign recovers.
        event.arg = static_cast<uint32_t>(rng.NextInRange(50'000, 200'000));
        break;
      case InjectionKind::kBitFlip:
      case InjectionKind::kChecksumCorrupt:
        event.arg = static_cast<uint32_t>(rng.Next());
        break;
      case InjectionKind::kBusDrop:
      case InjectionKind::kBusDuplicate:
        event.arg = static_cast<uint32_t>(rng.NextInRange(5'000, 50'000));
        break;
      case InjectionKind::kPowerCut:
      case InjectionKind::kKindCount:
        break;
    }
  }
  // Stable: events drawn earlier fire first on timestamp ties, part of the replay contract.
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const InjectionEvent& a, const InjectionEvent& b) { return a.at < b.at; });
  return schedule;
}

std::vector<InjectionEvent> FaultInjector::GenerateCrashSchedule(uint64_t seed, uint32_t count,
                                                                 uint32_t power_cuts,
                                                                 Cycles horizon) {
  IMAX_CHECK(power_cuts <= count);
  std::vector<InjectionEvent> schedule = GenerateSchedule(seed, count - power_cuts, horizon);
  // An independent stream (seed XOR "PWRC") draws the cuts, so the in-run events above are
  // byte-for-byte the events a cut-free GenerateSchedule(seed, count - power_cuts, horizon)
  // would produce.
  Xorshift rng(seed ^ 0x50575243u);
  for (uint32_t i = 0; i < power_cuts; ++i) {
    InjectionEvent event;
    event.at = rng.NextBelow(horizon);
    event.kind = InjectionKind::kPowerCut;
    event.target = static_cast<uint32_t>(rng.Next());
    event.arg = static_cast<uint32_t>(rng.Next());  // torn-tail selector
    schedule.push_back(event);
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const InjectionEvent& a, const InjectionEvent& b) { return a.at < b.at; });
  return schedule;
}

void FaultInjector::Arm(const std::vector<InjectionEvent>& schedule) {
  EventQueue& events = kernel_->machine().events();
  for (const InjectionEvent& event : schedule) {
    events.ScheduleAt(std::max(events.now(), event.at), [this, event] { Apply(event); });
  }
}

bool FaultInjector::PickProcessor(uint32_t target, bool keep_one_alive, uint16_t* out) const {
  std::vector<uint16_t> candidates;
  for (int i = 0; i < kernel_->processor_count(); ++i) {
    if (!kernel_->processor_retired(i)) {
      candidates.push_back(static_cast<uint16_t>(i));
    }
  }
  // Never retire the last GDP: a dead system recovers nothing. (Stalls are fine — they end.)
  if (candidates.empty() || (keep_one_alive && candidates.size() <= 1)) {
    return false;
  }
  *out = candidates[target % candidates.size()];
  return true;
}

bool FaultInjector::PickGenericObject(uint32_t target, bool needs_data,
                                      ObjectIndex* out) const {
  const ObjectTable& table = kernel_->machine().table();
  std::vector<ObjectIndex> candidates;
  for (ObjectIndex index = 0; index < table.capacity(); ++index) {
    const ObjectDescriptor& descriptor = table.At(index);
    // Only plain generic objects: corrupting a kernel system object (process, context,
    // port) would model a fault class the 432's checked-against-the-descriptor microcode
    // paths don't survive, and quarantine deliberately applies to generic objects only.
    if (!descriptor.allocated || descriptor.type != SystemType::kGeneric ||
        descriptor.quarantined) {
      continue;
    }
    if (needs_data && (descriptor.data_length == 0 || descriptor.swapped_out)) {
      continue;
    }
    candidates.push_back(index);
  }
  if (candidates.empty()) {
    return false;
  }
  *out = candidates[target % candidates.size()];
  return true;
}

bool FaultInjector::Apply(const InjectionEvent& event) {
  Machine& machine = kernel_->machine();
  bool applied = false;
  uint32_t concrete = event.target;  // refined to the chosen target where one is picked

  switch (event.kind) {
    case InjectionKind::kProcessorRetire: {
      uint16_t id = 0;
      if (PickProcessor(event.target, /*keep_one_alive=*/true, &id)) {
        applied = kernel_->RetireProcessor(id).ok();
        concrete = id;
      }
      break;
    }
    case InjectionKind::kProcessorStall: {
      uint16_t id = 0;
      if (PickProcessor(event.target, /*keep_one_alive=*/false, &id)) {
        applied = kernel_->StallProcessor(id, event.arg).ok();
        concrete = id;
      }
      break;
    }
    case InjectionKind::kDeviceTransient:
      if (swap_ != nullptr) {
        swap_->mutable_backing_store().InjectTransientFailures(event.arg == 0 ? 1 : event.arg);
        applied = true;
      }
      break;
    case InjectionKind::kDevicePermanent:
      if (swap_ != nullptr) {
        swap_->mutable_backing_store().SetPermanentFailure(true);
        if (event.arg > 0) {
          SwappingMemoryManager* swap = swap_;
          machine.events().ScheduleAfter(event.arg, [swap] {
            swap->mutable_backing_store().SetPermanentFailure(false);
          });
        }
        applied = true;
      }
      break;
    case InjectionKind::kBitFlip: {
      ObjectIndex index = 0;
      if (PickGenericObject(event.target, /*needs_data=*/true, &index)) {
        const ObjectDescriptor& descriptor = machine.table().At(index);
        uint32_t offset = (event.arg / 8) % descriptor.data_length;
        uint8_t byte = 0;
        IMAX_CHECK(machine.memory().ReadBlock(descriptor.data_base + offset, &byte, 1).ok());
        byte ^= static_cast<uint8_t>(1u << (event.arg % 8));
        IMAX_CHECK(machine.memory().WriteBlock(descriptor.data_base + offset, &byte, 1).ok());
        // No data_epoch bump: this is silent corruption behind the addressing unit's back,
        // exactly the case the patrol's shadow CRC exists to catch.
        concrete = index;
        applied = true;
      }
      break;
    }
    case InjectionKind::kChecksumCorrupt: {
      ObjectIndex index = 0;
      if (PickGenericObject(event.target, /*needs_data=*/false, &index)) {
        machine.table().At(index).checksum ^= (event.arg | 1u);
        concrete = index;
        applied = true;
      }
      break;
    }
    case InjectionKind::kBusDrop:
    case InjectionKind::kBusDuplicate: {
      Cycles window = event.arg == 0 ? 1 : event.arg;
      machine.bus().SetFaultWindow(machine.now(), machine.now() + window,
                                   event.kind == InjectionKind::kBusDrop);
      applied = true;
      break;
    }
    case InjectionKind::kPowerCut:
      // The driver that owns both the System and the stable device applies the cut: it
      // tears the journal tail at event.arg and destroys the System. The injector only
      // brokers the event so stats and the kInjection trace record stay uniform.
      if (power_cut_hook_) {
        applied = power_cut_hook_(event.arg);
      }
      break;
    case InjectionKind::kKindCount:
      break;
  }

  if (applied) {
    ++stats_.fired;
    ++stats_.per_kind[static_cast<size_t>(event.kind)];
    machine.trace().Emit(TraceEventKind::kInjection, machine.now(), kTraceNoProcessor,
                         kTraceNoProcess, static_cast<uint32_t>(event.kind), concrete,
                         event.arg);
    IMAX_LOG_DEBUG("injector: %s target=%u arg=%u", InjectionKindName(event.kind), concrete,
                   event.arg);
  } else {
    ++stats_.skipped;
  }
  return applied;
}

}  // namespace imax432

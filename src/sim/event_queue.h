// EventQueue: the discrete-event engine that gives the emulator its virtual time base.
//
// Everything that "happens" in the machine — instruction completions, dispatches, device
// completions, GC daemon quanta — is an event at a cycle timestamp. Events at equal times run
// in scheduling order (a monotone sequence number breaks ties), so simulations are bit-for-bit
// reproducible regardless of host scheduling. "Parallel" processors are interleaved in virtual
// time at instruction granularity, which is exactly the tightly-coupled shared-memory model
// the 432 exposes to software.

#ifndef IMAX432_SRC_SIM_EVENT_QUEUE_H_
#define IMAX432_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/arch/types.h"
#include "src/base/check.h"

namespace imax432 {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` to run at absolute virtual time `when` (>= now()).
  void ScheduleAt(Cycles when, Callback fn) {
    IMAX_CHECK(when >= now_);
    heap_.push(Event{when, next_seq_++, std::move(fn)});
  }

  // Schedules `fn` to run `delay` cycles from now.
  void ScheduleAfter(Cycles delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Runs events until the queue drains. Returns the number of events processed.
  uint64_t RunUntilIdle() { return RunUntil(~Cycles{0}); }

  // Runs events with time <= deadline; the clock never passes an event it did not run.
  uint64_t RunUntil(Cycles deadline) {
    uint64_t processed = 0;
    while (!heap_.empty() && heap_.top().time <= deadline) {
      // Copy out before pop so the callback may schedule new events freely.
      Event event = heap_.top();
      heap_.pop();
      IMAX_DCHECK(event.time >= now_);
      now_ = event.time;
      event.fn();
      ++processed;
    }
    return processed;
  }

  // Runs at most `limit` events (safety valve for tests of potentially-divergent programs).
  uint64_t RunBounded(uint64_t limit) {
    uint64_t processed = 0;
    while (processed < limit && !heap_.empty()) {
      Event event = heap_.top();
      heap_.pop();
      now_ = event.time;
      event.fn();
      ++processed;
    }
    return processed;
  }

  Cycles now() const { return now_; }
  bool idle() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    Cycles time;
    uint64_t seq;
    Callback fn;

    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  Cycles now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_SIM_EVENT_QUEUE_H_

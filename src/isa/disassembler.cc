#include "src/isa/disassembler.h"

#include <cstdio>

namespace imax432 {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kCompute: return "compute";
    case Opcode::kLoadImm: return "load_imm";
    case Opcode::kMove: return "move";
    case Opcode::kAdd: return "add";
    case Opcode::kAddImm: return "add_imm";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kLoadData: return "load_data";
    case Opcode::kStoreData: return "store_data";
    case Opcode::kLoadDataIndexed: return "load_data_x";
    case Opcode::kStoreDataIndexed: return "store_data_x";
    case Opcode::kMoveAd: return "move_ad";
    case Opcode::kClearAd: return "clear_ad";
    case Opcode::kLoadAd: return "load_ad";
    case Opcode::kStoreAd: return "store_ad";
    case Opcode::kLoadAdIndexed: return "load_ad_x";
    case Opcode::kStoreAdIndexed: return "store_ad_x";
    case Opcode::kRestrictRights: return "restrict";
    case Opcode::kAdIsNull: return "ad_is_null";
    case Opcode::kCreateObject: return "create_object";
    case Opcode::kDestroyObject: return "destroy_object";
    case Opcode::kCreateSro: return "create_sro";
    case Opcode::kDestroySro: return "destroy_sro";
    case Opcode::kSend: return "send";
    case Opcode::kReceive: return "receive";
    case Opcode::kCondSend: return "cond_send";
    case Opcode::kCondReceive: return "cond_receive";
    case Opcode::kCall: return "call";
    case Opcode::kCallLocal: return "call_local";
    case Opcode::kReturn: return "return";
    case Opcode::kBranch: return "branch";
    case Opcode::kBranchIfZero: return "br_zero";
    case Opcode::kBranchIfNotZero: return "br_nonzero";
    case Opcode::kBranchIfLess: return "br_less";
    case Opcode::kHalt: return "halt";
    case Opcode::kNative: return "native";
    case Opcode::kOsCall: return "os_call";
  }
  return "?";
}

std::string DisassembleInstruction(const Instruction& in) {
  char buffer[96];
  const char* name = OpcodeName(in.op);
  switch (in.op) {
    case Opcode::kCompute:
      std::snprintf(buffer, sizeof(buffer), "%-14s %u cycles", name, in.imm);
      break;
    case Opcode::kLoadImm:
      std::snprintf(buffer, sizeof(buffer), "%-14s r%u, %llu", name, in.a,
                    static_cast<unsigned long long>(in.imm64));
      break;
    case Opcode::kMove:
    case Opcode::kAdIsNull:
      std::snprintf(buffer, sizeof(buffer), "%-14s r%u, %c%u", name, in.a,
                    in.op == Opcode::kAdIsNull ? 'a' : 'r', in.b);
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
      std::snprintf(buffer, sizeof(buffer), "%-14s r%u, r%u, r%u", name, in.a, in.b, in.c);
      break;
    case Opcode::kAddImm:
      std::snprintf(buffer, sizeof(buffer), "%-14s r%u, r%u, %u", name, in.a, in.b, in.imm);
      break;
    case Opcode::kLoadData:
      std::snprintf(buffer, sizeof(buffer), "%-14s r%u, [a%u + %u]:%u", name, in.a, in.b,
                    in.imm, in.c);
      break;
    case Opcode::kStoreData:
      std::snprintf(buffer, sizeof(buffer), "%-14s [a%u + %u]:%u, r%u", name, in.a, in.imm,
                    in.c, in.b);
      break;
    case Opcode::kLoadDataIndexed:
      std::snprintf(buffer, sizeof(buffer), "%-14s r%u, [a%u + r%u + %u]", name, in.a, in.b,
                    in.c, in.imm);
      break;
    case Opcode::kStoreDataIndexed:
      std::snprintf(buffer, sizeof(buffer), "%-14s [a%u + r%u + %u], r%u", name, in.a, in.c,
                    in.imm, in.b);
      break;
    case Opcode::kMoveAd:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u, a%u", name, in.a, in.b);
      break;
    case Opcode::kClearAd:
    case Opcode::kDestroyObject:
    case Opcode::kDestroySro:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u", name, in.a);
      break;
    case Opcode::kLoadAd:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u, a%u[%u]", name, in.a, in.b, in.imm);
      break;
    case Opcode::kStoreAd:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u[%u], a%u", name, in.a, in.imm, in.b);
      break;
    case Opcode::kLoadAdIndexed:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u, a%u[r%u + %u]", name, in.a, in.b,
                    in.c, in.imm);
      break;
    case Opcode::kStoreAdIndexed:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u[r%u + %u], a%u", name, in.a, in.c,
                    in.imm, in.b);
      break;
    case Opcode::kRestrictRights:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u, mask=0x%x", name, in.a, in.imm);
      break;
    case Opcode::kCreateObject:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u, sro=a%u, %u bytes, %u slots", name,
                    in.a, in.b, in.imm, in.c);
      break;
    case Opcode::kCreateSro:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u, parent=a%u, %u bytes", name, in.a,
                    in.b, in.imm);
      break;
    case Opcode::kSend:
      std::snprintf(buffer, sizeof(buffer), "%-14s port=a%u, msg=a%u", name, in.a, in.b);
      break;
    case Opcode::kReceive:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u, port=a%u", name, in.a, in.b);
      break;
    case Opcode::kCondSend:
      std::snprintf(buffer, sizeof(buffer), "%-14s port=a%u, msg=a%u, ok->r%u", name, in.a,
                    in.b, in.c);
      break;
    case Opcode::kCondReceive:
      std::snprintf(buffer, sizeof(buffer), "%-14s a%u, port=a%u, ok->r%u", name, in.a,
                    in.b, in.c);
      break;
    case Opcode::kCall:
      std::snprintf(buffer, sizeof(buffer), "%-14s domain=a%u, entry=%u", name, in.a, in.imm);
      break;
    case Opcode::kCallLocal:
    case Opcode::kBranch:
    case Opcode::kOsCall:
    case Opcode::kNative:
      std::snprintf(buffer, sizeof(buffer), "%-14s %u", name, in.imm);
      break;
    case Opcode::kBranchIfZero:
    case Opcode::kBranchIfNotZero:
      std::snprintf(buffer, sizeof(buffer), "%-14s r%u, -> %u", name, in.a, in.imm);
      break;
    case Opcode::kBranchIfLess:
      std::snprintf(buffer, sizeof(buffer), "%-14s r%u < r%u, -> %u", name, in.a, in.b,
                    in.imm);
      break;
    case Opcode::kReturn:
    case Opcode::kHalt:
      std::snprintf(buffer, sizeof(buffer), "%s", name);
      break;
  }
  return buffer;
}

std::string DisassembleInstruction(const Instruction& in, ObjectIndex resolved_port,
                                   const SymbolTable* symbols) {
  std::string text = DisassembleInstruction(in);
  const bool takes_port = in.op == Opcode::kSend || in.op == Opcode::kReceive ||
                          in.op == Opcode::kCondSend || in.op == Opcode::kCondReceive;
  if (!takes_port || resolved_port == kInvalidObjectIndex) return text;
  text += " ; port " + std::to_string(resolved_port);
  if (symbols != nullptr) {
    if (const std::string* port_name = symbols->Find(resolved_port)) {
      text += " '" + *port_name + "'";
    }
  }
  return text;
}

std::string Disassemble(const Program& program) {
  std::string out;
  out += "; program \"" + program.name() + "\", " + std::to_string(program.size()) +
         " instructions\n";
  char prefix[16];
  for (uint32_t pc = 0; pc < program.size(); ++pc) {
    std::snprintf(prefix, sizeof(prefix), "%04u  ", pc);
    out += prefix;
    out += DisassembleInstruction(program.at(pc));
    out += '\n';
  }
  return out;
}

}  // namespace imax432

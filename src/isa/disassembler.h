// Disassembler: renders Program instruction streams as readable listings.
//
// Used by diagnostics, tests and anyone debugging a workload program. The mnemonics follow
// the assembler's method names; operands print in the order the Assembler takes them.

#ifndef IMAX432_SRC_ISA_DISASSEMBLER_H_
#define IMAX432_SRC_ISA_DISASSEMBLER_H_

#include <string>
#include <unordered_map>

#include "src/arch/types.h"
#include "src/isa/program.h"

namespace imax432 {

// Maps object indices to human names ("console.requests", "ring.0"). Ports, domains and
// instruction segments get named by whoever creates them (imax_lint names its boot topology;
// tests name their fixtures); the disassembler and the system analyzer render the names in
// diagnostics so a cycle report reads as port names, not bare table indices.
class SymbolTable {
 public:
  void Name(ObjectIndex index, std::string name) { names_[index] = std::move(name); }
  // Drops the name for a reclaimed object, so a reused index never inherits a stale label.
  void Forget(ObjectIndex index) { names_.erase(index); }
  // Null when the object has no recorded name.
  const std::string* Find(ObjectIndex index) const {
    auto it = names_.find(index);
    return it == names_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<ObjectIndex, std::string> names_;
};

// One instruction, e.g. "add      r3, r1, r2" or "send     a2, a4".
std::string DisassembleInstruction(const Instruction& instruction);

// As above, but when `instruction` takes a port operand that external analysis resolved to a
// concrete object, appends a "; port N" note — with the port's name when `symbols` knows it:
//   "send     port=a2, msg=a4 ; port 12 'ring.0'". Operand registers alone cannot be
// resolved statically, so the resolution comes from the effect analysis (analysis/effects.h).
std::string DisassembleInstruction(const Instruction& instruction, ObjectIndex resolved_port,
                                   const SymbolTable* symbols);

// The whole program, one line per instruction with pc prefixes:
//   0000  load_imm r0, 0
//   0001  send     a2, a4
std::string Disassemble(const Program& program);

// The mnemonic for an opcode ("send", "create_object", ...).
const char* OpcodeName(Opcode op);

}  // namespace imax432

#endif  // IMAX432_SRC_ISA_DISASSEMBLER_H_

// Disassembler: renders Program instruction streams as readable listings.
//
// Used by diagnostics, tests and anyone debugging a workload program. The mnemonics follow
// the assembler's method names; operands print in the order the Assembler takes them.

#ifndef IMAX432_SRC_ISA_DISASSEMBLER_H_
#define IMAX432_SRC_ISA_DISASSEMBLER_H_

#include <string>

#include "src/isa/program.h"

namespace imax432 {

// One instruction, e.g. "add      r3, r1, r2" or "send     a2, a4".
std::string DisassembleInstruction(const Instruction& instruction);

// The whole program, one line per instruction with pc prefixes:
//   0000  load_imm r0, 0
//   0001  send     a2, a4
std::string Disassemble(const Program& program);

// The mnemonic for an opcode ("send", "create_object", ...).
const char* OpcodeName(Opcode op);

}  // namespace imax432

#endif  // IMAX432_SRC_ISA_DISASSEMBLER_H_

// The instruction set of the emulated 432 GDP, and Program, its container.
//
// The real 432 executed a bit-aligned variable-length instruction stream; reproducing that
// encoding adds nothing to the paper's claims, so instructions here are fixed-size records.
// What *is* reproduced carefully is the instruction repertoire's shape: ordinary data and
// branch operations, access-descriptor manipulation (with the protection side effects in
// AddressingUnit), and the 432's signature *high-level* instructions — create object, send,
// receive, inter-domain call — each charged its microcoded cost from cycle_model.h.
//
// kNative embeds a C++ callback in a program; iMAX system daemons (the garbage collector,
// device servers, schedulers) are ordinary processes whose programs are mostly native steps.
// This mirrors iMAX being "implemented entirely in a superset of Ada": system code runs under
// exactly the same process/dispatching regime as user code.

#ifndef IMAX432_SRC_ISA_PROGRAM_H_
#define IMAX432_SRC_ISA_PROGRAM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/arch/access_descriptor.h"
#include "src/arch/types.h"
#include "src/base/result.h"

namespace imax432 {

class ExecutionContext;  // defined in src/exec/execution_context.h

enum class Opcode : uint8_t {
  // Data operations (registers are per-context: 8 data registers r0..r7).
  kCompute,         // consume `imm` cycles of pure computation
  kLoadImm,         // r[a] = imm64
  kMove,            // r[a] = r[b]
  kAdd,             // r[a] = r[b] + r[c]
  kAddImm,          // r[a] = r[b] + imm (imm sign-extended from 32 bits)
  kSub,             // r[a] = r[b] - r[c]
  kMul,             // r[a] = r[b] * r[c]
  kLoadData,        // r[a] = data part of object at adreg[b], offset imm, width c bytes
  kStoreData,       // data part of object at adreg[a], offset imm, width c bytes = r[b]
  kLoadDataIndexed, // r[a] = data[adreg[b]], offset r[c] + imm, width 8
  kStoreDataIndexed,// data[adreg[a]], offset r[c] + imm, width 8 = r[b]

  // Access descriptor operations (8 AD registers a0..a7 per context).
  kMoveAd,          // adreg[a] = adreg[b]
  kClearAd,         // adreg[a] = null
  kLoadAd,          // adreg[a] = access part of object at adreg[b], slot imm
  kStoreAd,         // access part of object at adreg[a], slot imm = adreg[b]
  kLoadAdIndexed,   // adreg[a] = access[adreg[b]], slot r[c] + imm
  kStoreAdIndexed,  // access[adreg[a]], slot r[c] + imm = adreg[b]
  kRestrictRights,  // adreg[a] = adreg[a] restricted to rights mask imm
  kAdIsNull,        // r[a] = adreg[b].is_null() ? 1 : 0

  // High-level object instructions.
  kCreateObject,    // adreg[a] = create generic object from SRO adreg[b]; data bytes imm,
                    // access slots c; new AD carries all generic rights
  kDestroyObject,   // destroy object at adreg[a] (requires delete rights)
  kCreateSro,       // adreg[a] = create local SRO from parent adreg[b]; bytes imm; the new
                    // SRO allocates at (current context level + 1)
  kDestroySro,      // destroy SRO at adreg[a] and everything allocated from it

  // Interprocess communication.
  kSend,            // send adreg[b] to port adreg[a]; blocks when the port is full
  kReceive,         // adreg[a] = message from port adreg[b]; blocks when empty
  kCondSend,        // r[c] = 1 and send if room, else r[c] = 0 (never blocks)
  kCondReceive,     // r[c] = 1 and adreg[a] = message if available, else r[c] = 0

  // Control transfer.
  kCall,            // inter-domain call: domain adreg[a], entry index imm
  kCallLocal,       // intra-domain call: entry index imm of the current domain
  kReturn,          // return to caller context; top-level return terminates the process
  kBranch,          // pc = imm
  kBranchIfZero,    // if r[a] == 0: pc = imm
  kBranchIfNotZero, // if r[a] != 0: pc = imm
  kBranchIfLess,    // if r[a] < r[b]: pc = imm (unsigned)
  kHalt,            // terminate the process

  // Escapes.
  kNative,          // run native step `imm` of this program
  kOsCall,          // invoke registered kernel service imm (arguments in r/a registers)
};

struct Instruction {
  Opcode op = Opcode::kHalt;
  uint8_t a = 0;
  uint8_t b = 0;
  uint8_t c = 0;
  uint32_t imm = 0;
  uint64_t imm64 = 0;
};

// Outcome of one native step. The interpreter applies the action after charging the cycles.
struct NativeResult {
  enum class Action : uint8_t {
    kContinue,      // fall through to the next instruction
    kJump,          // set pc = jump_target
    kYield,         // reenter the dispatching mix (voluntary time-slice end)
    kHalt,          // terminate the process
    kBlockReceive,  // receive from `port` into adreg `dest_adreg`, blocking if empty
  };
  Action action = Action::kContinue;
  uint32_t jump_target = 0;
  AccessDescriptor port;
  uint8_t dest_adreg = 0;
  Cycles compute = 0;  // cycles of computation this step performed
  Cycles bus = 0;      // interconnect cycles this step performed
};

using NativeFn = std::function<Result<NativeResult>(ExecutionContext&)>;

// Number of data and AD registers per context. Register 7 of each file is the argument /
// return register of the calling convention; AD register 6 is set to the current domain on
// every inter-domain call.
inline constexpr uint8_t kNumDataRegs = 8;
inline constexpr uint8_t kNumAdRegs = 8;
inline constexpr uint8_t kArgReg = 7;
inline constexpr uint8_t kArgAdReg = 7;
inline constexpr uint8_t kDomainAdReg = 6;

class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Instruction>& code() const { return code_; }
  const Instruction& at(uint32_t pc) const { return code_[pc]; }
  uint32_t size() const { return static_cast<uint32_t>(code_.size()); }

  uint32_t Append(const Instruction& instruction) {
    code_.push_back(instruction);
    return static_cast<uint32_t>(code_.size() - 1);
  }

  void Patch(uint32_t index, uint32_t imm) { code_[index].imm = imm; }

  uint32_t AddNative(NativeFn fn) {
    natives_.push_back(std::move(fn));
    return static_cast<uint32_t>(natives_.size() - 1);
  }
  const NativeFn* native(uint32_t index) const {
    return index < natives_.size() ? &natives_[index] : nullptr;
  }

 private:
  std::string name_;
  std::vector<Instruction> code_;
  std::vector<NativeFn> natives_;
};

using ProgramRef = std::shared_ptr<const Program>;

}  // namespace imax432

#endif  // IMAX432_SRC_ISA_PROGRAM_H_

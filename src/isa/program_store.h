// ProgramStore: instruction segments.
//
// Code on the 432 lives in instruction-segment objects referenced from domains and contexts.
// The emulator keeps the decoded instruction vector in a side table keyed by the instruction
// segment's object index; the object itself (type kInstructionSegment) carries the
// architectural identity — rights, level, GC reachability — while the store carries content.

#ifndef IMAX432_SRC_ISA_PROGRAM_STORE_H_
#define IMAX432_SRC_ISA_PROGRAM_STORE_H_

#include <functional>
#include <map>

#include "src/isa/program.h"
#include "src/memory/memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {

class ProgramStore {
 public:
  ProgramStore(Machine* machine, MemoryManager* memory) : machine_(machine), memory_(memory) {}

  // Creates an instruction-segment object for `program` and returns an AD for it. The data
  // part holds the instruction count (read-only metadata for diagnostics).
  Result<AccessDescriptor> Register(ProgramRef program) {
    IMAX_ASSIGN_OR_RETURN(
        AccessDescriptor ad,
        memory_->CreateObject(memory_->global_heap(), SystemType::kInstructionSegment,
                              /*data_bytes=*/8, /*access_slots=*/0, rights::kRead));
    IMAX_RETURN_IF_FAULT(machine_->memory().Write(
        machine_->table().At(ad.index()).data_base, 4, program->size()));
    programs_[ad.index()] = std::move(program);
    ++version_;
    return ad;
  }

  // Looks up the program behind an instruction-segment AD.
  Result<ProgramRef> Fetch(const AccessDescriptor& ad) const {
    IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                          machine_->table().Resolve(ad));
    if (descriptor->type != SystemType::kInstructionSegment) {
      return Fault::kTypeMismatch;
    }
    auto it = programs_.find(ad.index());
    if (it == programs_.end()) {
      return Fault::kNotFound;
    }
    return it->second;
  }

  // Replaces the program behind a live instruction segment in place (hot-patching a loaded
  // program without changing its architectural identity). Staleness contract: bumps BOTH
  // invalidation keys the caches consult — the store version() (xlat program payloads and
  // decode entries key on it) and the segment descriptor's data_epoch (the per-object
  // content witness) — plus rewrites the instruction-count metadata. Missing either bump
  // would let a cached translation or decoded superblock keep serving the old code.
  Status Replace(const AccessDescriptor& ad, ProgramRef program) {
    IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * descriptor, machine_->table().Resolve(ad));
    if (descriptor->type != SystemType::kInstructionSegment) {
      return Fault::kTypeMismatch;
    }
    auto it = programs_.find(ad.index());
    if (it == programs_.end()) {
      return Fault::kNotFound;
    }
    IMAX_RETURN_IF_FAULT(
        machine_->memory().Write(descriptor->data_base, 4, program->size()));
    it->second = std::move(program);
    ++version_;
    ++descriptor->data_epoch;
    // Static analysis summarized the OLD code: let the owner retract it (the kernel wires
    // this to ForgetProgramAnalysis, so elision certificates computed against the replaced
    // program can never be folded into a decode of the new one).
    if (replace_hook_) replace_hook_(ad.index());
    return Status::Ok();
  }

  // Called after every successful Replace with the segment's object index.
  void SetReplaceHook(std::function<void(ObjectIndex)> hook) {
    replace_hook_ = std::move(hook);
  }

  // Drops the program content of a reclaimed instruction segment (called by the GC).
  void Forget(ObjectIndex index) {
    if (programs_.erase(index) != 0) ++version_;
  }

  // Raw pointer lookup for the kernel's translation-cache fill path: no Resolve, no
  // shared_ptr traffic. The pointer stays valid until Forget drops the segment — which
  // bumps version(), killing every cache entry that captured it.
  const Program* Find(ObjectIndex index) const {
    auto it = programs_.find(index);
    return it == programs_.end() ? nullptr : it->second.get();
  }

  // Bumped on every Register / successful Forget. Translation-cache program payloads are
  // keyed on it: any store mutation invalidates them wholesale.
  uint64_t version() const { return version_; }

  // Visits every registered program as (segment object index, program) — offline tools like
  // imax_lint use this to sweep all code loaded into a running system.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [index, program] : programs_) {
      fn(index, *program);
    }
  }

 private:
  Machine* machine_;
  MemoryManager* memory_;
  std::map<ObjectIndex, ProgramRef> programs_;
  uint64_t version_ = 0;
  std::function<void(ObjectIndex)> replace_hook_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_ISA_PROGRAM_STORE_H_

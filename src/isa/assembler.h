// Assembler: a fluent builder for Program objects.
//
// Workload programs for the examples, tests and benchmarks are written against this builder.
// Branch targets use forward-patchable labels. The builder returns *this so code reads like
// an assembly listing:
//
//   Assembler a("producer");
//   auto loop = a.NewLabel();
//   a.LoadImm(0, 0)
//    .Bind(loop)
//    .Send(/*port=*/0, /*msg=*/1)
//    .AddImm(0, 0, 1)
//    .BranchIfLess(0, 2, loop)
//    .Halt();
//   ProgramRef program = a.Build();

#ifndef IMAX432_SRC_ISA_ASSEMBLER_H_
#define IMAX432_SRC_ISA_ASSEMBLER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/isa/program.h"

namespace imax432 {

class Assembler {
 public:
  using Label = uint32_t;

  explicit Assembler(std::string name) : program_(std::make_shared<Program>(std::move(name))) {}

  // --- Labels ---
  Label NewLabel() {
    labels_.push_back(kUnbound);
    return static_cast<Label>(labels_.size() - 1);
  }

  Assembler& Bind(Label label) {
    IMAX_CHECK(labels_[label] == kUnbound);
    labels_[label] = program_->size();
    return *this;
  }

  // --- Data operations ---
  Assembler& Compute(uint32_t cycle_count) { return Emit({Opcode::kCompute, 0, 0, 0, cycle_count, 0}); }
  Assembler& LoadImm(uint8_t r, uint64_t value) {
    return Emit({Opcode::kLoadImm, r, 0, 0, 0, value});
  }
  Assembler& Move(uint8_t dst, uint8_t src) { return Emit({Opcode::kMove, dst, src, 0, 0, 0}); }
  Assembler& Add(uint8_t dst, uint8_t lhs, uint8_t rhs) {
    return Emit({Opcode::kAdd, dst, lhs, rhs, 0, 0});
  }
  Assembler& AddImm(uint8_t dst, uint8_t src, uint32_t value) {
    return Emit({Opcode::kAddImm, dst, src, 0, value, 0});
  }
  Assembler& Sub(uint8_t dst, uint8_t lhs, uint8_t rhs) {
    return Emit({Opcode::kSub, dst, lhs, rhs, 0, 0});
  }
  Assembler& Mul(uint8_t dst, uint8_t lhs, uint8_t rhs) {
    return Emit({Opcode::kMul, dst, lhs, rhs, 0, 0});
  }
  Assembler& LoadData(uint8_t r, uint8_t ad, uint32_t offset, uint8_t width = 8) {
    return Emit({Opcode::kLoadData, r, ad, width, offset, 0});
  }
  Assembler& StoreData(uint8_t ad, uint8_t r, uint32_t offset, uint8_t width = 8) {
    return Emit({Opcode::kStoreData, ad, r, width, offset, 0});
  }
  Assembler& LoadDataIndexed(uint8_t r, uint8_t ad, uint8_t index_reg, uint32_t base = 0) {
    return Emit({Opcode::kLoadDataIndexed, r, ad, index_reg, base, 0});
  }
  Assembler& StoreDataIndexed(uint8_t ad, uint8_t r, uint8_t index_reg, uint32_t base = 0) {
    return Emit({Opcode::kStoreDataIndexed, ad, r, index_reg, base, 0});
  }

  // --- Access descriptor operations ---
  Assembler& MoveAd(uint8_t dst, uint8_t src) { return Emit({Opcode::kMoveAd, dst, src, 0, 0, 0}); }
  Assembler& ClearAd(uint8_t ad) { return Emit({Opcode::kClearAd, ad, 0, 0, 0, 0}); }
  Assembler& LoadAd(uint8_t dst, uint8_t container, uint32_t slot) {
    return Emit({Opcode::kLoadAd, dst, container, 0, slot, 0});
  }
  Assembler& StoreAd(uint8_t container, uint8_t src, uint32_t slot) {
    return Emit({Opcode::kStoreAd, container, src, 0, slot, 0});
  }
  Assembler& LoadAdIndexed(uint8_t dst, uint8_t container, uint8_t index_reg,
                           uint32_t base = 0) {
    return Emit({Opcode::kLoadAdIndexed, dst, container, index_reg, base, 0});
  }
  Assembler& StoreAdIndexed(uint8_t container, uint8_t src, uint8_t index_reg,
                            uint32_t base = 0) {
    return Emit({Opcode::kStoreAdIndexed, container, src, index_reg, base, 0});
  }
  Assembler& RestrictRights(uint8_t ad, RightsMask keep) {
    return Emit({Opcode::kRestrictRights, ad, 0, 0, keep, 0});
  }
  Assembler& AdIsNull(uint8_t r, uint8_t ad) { return Emit({Opcode::kAdIsNull, r, ad, 0, 0, 0}); }

  // --- High-level object instructions ---
  Assembler& CreateObject(uint8_t dst_ad, uint8_t sro_ad, uint32_t data_bytes,
                          uint8_t access_slots = 0) {
    return Emit({Opcode::kCreateObject, dst_ad, sro_ad, access_slots, data_bytes, 0});
  }
  Assembler& DestroyObject(uint8_t ad) { return Emit({Opcode::kDestroyObject, ad, 0, 0, 0, 0}); }
  Assembler& CreateSro(uint8_t dst_ad, uint8_t parent_ad, uint32_t bytes) {
    return Emit({Opcode::kCreateSro, dst_ad, parent_ad, 0, bytes, 0});
  }
  Assembler& DestroySro(uint8_t ad) { return Emit({Opcode::kDestroySro, ad, 0, 0, 0, 0}); }

  // --- Interprocess communication ---
  Assembler& Send(uint8_t port_ad, uint8_t msg_ad) {
    return Emit({Opcode::kSend, port_ad, msg_ad, 0, 0, 0});
  }
  Assembler& Receive(uint8_t dst_ad, uint8_t port_ad) {
    return Emit({Opcode::kReceive, dst_ad, port_ad, 0, 0, 0});
  }
  Assembler& CondSend(uint8_t port_ad, uint8_t msg_ad, uint8_t result_reg) {
    return Emit({Opcode::kCondSend, port_ad, msg_ad, result_reg, 0, 0});
  }
  Assembler& CondReceive(uint8_t dst_ad, uint8_t port_ad, uint8_t result_reg) {
    return Emit({Opcode::kCondReceive, dst_ad, port_ad, result_reg, 0, 0});
  }

  // --- Control transfer ---
  Assembler& Call(uint8_t domain_ad, uint32_t entry) {
    return Emit({Opcode::kCall, domain_ad, 0, 0, entry, 0});
  }
  Assembler& CallLocal(uint32_t entry) { return Emit({Opcode::kCallLocal, 0, 0, 0, entry, 0}); }
  Assembler& Return() { return Emit({Opcode::kReturn, 0, 0, 0, 0, 0}); }
  Assembler& Branch(Label label) { return EmitBranch({Opcode::kBranch, 0, 0, 0, 0, 0}, label); }
  Assembler& BranchIfZero(uint8_t r, Label label) {
    return EmitBranch({Opcode::kBranchIfZero, r, 0, 0, 0, 0}, label);
  }
  Assembler& BranchIfNotZero(uint8_t r, Label label) {
    return EmitBranch({Opcode::kBranchIfNotZero, r, 0, 0, 0, 0}, label);
  }
  Assembler& BranchIfLess(uint8_t lhs, uint8_t rhs, Label label) {
    return EmitBranch({Opcode::kBranchIfLess, lhs, rhs, 0, 0, 0}, label);
  }
  Assembler& Halt() { return Emit({Opcode::kHalt, 0, 0, 0, 0, 0}); }

  // --- Escapes ---
  Assembler& Native(NativeFn fn) {
    uint32_t index = program_->AddNative(std::move(fn));
    return Emit({Opcode::kNative, 0, 0, 0, index, 0});
  }
  Assembler& OsCall(uint32_t service) { return Emit({Opcode::kOsCall, 0, 0, 0, service, 0}); }

  // Finalizes the program: patches all label references. Every referenced label must be
  // bound by now.
  ProgramRef Build() {
    for (const auto& [instruction_index, label] : fixups_) {
      IMAX_CHECK(labels_[label] != kUnbound);
      program_->Patch(instruction_index, labels_[label]);
    }
    fixups_.clear();
    return program_;
  }

  uint32_t here() const { return program_->size(); }

 private:
  static constexpr uint32_t kUnbound = 0xffffffffu;

  Assembler& Emit(const Instruction& instruction) {
    program_->Append(instruction);
    return *this;
  }

  Assembler& EmitBranch(Instruction instruction, Label label) {
    uint32_t index = program_->Append(instruction);
    fixups_.emplace_back(index, label);
    return *this;
  }

  std::shared_ptr<Program> program_;
  std::vector<uint32_t> labels_;
  std::vector<std::pair<uint32_t, Label>> fixups_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_ISA_ASSEMBLER_H_

// Architectural layouts of the hardware-recognized system objects, and typed views over them.
//
// Each system object's state lives in its segment (data part scalars, access part ADs) so it
// is visible to the GC, subject to the protection rules, and inspectable by programs on the
// machine — there is deliberately no C++-side copy of any field that the paper describes as
// being in the object. Views are used by kernel-trusted code holding full-rights ADs;
// protection violations inside a view indicate a kernel bug and CHECK-fail rather than fault.

#ifndef IMAX432_SRC_PROC_LAYOUTS_H_
#define IMAX432_SRC_PROC_LAYOUTS_H_

#include <cstdint>
#include <cstdio>

#include "src/arch/addressing_unit.h"
#include "src/base/check.h"
#include "src/isa/program.h"

namespace imax432 {

// ---------------------------------------------------------------------------
// Process objects.
// "the hardware defines a process object which contains the information for scheduling
// processes, dispatching them on any one of several potentially available processors, and
// sending them back to software when various fault or scheduling conditions arise."
// ---------------------------------------------------------------------------

enum class ProcessState : uint8_t {
  kEmbryo = 0,   // created, never started
  kReady,        // queued at a dispatching port
  kRunning,      // bound to a processor
  kBlocked,      // waiting at a communication port
  kStopped,      // stop count > 0; out of the dispatching mix
  kFaulted,      // fault delivered; waiting at its fault port for service
  kTerminated,   // final
};

const char* ProcessStateName(ProcessState state);

// iMAX internal levels (§7.3): level 1 may not fault at all, level 2 may only timeout-fault,
// level 3 and above may fault freely. Application processes run at level 4.
inline constexpr uint8_t kImaxLevelCore = 1;
inline constexpr uint8_t kImaxLevelMemory = 2;
inline constexpr uint8_t kImaxLevelServices = 3;
inline constexpr uint8_t kImaxLevelUser = 4;

struct ProcessLayout {
  // Data part.
  static constexpr uint32_t kOffState = 0;             // u8  (ProcessState)
  static constexpr uint32_t kOffImaxLevel = 1;         // u8
  static constexpr uint32_t kOffPriority = 2;          // u8  (higher runs first)
  static constexpr uint32_t kOffPendingAction = 3;     // u8  (deferred stop marker)
  static constexpr uint32_t kOffStopCount = 4;         // i16 (>0 means stopped)
  static constexpr uint32_t kOffBaseLevel = 6;         // u16 (lifetime level of the process)
  static constexpr uint32_t kOffDeadline = 8;          // u32 (deadline discipline key)
  static constexpr uint32_t kOffFaultCode = 12;        // u8  (last Fault)
  static constexpr uint32_t kOffCallDepth = 14;        // u16
  static constexpr uint32_t kOffConsumed = 16;         // u64 (total cycles executed)
  static constexpr uint32_t kOffSliceUsed = 24;        // u64 (cycles in current slice)
  static constexpr uint32_t kOffFaultCount = 32;       // u32
  static constexpr uint32_t kOffMessagesSent = 36;     // u32
  static constexpr uint32_t kOffMessagesReceived = 40; // u32
  static constexpr uint32_t kOffBlockEpoch = 44;       // u32 (bumped on every port block;
                                                       //      timed waits match against it)
  static constexpr uint32_t kDataBytes = 48;

  // Access part.
  static constexpr uint32_t kSlotContext = 0;       // current (innermost) context
  static constexpr uint32_t kSlotDispatchPort = 1;  // where this process queues when ready
  static constexpr uint32_t kSlotFaultPort = 2;     // faulted processes are sent here
  static constexpr uint32_t kSlotSchedulerPort = 3; // start/stop transitions are sent here
  static constexpr uint32_t kSlotStackSro = 4;      // context allocation SRO
  static constexpr uint32_t kSlotParent = 5;        // parent process (tree structure)
  static constexpr uint32_t kSlotFirstChild = 6;
  static constexpr uint32_t kSlotNextSibling = 7;
  static constexpr uint32_t kAccessSlots = 8;
};

// ---------------------------------------------------------------------------
// Processor objects: one per GDP.
// ---------------------------------------------------------------------------

enum class ProcessorState : uint8_t {
  kIdle = 0,     // waiting at its dispatching port
  kRunning,      // executing a process
  kHalted,       // taken offline
};

struct ProcessorLayout {
  static constexpr uint32_t kOffId = 0;             // u16
  static constexpr uint32_t kOffState = 2;          // u8 (ProcessorState)
  static constexpr uint32_t kOffBusyCycles = 8;     // u64
  static constexpr uint32_t kOffIdleCycles = 16;    // u64
  static constexpr uint32_t kOffDispatches = 24;    // u64
  static constexpr uint32_t kDataBytes = 32;

  static constexpr uint32_t kSlotDispatchPort = 0;
  static constexpr uint32_t kSlotCurrentProcess = 1;
  static constexpr uint32_t kAccessSlots = 2;
};

// ---------------------------------------------------------------------------
// Context objects (activation records).
// "Each context object (i.e., activation record) within a process has a level one greater
// than that of its caller."
// ---------------------------------------------------------------------------

struct ContextLayout {
  static constexpr uint32_t kOffPc = 0;        // u32
  static constexpr uint32_t kOffRegs = 8;      // u64 x kNumDataRegs
  static constexpr uint32_t kDataBytes = 8 + 8 * 8;

  // Access part: slots [0, 8) are the AD registers.
  static constexpr uint32_t kSlotAdRegs = 0;
  static constexpr uint32_t kSlotInstructionSegment = 8;
  static constexpr uint32_t kSlotDomain = 9;
  static constexpr uint32_t kSlotCaller = 10;
  static constexpr uint32_t kSlotProcess = 11;
  // Local heaps created by this activation; destroyed automatically on return ("This SRO
  // will be destroyed automatically when the process returns above the call depth to which
  // it corresponds").
  static constexpr uint32_t kSlotOwnedSros = 12;
  static constexpr uint32_t kNumOwnedSroSlots = 4;
  // Demote SRO: the kernel-created local heap holding allocations the lifetime analysis
  // proved context-local (lifetime/lifetime.h). Lazily created at the first demoted
  // allocation; audited and destroyed when the activation returns. Separate from the owned
  // slots so demotion never consumes one of the program's four local heaps.
  static constexpr uint32_t kSlotDemoteSro = 16;
  static constexpr uint32_t kAccessSlots = 17;
};

// ---------------------------------------------------------------------------
// Domain objects.
// "the 432 supports small protection domains with domain objects. ... They are a structure
// for grouping and restricting accesses to the implementation of a module." Entry i of the
// access part holds the instruction segment of subprogram i; the tail slots hold the
// package's private state, reachable only through ADs minted for the domain's own code.
// ---------------------------------------------------------------------------

struct DomainLayout {
  static constexpr uint32_t kOffEntryCount = 0;  // u16
  static constexpr uint32_t kDataBytes = 8;
  // Access part: [0, entry_count) = instruction segments; [entry_count, ...) = package state.
};

// ---------------------------------------------------------------------------
// Port objects.
// "The hardware defines a communications port object which functions as a queueing structure
// for interprocess communications."
// ---------------------------------------------------------------------------

enum class QueueDiscipline : uint8_t {
  kFifo = 0,
  kPriority,   // by sending process priority, descending; FIFO among equals
  kDeadline,   // by sending process deadline, ascending; FIFO among equals
};

struct PortLayout {
  static constexpr uint32_t kOffCapacity = 0;      // u16 (message_count)
  static constexpr uint32_t kOffCount = 2;         // u16 (messages queued now)
  static constexpr uint32_t kOffDiscipline = 4;    // u8 (QueueDiscipline)
  static constexpr uint32_t kOffSendsTotal = 8;    // u64
  static constexpr uint32_t kOffReceivesTotal = 16;// u64
  static constexpr uint32_t kOffSendBlocks = 24;   // u32 (senders that had to wait)
  static constexpr uint32_t kOffReceiveBlocks = 28;// u32 (receivers that had to wait)
  static constexpr uint32_t kDataBytes = 32;
  // Access part: slots [0, capacity) hold queued message ADs.
};

// ---------------------------------------------------------------------------
// Type definition objects (TDOs).
// ---------------------------------------------------------------------------

struct TdoLayout {
  static constexpr uint32_t kOffTypeId = 0;       // u32 (user type identity)
  static constexpr uint32_t kOffHasFilter = 4;    // u8  (destruction filter armed?)
  static constexpr uint32_t kOffCreated = 8;      // u64 (objects minted)
  static constexpr uint32_t kOffFinalized = 16;   // u64 (objects seen by the filter)
  static constexpr uint32_t kDataBytes = 24;
  static constexpr uint32_t kSlotFilterPort = 0;  // destruction filter port
  static constexpr uint32_t kAccessSlots = 1;
};

// ---------------------------------------------------------------------------
// Typed field access helpers.
// ---------------------------------------------------------------------------

// Reads/writes one scalar field of a system object through the addressing unit, CHECKing
// success: callers are kernel code holding known-good full-rights ADs.
class ObjectView {
 public:
  ObjectView(AddressingUnit* unit, const AccessDescriptor& ad) : unit_(unit), ad_(ad) {}

  uint64_t Field(uint32_t offset, uint32_t width) const {
    auto value = unit_->ReadData(ad_, offset, width);
    if (!value.ok()) {
      std::fprintf(stderr, "ObjectView::Field fault %s: object %u offset %u width %u\n",
                   FaultName(value.fault()), ad_.index(), offset, width);
      IMAX_CHECK(value.ok());
    }
    return value.value();
  }
  void SetField(uint32_t offset, uint32_t width, uint64_t value) {
    Status status = unit_->WriteData(ad_, offset, width, value);
    if (!status.ok()) {
      std::fprintf(stderr, "ObjectView::SetField fault %s: object %u offset %u width %u\n",
                   FaultName(status.fault()), ad_.index(), offset, width);
      IMAX_CHECK(status.ok());
    }
  }
  void Increment(uint32_t offset, uint32_t width, uint64_t delta = 1) {
    SetField(offset, width, Field(offset, width) + delta);
  }

  AccessDescriptor Slot(uint32_t slot) const {
    auto ad = unit_->ReadAd(ad_, slot);
    IMAX_CHECK(ad.ok());
    return ad.value();
  }
  // Views write slots through the privileged (microcode) store: system-object linkage and
  // register files are exempt from the level rule; mutator stores (kStoreAd and message
  // enqueue) go through the checked AddressingUnit::WriteAd path.
  void SetSlot(uint32_t slot, const AccessDescriptor& value) {
    IMAX_CHECK(unit_->WriteAdPrivileged(ad_, slot, value).ok());
  }

  const AccessDescriptor& ad() const { return ad_; }
  AddressingUnit* unit() const { return unit_; }

 private:
  AddressingUnit* unit_;
  AccessDescriptor ad_;
};

// Process view with named accessors.
class ProcessView : public ObjectView {
 public:
  using ObjectView::ObjectView;

  ProcessState state() const {
    return static_cast<ProcessState>(Field(ProcessLayout::kOffState, 1));
  }
  void set_state(ProcessState state) {
    SetField(ProcessLayout::kOffState, 1, static_cast<uint64_t>(state));
  }
  uint8_t imax_level() const { return static_cast<uint8_t>(Field(ProcessLayout::kOffImaxLevel, 1)); }
  uint8_t priority() const { return static_cast<uint8_t>(Field(ProcessLayout::kOffPriority, 1)); }
  void set_priority(uint8_t priority) { SetField(ProcessLayout::kOffPriority, 1, priority); }
  int16_t stop_count() const {
    return static_cast<int16_t>(Field(ProcessLayout::kOffStopCount, 2));
  }
  void set_stop_count(int16_t count) {
    SetField(ProcessLayout::kOffStopCount, 2, static_cast<uint16_t>(count));
  }
  uint32_t deadline() const { return static_cast<uint32_t>(Field(ProcessLayout::kOffDeadline, 4)); }
  void set_deadline(uint32_t deadline) { SetField(ProcessLayout::kOffDeadline, 4, deadline); }
  uint64_t consumed() const { return Field(ProcessLayout::kOffConsumed, 8); }
  uint64_t slice_used() const { return Field(ProcessLayout::kOffSliceUsed, 8); }
  void set_slice_used(uint64_t used) { SetField(ProcessLayout::kOffSliceUsed, 8, used); }
  Fault fault_code() const { return static_cast<Fault>(Field(ProcessLayout::kOffFaultCode, 1)); }
  void set_fault_code(Fault fault) {
    SetField(ProcessLayout::kOffFaultCode, 1, static_cast<uint64_t>(fault));
  }
  uint16_t call_depth() const {
    return static_cast<uint16_t>(Field(ProcessLayout::kOffCallDepth, 2));
  }
  void set_call_depth(uint16_t depth) { SetField(ProcessLayout::kOffCallDepth, 2, depth); }
  uint32_t block_epoch() const {
    return static_cast<uint32_t>(Field(ProcessLayout::kOffBlockEpoch, 4));
  }
  void bump_block_epoch() { Increment(ProcessLayout::kOffBlockEpoch, 4); }

  AccessDescriptor context() const { return Slot(ProcessLayout::kSlotContext); }
  AccessDescriptor dispatch_port() const { return Slot(ProcessLayout::kSlotDispatchPort); }
  AccessDescriptor fault_port() const { return Slot(ProcessLayout::kSlotFaultPort); }
  AccessDescriptor scheduler_port() const { return Slot(ProcessLayout::kSlotSchedulerPort); }
  AccessDescriptor stack_sro() const { return Slot(ProcessLayout::kSlotStackSro); }
};

// Context view.
class ContextView : public ObjectView {
 public:
  using ObjectView::ObjectView;

  uint32_t pc() const { return static_cast<uint32_t>(Field(ContextLayout::kOffPc, 4)); }
  void set_pc(uint32_t pc) { SetField(ContextLayout::kOffPc, 4, pc); }
  uint64_t reg(uint8_t index) const {
    IMAX_CHECK(index < kNumDataRegs);
    return Field(ContextLayout::kOffRegs + index * 8u, 8);
  }
  void set_reg(uint8_t index, uint64_t value) {
    IMAX_CHECK(index < kNumDataRegs);
    SetField(ContextLayout::kOffRegs + index * 8u, 8, value);
  }
  AccessDescriptor ad_reg(uint8_t index) const {
    IMAX_CHECK(index < kNumAdRegs);
    return Slot(ContextLayout::kSlotAdRegs + index);
  }
  void set_ad_reg(uint8_t index, const AccessDescriptor& value) {
    IMAX_CHECK(index < kNumAdRegs);
    SetSlot(ContextLayout::kSlotAdRegs + index, value);
  }
  AccessDescriptor instruction_segment() const {
    return Slot(ContextLayout::kSlotInstructionSegment);
  }
  AccessDescriptor domain() const { return Slot(ContextLayout::kSlotDomain); }
  AccessDescriptor caller() const { return Slot(ContextLayout::kSlotCaller); }
};

static_assert(ContextLayout::kDataBytes >= ContextLayout::kOffRegs + 8 * kNumDataRegs,
              "context data part must hold the full data register file");
static_assert(ContextLayout::kSlotInstructionSegment >= kNumAdRegs,
              "AD register file must not overlap the context linkage slots");

}  // namespace imax432

#endif  // IMAX432_SRC_PROC_LAYOUTS_H_

#include "src/proc/layouts.h"

namespace imax432 {

const char* ProcessStateName(ProcessState state) {
  switch (state) {
    case ProcessState::kEmbryo:
      return "embryo";
    case ProcessState::kReady:
      return "ready";
    case ProcessState::kRunning:
      return "running";
    case ProcessState::kBlocked:
      return "blocked";
    case ProcessState::kStopped:
      return "stopped";
    case ProcessState::kFaulted:
      return "faulted";
    case ProcessState::kTerminated:
      return "terminated";
  }
  return "?";
}

}  // namespace imax432

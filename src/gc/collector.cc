#include "src/gc/collector.h"

#include "src/base/check.h"
#include "src/base/log.h"

namespace imax432 {

GarbageCollector::GarbageCollector(Kernel* kernel) : kernel_(kernel) {}

void GarbageCollector::SetSystemTypeFilter(SystemType type,
                                           const AccessDescriptor& filter_port) {
  system_filters_[static_cast<int>(type)] = filter_port;
}

void GarbageCollector::Shade(ObjectIndex index) {
  ObjectDescriptor& descriptor = kernel_->machine().table().At(index);
  if (descriptor.allocated && descriptor.color == GcColor::kWhite) {
    descriptor.color = GcColor::kGray;
    gray_.push_back(index);
  }
}

void GarbageCollector::ShadeRoots() {
  ObjectTable& table = kernel_->machine().table();
  std::vector<AccessDescriptor> roots;
  kernel_->AppendRoots(&roots);
  roots.push_back(kernel_->memory().global_heap());
  for (const AccessDescriptor& root : roots) {
    if (!root.is_null() && table.Resolve(root).ok()) {
      Shade(root.index());
    }
  }
  // Demoted (gc_exempt) objects are never traced — they stay black — but anything they
  // reference is live for as long as their demote SRO exists, so their outgoing slots are
  // pseudo-roots. Without this, a heap object referenced only from a demoted object would
  // be swept while still reachable.
  for (ObjectIndex i = 0; i < table.capacity(); ++i) {
    const ObjectDescriptor& descriptor = table.At(i);
    if (!descriptor.allocated || !descriptor.gc_exempt) {
      continue;
    }
    for (const AccessDescriptor& slot : descriptor.access) {
      if (!slot.is_null() && table.Resolve(slot).ok()) {
        Shade(slot.index());
      }
      ++stats_.slots_scanned;
    }
  }
}

void GarbageCollector::EmitPhase() {
  // Phase and GcTracePhase share the same ordinals by construction.
  kernel_->machine().trace().Emit(TraceEventKind::kGcPhase, kernel_->machine().now(),
                                  kTraceNoProcessor, kTraceNoProcess,
                                  static_cast<uint32_t>(phase_));
}

void GarbageCollector::BeginCycle() {
  IMAX_CHECK(phase_ == Phase::kIdle);
  phase_ = Phase::kWhiten;
  cursor_ = 0;
  gray_.clear();
  EmitPhase();
}

bool GarbageCollector::MarkFixpoint() {
  ObjectTable& table = kernel_->machine().table();
  bool changed = false;

  for (ObjectIndex i = 0; i < table.capacity(); ++i) {
    const ObjectDescriptor& descriptor = table.At(i);
    if (!descriptor.allocated) {
      continue;
    }
    // Dijkstra's termination scan: the mutator's gray bit marks objects gray *in place*
    // (the hardware cannot push onto the collector's worklist), so the collector must
    // rescan for gray descriptors until a full pass finds none. This is the "minimal
    // synchronization" between mutators and the collector.
    if (descriptor.color == GcColor::kGray) {
      gray_.push_back(i);
      changed = true;
      continue;
    }
    if (descriptor.color == GcColor::kWhite) {
      continue;
    }
    // Origin-SRO liveness: a live (black) object keeps its allocating SRO (and transitively
    // that SRO's allocator) live, otherwise reclaiming the SRO would destroy live objects.
    ObjectIndex origin = descriptor.origin_sro;
    if (origin != kInvalidObjectIndex && table.At(origin).allocated &&
        table.At(origin).color == GcColor::kWhite) {
      Shade(origin);
      ++stats_.sros_kept_live;
      changed = true;
    }
  }

  // Fresh root snapshot: processes may have moved into shadow queues since the last one.
  size_t before = gray_.size();
  ShadeRoots();
  changed |= gray_.size() > before;
  return changed;
}

bool GarbageCollector::Step(uint32_t units) {
  ObjectTable& table = kernel_->machine().table();

  while (units > 0) {
    switch (phase_) {
      case Phase::kIdle:
        return false;

      case Phase::kWhiten: {
        // Flip every descriptor to white; the mutator's gray bit re-shades anything moved
        // from here on, so no live object can stay white through a full mark.
        uint32_t batch = std::min(units, table.capacity() - cursor_);
        for (uint32_t i = 0; i < batch; ++i, ++cursor_) {
          ObjectDescriptor& descriptor = table.At(cursor_);
          if (descriptor.allocated) {
            if (descriptor.gc_exempt) {
              // Demoted objects never enter the cycle: permanently black, reclaimed only
              // by their demote SRO's bulk destroy at context exit.
              descriptor.color = GcColor::kBlack;
              ++stats_.exempt_objects_skipped;
            } else {
              descriptor.color = GcColor::kWhite;
            }
          }
        }
        units -= batch;
        work_units_ += batch;
        if (cursor_ == table.capacity()) {
          ShadeRoots();
          phase_ = Phase::kMark;
          EmitPhase();
        }
        break;
      }

      case Phase::kMark: {
        if (gray_.empty()) {
          if (MarkFixpoint()) {
            break;  // new gray work appeared
          }
          phase_ = Phase::kSweep;
          cursor_ = 0;
          EmitPhase();
          break;
        }
        ObjectIndex index = gray_.back();
        gray_.pop_back();
        ObjectDescriptor& descriptor = table.At(index);
        if (!descriptor.allocated) {
          continue;  // reclaimed by explicit destroy while queued
        }
        // Blacken: scan every AD slot, shading white referents.
        for (const AccessDescriptor& slot : descriptor.access) {
          if (!slot.is_null() && table.Resolve(slot).ok()) {
            Shade(slot.index());
          }
          ++stats_.slots_scanned;
        }
        descriptor.color = GcColor::kBlack;
        ++stats_.objects_scanned;
        uint32_t cost = 1 + descriptor.access_count();
        work_units_ += cost;
        units = units > cost ? units - cost : 0;
        break;
      }

      case Phase::kSweep: {
        uint32_t batch = std::min(units, table.capacity() - cursor_);
        for (uint32_t i = 0; i < batch; ++i, ++cursor_) {
          SweepOne(cursor_);
        }
        units -= batch;
        work_units_ += batch;
        if (cursor_ == table.capacity()) {
          phase_ = Phase::kIdle;
          ++stats_.cycles_completed;
          EmitPhase();
          return false;
        }
        break;
      }
    }
  }
  return phase_ != Phase::kIdle;
}

AccessDescriptor GarbageCollector::FilterPortFor(const ObjectDescriptor& descriptor) {
  if (descriptor.finalized) {
    return AccessDescriptor();  // the filter already saw this object once
  }
  // User-type filter, armed through the type definition object.
  if (descriptor.type_def != kInvalidObjectIndex) {
    ObjectTable& table = kernel_->machine().table();
    const ObjectDescriptor& tdo = table.At(descriptor.type_def);
    if (tdo.allocated && tdo.type == SystemType::kTypeDefinition) {
      auto armed =
          kernel_->machine().memory().Read(tdo.data_base + TdoLayout::kOffHasFilter, 1);
      if (armed.ok() && armed.value() != 0 &&
          TdoLayout::kSlotFilterPort < tdo.access_count()) {
        return tdo.access[TdoLayout::kSlotFilterPort];
      }
    }
  }
  // System-type filter (lost-process recovery).
  return system_filters_[static_cast<int>(descriptor.type)];
}

void GarbageCollector::SweepOne(ObjectIndex index) {
  ObjectTable& table = kernel_->machine().table();
  ObjectDescriptor& descriptor = table.At(index);
  if (!descriptor.allocated || descriptor.gc_exempt ||
      descriptor.color != GcColor::kWhite) {
    return;
  }

  AccessDescriptor filter_port = FilterPortFor(descriptor);
  if (!filter_port.is_null() && table.Resolve(filter_port).ok()) {
    // "The garbage collector will manufacture an access descriptor for such objects and send
    // them to a port defined by the type manager."
    auto manufactured = table.MintAd(index, rights::kAll);
    IMAX_CHECK(manufactured.ok());
    descriptor.finalized = true;
    descriptor.color = GcColor::kGray;  // reachable again, via the filter port
    Status sent = kernel_->PostMessage(filter_port, manufactured.value());
    if (sent.ok()) {
      ++stats_.objects_finalized;
      // Bump the TDO's finalization counter if this was a user type.
      if (descriptor.type_def != kInvalidObjectIndex) {
        const ObjectDescriptor& tdo = table.At(descriptor.type_def);
        if (tdo.allocated && !tdo.swapped_out) {
          auto count =
              kernel_->machine().memory().Read(tdo.data_base + TdoLayout::kOffFinalized, 8);
          if (count.ok()) {
            (void)kernel_->machine().memory().Write(tdo.data_base + TdoLayout::kOffFinalized,
                                                    8, count.value() + 1);
          }
        }
      }
    } else {
      // Filter port full: the object survives this cycle and is offered again next time.
      descriptor.finalized = false;
      ++stats_.filter_send_failures;
    }
    return;
  }

  // Plain garbage: reclaim. (A garbage SRO cascades through the memory manager, destroying
  // everything it allocated — all of which is itself garbage by the origin-liveness rule.)
  uint32_t bytes = descriptor.data_length;
  ObjectDescriptor snapshot = descriptor;  // observers see the pre-free descriptor
  Status reclaimed = kernel_->memory().ReclaimGarbage(index);
  if (reclaimed.ok()) {
    ++stats_.objects_reclaimed;
    stats_.bytes_reclaimed += bytes;
    for (const ReclaimObserver& observer : observers_) {
      observer(index, snapshot);
    }
  }
}

GcStats GarbageCollector::CollectNow() {
  GcStats before = stats_;
  BeginCycle();
  while (Step(1u << 20)) {
  }
  GcStats delta;
  delta.cycles_completed = stats_.cycles_completed - before.cycles_completed;
  delta.objects_scanned = stats_.objects_scanned - before.objects_scanned;
  delta.slots_scanned = stats_.slots_scanned - before.slots_scanned;
  delta.objects_reclaimed = stats_.objects_reclaimed - before.objects_reclaimed;
  delta.bytes_reclaimed = stats_.bytes_reclaimed - before.bytes_reclaimed;
  delta.objects_finalized = stats_.objects_finalized - before.objects_finalized;
  delta.sros_kept_live = stats_.sros_kept_live - before.sros_kept_live;
  delta.filter_send_failures = stats_.filter_send_failures - before.filter_send_failures;
  delta.exempt_objects_skipped =
      stats_.exempt_objects_skipped - before.exempt_objects_skipped;
  return delta;
}

Result<GcStats> GarbageCollector::CollectLocalNow(const AccessDescriptor& sro_ad) {
  if (phase_ != Phase::kIdle) {
    return Fault::kWrongState;
  }
  ObjectTable& table = kernel_->machine().table();
  IMAX_ASSIGN_OR_RETURN(
      ObjectDescriptor * sro,
      kernel_->machine().addressing().ResolveTyped(sro_ad, SystemType::kStorageResource,
                                                   rights::kNone));
  (void)sro;
  ObjectIndex sro_index = sro_ad.index();
  GcStats before = stats_;

  // Population: objects allocated directly from this SRO. Whiten them; everything else
  // keeps its color (a non-white color elsewhere never matters below).
  std::vector<bool> population(table.capacity(), false);
  std::vector<ObjectIndex> members;
  for (ObjectIndex i = 0; i < table.capacity(); ++i) {
    ObjectDescriptor& descriptor = table.At(i);
    if (descriptor.allocated && descriptor.origin_sro == sro_index &&
        !descriptor.gc_exempt && descriptor.type != SystemType::kStorageResource) {
      population[i] = true;
      descriptor.color = GcColor::kWhite;
      members.push_back(i);
    }
    ++work_units_;
  }

  IMAX_CHECK(gray_.empty());
  auto shade_if_member = [&](const AccessDescriptor& ad) {
    if (!ad.is_null() && ad.index() < population.size() && population[ad.index()] &&
        table.Resolve(ad).ok()) {
      Shade(ad.index());
    }
  };

  // External scan: one flat pass over every other object's access part, plus the root set.
  // The level rule guarantees no reference into the population hides anywhere else.
  for (ObjectIndex i = 0; i < table.capacity(); ++i) {
    const ObjectDescriptor& descriptor = table.At(i);
    if (!descriptor.allocated || population[i]) {
      continue;
    }
    for (const AccessDescriptor& slot : descriptor.access) {
      shade_if_member(slot);
      ++stats_.slots_scanned;
      ++work_units_;
    }
  }
  std::vector<AccessDescriptor> roots;
  kernel_->AppendRoots(&roots);
  roots.push_back(kernel_->memory().global_heap());
  for (const AccessDescriptor& root : roots) {
    shade_if_member(root);
  }

  // Trace inside the population only.
  while (!gray_.empty()) {
    ObjectIndex index = gray_.back();
    gray_.pop_back();
    ObjectDescriptor& descriptor = table.At(index);
    if (!descriptor.allocated) {
      continue;
    }
    for (const AccessDescriptor& slot : descriptor.access) {
      shade_if_member(slot);
      ++stats_.slots_scanned;
    }
    descriptor.color = GcColor::kBlack;
    ++stats_.objects_scanned;
    work_units_ += 1 + descriptor.access_count();
  }

  // Sweep the population.
  for (ObjectIndex index : members) {
    SweepOne(index);
    ++work_units_;
  }

  GcStats delta;
  delta.objects_scanned = stats_.objects_scanned - before.objects_scanned;
  delta.slots_scanned = stats_.slots_scanned - before.slots_scanned;
  delta.objects_reclaimed = stats_.objects_reclaimed - before.objects_reclaimed;
  delta.bytes_reclaimed = stats_.bytes_reclaimed - before.bytes_reclaimed;
  delta.objects_finalized = stats_.objects_finalized - before.objects_finalized;
  delta.filter_send_failures = stats_.filter_send_failures - before.filter_send_failures;
  return delta;
}

Result<AccessDescriptor> GarbageCollector::SpawnDaemon(uint32_t units_per_step,
                                                       uint8_t priority) {
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor request_port,
                        kernel_->ports().CreatePort(kernel_->memory().global_heap(), 16,
                                                    QueueDiscipline::kFifo));
  // The request port is referenced only from the daemon's native code; it must be a root or
  // the collector would collect its own doorbell.
  kernel_->AddRootProvider(
      [request_port](std::vector<AccessDescriptor>* roots) { roots->push_back(request_port); });

  Assembler a("gc-daemon");
  auto loop = a.NewLabel();
  a.Bind(loop);
  // Wait for a collection request. The message may be a reply port (or any placeholder).
  a.Native([request_port](ExecutionContext&) -> Result<NativeResult> {
    NativeResult r;
    r.action = NativeResult::Action::kBlockReceive;
    r.port = request_port;
    r.dest_adreg = 3;
    r.compute = cycles::kReceive;
    return r;
  });
  a.Native([this](ExecutionContext&) -> Result<NativeResult> {
    BeginCycle();
    return NativeResult{};
  });
  // Incremental collection: one native instruction per work batch; the daemon is an
  // ordinary process, so time-slice end interleaves it with mutators — the "parallel"
  // garbage collector running as "a daemon process that globally scans the system".
  uint32_t step_pc = a.here();
  a.Native([this, units_per_step, step_pc](ExecutionContext&) -> Result<NativeResult> {
    uint64_t units_before = work_units_;
    uint64_t reclaimed_before = stats_.objects_reclaimed;
    uint64_t finalized_before = stats_.objects_finalized;
    bool more = Step(units_per_step);
    // Charge what the batch actually did: descriptor/slot examinations at the scan rate,
    // plus full reclamation cost per freed object (tracing collection pays kGcFreeObject
    // per object; bulk SRO destruction pays a quarter of that — the E6 comparison), plus a
    // send per finalized object.
    uint64_t scanned = work_units_ - units_before;
    uint64_t reclaimed = stats_.objects_reclaimed - reclaimed_before;
    uint64_t finalized = stats_.objects_finalized - finalized_before;
    NativeResult r;
    r.compute = scanned * cycles::kGcScanSlot / 4 + reclaimed * cycles::kGcFreeObject +
                finalized * cycles::kSend;
    r.bus = scanned * cycles::kBusPerWord / 8 + reclaimed * cycles::kBusCreateObject / 2;
    if (more) {
      r.action = NativeResult::Action::kJump;
      r.jump_target = step_pc;
    }
    return r;
  });
  // Completion: if the request carried a port, acknowledge on it.
  a.Native([this](ExecutionContext& env) -> Result<NativeResult> {
    AccessDescriptor reply = env.ad_reg(3);
    auto descriptor = kernel_->machine().table().Resolve(reply);
    if (descriptor.ok() && descriptor.value()->type == SystemType::kPort) {
      (void)kernel_->PostMessage(reply, env.process_ad());
    }
    env.set_ad_reg(3, AccessDescriptor());
    NativeResult r;
    r.compute = cycles::kSend;
    return r;
  });
  a.Branch(loop);

  ProcessOptions options;
  options.priority = priority;
  options.imax_level = kImaxLevelServices;
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor daemon, kernel_->CreateProcess(a.Build(), options));
  // The daemon's interpreter cycles are GC work: rebin them under the gc bucket so the
  // profiler attributes collection cost to collection, not to "some process computing".
  kernel_->machine().profiler().TagProcess(daemon.index(), CycleBucket::kGc);
  IMAX_RETURN_IF_FAULT(kernel_->StartProcess(daemon));
  return request_port;
}

}  // namespace imax432

// GarbageCollector: the system-wide parallel garbage collector of iMAX.
//
// "iMAX provides a system-wide parallel garbage collector based upon the algorithm of
// Dijkstra et al. To support this, the 432 hardware implements the gray bit of that
// algorithm, setting it whenever access descriptors are moved." (§8.1)
//
// The collector is tri-color mark/sweep over the object descriptor table. Mutator
// cooperation (the hardware gray bit) is in AddressingUnit: every AD store shades the
// referenced object gray, so concurrent pointer moves never hide a live object from an
// in-progress mark. Collection proceeds in bounded work increments so it can run "as a
// daemon process that globally scans the system" interleaved with mutators in virtual time;
// it "requires only minimal synchronization with the rest of the operating system" — here,
// none at all beyond the gray bit and the root snapshot.
//
// Two extensions beyond plain Dijkstra, both from the paper:
//   - SRO liveness: a storage resource object is live while any object allocated from it is
//     live (reclaiming an SRO reclaims everything it allocated, which must never hit a live
//     object). The mark fixpoint shades origin SROs of live objects.
//   - Destruction filters (§8.2): when sweep finds a garbage object whose type definition
//     armed a filter, the collector "will manufacture an access descriptor for such objects
//     and send them to a port defined by the type manager" instead of freeing it. The type
//     manager can disassemble the resource (close the tape drive) and either keep or drop
//     the object; a dropped, already-finalized object is reclaimed silently next cycle.

#ifndef IMAX432_SRC_GC_COLLECTOR_H_
#define IMAX432_SRC_GC_COLLECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/exec/kernel.h"
#include "src/proc/layouts.h"

namespace imax432 {

struct GcStats {
  uint64_t cycles_completed = 0;     // full collection cycles
  uint64_t objects_scanned = 0;      // gray objects blackened
  uint64_t slots_scanned = 0;        // AD slots examined during marking
  uint64_t objects_reclaimed = 0;    // garbage freed
  uint64_t bytes_reclaimed = 0;
  uint64_t objects_finalized = 0;    // garbage sent to destruction filters
  uint64_t sros_kept_live = 0;       // SROs shaded by the origin-liveness rule
  uint64_t filter_send_failures = 0; // filter port full: object survives to next cycle
  uint64_t exempt_objects_skipped = 0;  // demoted (gc_exempt) objects held black at whiten
};

class GarbageCollector {
 public:
  // Observers are told when the collector frees an object so subsystems can drop shadow
  // state (port queues, program store, SRO state is handled by the memory manager itself).
  using ReclaimObserver = std::function<void(ObjectIndex, const ObjectDescriptor&)>;

  explicit GarbageCollector(Kernel* kernel);

  void AddReclaimObserver(ReclaimObserver observer) {
    observers_.push_back(std::move(observer));
  }

  // Arms a destruction filter for a hardware system type (iMAX release 1 "uses this facility
  // only to recover lost process objects": filter on SystemType::kProcess). User types arm
  // filters through their type definition objects instead.
  //
  // Filter delivery is an ordinary port send: the level rule applies, so a filter port must
  // live at (at least) the level of the objects it is to recover — a global port cannot
  // receive dying local-heap objects. An undeliverable finalization is counted in
  // filter_send_failures and the object survives the cycle.
  void SetSystemTypeFilter(SystemType type, const AccessDescriptor& filter_port);

  // --- Synchronous interface (tests, host-side maintenance) ---

  // Runs one full collection cycle to completion, outside virtual time.
  GcStats CollectNow();

  // Local collection: the paper's §8.1 extension ("The local heap and level mechanisms
  // effectively partition the system into nested sets of objects based on lifetime. ... It
  // would be possible to perform garbage collection on a local basis, either asynchronously
  // or synchronously, but we have not chosen to do this until we have data that suggests it
  // would be worthwhile." — bench_gc's LocalCollection rows are that data).
  //
  // Collects garbage among the objects allocated *directly* from `sro_ad` without tracing
  // the global object graph: by the level storing rule, references into the population can
  // only live in same-or-deeper-level objects and in register files, so one flat scan of
  // other objects' access parts plus the root set finds every external reference; tracing
  // then proceeds inside the population only. Fails with kWrongState while a global cycle
  // is in progress (the two share the color bits).
  Result<GcStats> CollectLocalNow(const AccessDescriptor& sro_ad);

  // --- Incremental interface (the daemon) ---

  // Starts a new collection cycle (whiten + root shading setup).
  void BeginCycle();
  // Performs up to `units` units of work; returns true while more work remains. One unit is
  // one descriptor examined or one AD slot scanned.
  bool Step(uint32_t units);
  bool cycle_in_progress() const { return phase_ != Phase::kIdle; }

  // Builds the collector daemon: a process whose program loops { block on the request port;
  // run one full cycle in bounded increments; reply if the request carried a reply port }.
  // Returns the request port; every message posted to it triggers one collection cycle.
  // `units_per_step` controls granularity (work per native instruction); `imax_level`
  // defaults to the services level so the daemon may fault only in ways iMAX permits.
  Result<AccessDescriptor> SpawnDaemon(uint32_t units_per_step = 512, uint8_t priority = 32);

  const GcStats& stats() const { return stats_; }
  // Cumulative work units this collector performed (for cost accounting in benches).
  uint64_t work_units() const { return work_units_; }

 private:
  enum class Phase : uint8_t { kIdle, kWhiten, kMark, kSweep };

  void ShadeRoots();
  void Shade(ObjectIndex index);
  // Records a phase transition on the machine's event trace.
  void EmitPhase();
  // Runs the end-of-mark fixpoint checks (origin SROs, fresh roots). Returns true if new
  // gray objects appeared and marking must continue.
  bool MarkFixpoint();
  // Sweeps one descriptor; may free it or divert it to a destruction filter.
  void SweepOne(ObjectIndex index);
  // Returns the filter port for a garbage object, or null if none armed.
  AccessDescriptor FilterPortFor(const ObjectDescriptor& descriptor);

  Kernel* kernel_;
  std::vector<ReclaimObserver> observers_;
  AccessDescriptor system_filters_[kNumSystemTypes];

  Phase phase_ = Phase::kIdle;
  uint32_t cursor_ = 0;                 // table scan position (whiten / sweep)
  std::vector<ObjectIndex> gray_;       // mark worklist
  GcStats stats_;
  uint64_t work_units_ = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_GC_COLLECTOR_H_

// Concrete device models: console, tape drive, disk.
//
// Each is a distinct implementation behind the one device-independent specification; the
// tape and disk additionally share the block-device class-dependent operation (seek), and
// each has device-dependent operations of its own — the three-layer interface structure of
// §6.3. Latency models are simple but material: device time is charged to the server
// process in virtual cycles, so I/O-bound workloads behave like I/O-bound workloads.

#ifndef IMAX432_SRC_IO_DEVICES_H_
#define IMAX432_SRC_IO_DEVICES_H_

#include <map>
#include <string>
#include <vector>

#include "src/io/device.h"

namespace imax432 {

// A write-mostly character device. Output is captured host-side for inspection; input is
// replayed from a preloaded string. Device-dependent operation: kBell.
class ConsoleDevice : public DeviceModel {
 public:
  // ~9600 baud: roughly one character per millisecond of virtual time.
  static constexpr Cycles kCyclesPerChar = 8000;

  const char* kind() const override { return "console"; }
  IoOutcome Read(uint32_t offset, uint8_t* out, uint32_t length) override;
  IoOutcome Write(uint32_t offset, const uint8_t* in, uint32_t length) override;
  IoOutcome Control(uint8_t op, uint32_t argument) override;
  uint64_t StatusWord() const override;

  void PreloadInput(const std::string& text) { input_ = text; }
  const std::string& output() const { return output_; }
  uint32_t bells() const { return bells_; }

 private:
  std::string input_;
  size_t input_cursor_ = 0;
  std::string output_;
  uint32_t bells_ = 0;
};

// A tape drive: the paper's running example of a physical resource that must not be lost
// (§8.2). Supports mount/unmount/rewind plus sequential block read/write; reading or
// writing an unmounted drive fails with kNotMounted. Volumes persist in a host-side volume
// library keyed by volume id, shared by every drive created against the same library.
class TapeDevice : public DeviceModel {
 public:
  using VolumeLibrary = std::map<uint32_t, std::vector<uint8_t>>;

  static constexpr Cycles kMountCycles = 400000;   // 50 ms: operator/robot latency
  static constexpr Cycles kRewindCycles = 240000;  // 30 ms
  static constexpr Cycles kCyclesPerByte = 4;      // streaming transfer

  explicit TapeDevice(VolumeLibrary* library, uint32_t capacity_bytes = 256 * 1024)
      : library_(library), capacity_(capacity_bytes) {}

  const char* kind() const override { return "tape"; }
  IoOutcome Read(uint32_t offset, uint8_t* out, uint32_t length) override;
  IoOutcome Write(uint32_t offset, const uint8_t* in, uint32_t length) override;
  IoOutcome Control(uint8_t op, uint32_t argument) override;
  uint64_t StatusWord() const override;

  bool mounted() const { return mounted_; }
  uint32_t volume() const { return volume_; }
  uint32_t position() const { return position_; }

 private:
  VolumeLibrary* library_;
  uint32_t capacity_;
  bool mounted_ = false;
  uint32_t volume_ = 0;
  uint32_t position_ = 0;
};

// A seekable block device with a distance-dependent seek cost. Class-dependent operation:
// kSeek (shared with tape); no device-dependent extras.
class DiskDevice : public DeviceModel {
 public:
  static constexpr Cycles kSeekBaseCycles = 40000;        // 5 ms average access
  static constexpr Cycles kSeekPerKilobyteCycles = 16;    // arm travel
  static constexpr Cycles kCyclesPerByte = 2;

  explicit DiskDevice(uint32_t capacity_bytes = 1024 * 1024) : media_(capacity_bytes, 0) {}

  const char* kind() const override { return "disk"; }
  IoOutcome Read(uint32_t offset, uint8_t* out, uint32_t length) override;
  IoOutcome Write(uint32_t offset, const uint8_t* in, uint32_t length) override;
  IoOutcome Control(uint8_t op, uint32_t argument) override;
  uint64_t StatusWord() const override;

  uint32_t head_position() const { return head_; }

 private:
  Cycles SeekCost(uint32_t target);

  std::vector<uint8_t> media_;
  uint32_t head_ = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_IO_DEVICES_H_

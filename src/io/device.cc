#include "src/io/device.h"

#include <vector>

#include "src/base/check.h"

namespace imax432 {

Result<std::unique_ptr<DeviceServer>> DeviceServer::Spawn(Kernel* kernel,
                                                          std::unique_ptr<DeviceModel> model,
                                                          uint8_t priority) {
  auto server = std::unique_ptr<DeviceServer>(new DeviceServer());
  server->model_ = std::move(model);

  IMAX_ASSIGN_OR_RETURN(server->request_port_,
                        kernel->ports().CreatePort(kernel->memory().global_heap(), 32,
                                                   QueueDiscipline::kFifo));
  AccessDescriptor request_port = server->request_port_;
  kernel->AddRootProvider(
      [request_port](std::vector<AccessDescriptor>* roots) { roots->push_back(request_port); });

  DeviceServer* raw = server.get();
  Assembler a(server->model_->kind());
  auto loop = a.NewLabel();
  a.Bind(loop);
  a.Native([request_port](ExecutionContext&) -> Result<NativeResult> {
    NativeResult r;
    r.action = NativeResult::Action::kBlockReceive;
    r.port = request_port;
    r.dest_adreg = 3;
    r.compute = cycles::kReceive;
    return r;
  });
  a.Native([raw, kernel](ExecutionContext& env) -> Result<NativeResult> {
    AccessDescriptor request = env.ad_reg(3);
    env.set_ad_reg(3, AccessDescriptor());
    NativeResult r;
    if (!request.is_null()) {
      auto cost = raw->Serve(kernel, request);
      r.compute = cost.ok() ? cost.value() : cycles::kSimpleOp;
      // Device transfers move data over the interconnect too.
      r.bus = r.compute / 16;
    }
    return r;
  });
  a.Branch(loop);

  ProcessOptions options;
  options.priority = priority;
  options.imax_level = kImaxLevelServices;
  IMAX_ASSIGN_OR_RETURN(server->server_process_, kernel->CreateProcess(a.Build(), options));
  IMAX_RETURN_IF_FAULT(kernel->StartProcess(server->server_process_));
  return server;
}

Result<Cycles> DeviceServer::Serve(Kernel* kernel, const AccessDescriptor& request) {
  AddressingUnit& au = kernel->machine().addressing();
  ObjectView view(&au, request);
  ++stats_.requests;

  uint8_t op = static_cast<uint8_t>(view.Field(IoRequestLayout::kOffOp, 1));
  uint32_t offset = static_cast<uint32_t>(view.Field(IoRequestLayout::kOffOffset, 4));
  uint32_t length = static_cast<uint32_t>(view.Field(IoRequestLayout::kOffLength, 4));
  AccessDescriptor buffer = view.Slot(IoRequestLayout::kSlotBuffer);
  AccessDescriptor reply_port = view.Slot(IoRequestLayout::kSlotReplyPort);

  IoOutcome outcome;
  switch (op) {
    case io_op::kRead: {
      std::vector<uint8_t> data(length);
      outcome = model_->Read(offset, data.data(), length);
      if (outcome.status == io_status::kOk && outcome.actual > 0) {
        Status stored = au.WriteDataBlock(buffer, 0, data.data(), outcome.actual);
        if (!stored.ok()) {
          outcome.status = io_status::kDeviceFault;
        } else {
          stats_.bytes_read += outcome.actual;
        }
      }
      break;
    }
    case io_op::kWrite: {
      std::vector<uint8_t> data(length);
      Status loaded = au.ReadDataBlock(buffer, 0, data.data(), length);
      if (!loaded.ok()) {
        outcome.status = io_status::kDeviceFault;
      } else {
        outcome = model_->Write(offset, data.data(), length);
        stats_.bytes_written += outcome.actual;
      }
      break;
    }
    case io_op::kStatus:
      outcome.value = model_->StatusWord();
      outcome.cost = cycles::kSimpleOp * 4;
      break;
    default:
      // Class- or device-dependent operation: the model decides whether it exists.
      outcome = model_->Control(op, offset);
      break;
  }
  if (outcome.status != io_status::kOk) {
    ++stats_.errors;
  }

  view.SetField(IoRequestLayout::kOffStatus, 1, outcome.status);
  view.SetField(IoRequestLayout::kOffActual, 4, outcome.actual);
  view.SetField(IoRequestLayout::kOffValue, 8, outcome.value);

  if (!reply_port.is_null()) {
    (void)kernel->PostMessage(reply_port, request);
  }
  return outcome.cost;
}

IoClient::IoClient(Kernel* kernel) : kernel_(kernel) {
  auto port = kernel_->ports().CreatePort(kernel_->memory().global_heap(), 8,
                                          QueueDiscipline::kFifo);
  IMAX_CHECK(port.ok());
  reply_port_ = port.value();
  kernel_->AddRootProvider([port = reply_port_](std::vector<AccessDescriptor>* roots) {
    roots->push_back(port);
  });
}

Result<IoOutcome> IoClient::Execute(const AccessDescriptor& device_port,
                                    const AccessDescriptor& request) {
  IMAX_RETURN_IF_FAULT(kernel_->PostMessage(device_port, request));
  kernel_->Run();  // let the server process the request in virtual time
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor reply, kernel_->ports().Dequeue(reply_port_));
  if (!reply.SameObject(request)) {
    return Fault::kWrongState;
  }
  ObjectView view(&kernel_->machine().addressing(), reply);
  IoOutcome outcome;
  outcome.status = static_cast<uint8_t>(view.Field(IoRequestLayout::kOffStatus, 1));
  outcome.actual = static_cast<uint32_t>(view.Field(IoRequestLayout::kOffActual, 4));
  outcome.value = view.Field(IoRequestLayout::kOffValue, 8);
  return outcome;
}

Result<IoOutcome> IoClient::Transfer(const AccessDescriptor& device_port, uint8_t op,
                                     uint32_t offset, const AccessDescriptor& buffer,
                                     uint32_t length) {
  IMAX_ASSIGN_OR_RETURN(
      AccessDescriptor request,
      kernel_->memory().CreateObject(kernel_->memory().global_heap(), SystemType::kGeneric,
                                     IoRequestLayout::kDataBytes,
                                     IoRequestLayout::kAccessSlots,
                                     rights::kRead | rights::kWrite | rights::kDelete));
  ObjectView view(&kernel_->machine().addressing(), request);
  view.SetField(IoRequestLayout::kOffOp, 1, op);
  view.SetField(IoRequestLayout::kOffOffset, 4, offset);
  view.SetField(IoRequestLayout::kOffLength, 4, length);
  IMAX_RETURN_IF_FAULT(
      kernel_->machine().addressing().WriteAd(request, IoRequestLayout::kSlotBuffer, buffer));
  view.SetSlot(IoRequestLayout::kSlotReplyPort, reply_port_);
  auto outcome = Execute(device_port, request);
  (void)kernel_->memory().DestroyObject(request);
  return outcome;
}

Result<IoOutcome> IoClient::Control(const AccessDescriptor& device_port, uint8_t op,
                                    uint32_t argument) {
  IMAX_ASSIGN_OR_RETURN(
      AccessDescriptor request,
      kernel_->memory().CreateObject(kernel_->memory().global_heap(), SystemType::kGeneric,
                                     IoRequestLayout::kDataBytes,
                                     IoRequestLayout::kAccessSlots,
                                     rights::kRead | rights::kWrite | rights::kDelete));
  ObjectView view(&kernel_->machine().addressing(), request);
  view.SetField(IoRequestLayout::kOffOp, 1, op);
  view.SetField(IoRequestLayout::kOffOffset, 4, argument);
  view.SetSlot(IoRequestLayout::kSlotReplyPort, reply_port_);
  auto outcome = Execute(device_port, request);
  (void)kernel_->memory().DestroyObject(request);
  return outcome;
}

}  // namespace imax432

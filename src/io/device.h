// DeviceModel and DeviceServer: device implementations and their package instances.
//
// Each device instance pairs a DeviceModel (the device-specific implementation) with a
// DeviceServer (the port-served daemon process). Creating a device touches no system code
// and no central list: "Any user can create a new device implementation which will behave
// identically to existing ones without in any way altering system code, say to update a
// master I/O device list or to add a new element to a case construct in the system I/O
// controller."

#ifndef IMAX432_SRC_IO_DEVICE_H_
#define IMAX432_SRC_IO_DEVICE_H_

#include <memory>

#include "src/exec/kernel.h"
#include "src/io/protocol.h"

namespace imax432 {

// The device-implementation interface. Read/Write/StatusWord are the device-independent
// subset; Control carries every class- and device-dependent operation. A model that does
// not implement an operation answers io_status::kBadOperation — the protocol's equivalent
// of calling outside a package's specification.
class DeviceModel {
 public:
  virtual ~DeviceModel() = default;

  virtual const char* kind() const = 0;
  virtual IoOutcome Read(uint32_t offset, uint8_t* out, uint32_t length) = 0;
  virtual IoOutcome Write(uint32_t offset, const uint8_t* in, uint32_t length) = 0;
  virtual IoOutcome Control(uint8_t op, uint32_t argument) = 0;
  virtual uint64_t StatusWord() const = 0;
};

struct DeviceStats {
  uint64_t requests = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t errors = 0;
};

// A running device instance.
class DeviceServer {
 public:
  // Creates the request port and server process and starts serving. The server runs at the
  // iMAX services level.
  static Result<std::unique_ptr<DeviceServer>> Spawn(Kernel* kernel,
                                                     std::unique_ptr<DeviceModel> model,
                                                     uint8_t priority = 200);

  // The device's identity: holding this AD (with send rights) is access to the device.
  const AccessDescriptor& request_port() const { return request_port_; }
  const AccessDescriptor& server_process() const { return server_process_; }
  DeviceModel& model() { return *model_; }
  const DeviceStats& stats() const { return stats_; }

 private:
  DeviceServer() = default;

  // Handles one request object: performs the operation, fills the reply fields, returns the
  // operation's virtual cost. Exposed to the daemon's native step.
  Result<Cycles> Serve(Kernel* kernel, const AccessDescriptor& request);

  std::unique_ptr<DeviceModel> model_;
  AccessDescriptor request_port_;
  AccessDescriptor server_process_;
  DeviceStats stats_;
};

// Host-side client helper: builds, sends and awaits requests outside virtual time (boot
// code and tests). Programs on the machine talk to devices with plain Send/Receive.
class IoClient {
 public:
  explicit IoClient(Kernel* kernel);

  // Performs a synchronous operation against a device port. For kRead the buffer contents
  // come back in `buffer`; for kWrite they are taken from it.
  Result<IoOutcome> Transfer(const AccessDescriptor& device_port, uint8_t op, uint32_t offset,
                             const AccessDescriptor& buffer, uint32_t length);
  Result<IoOutcome> Control(const AccessDescriptor& device_port, uint8_t op,
                            uint32_t argument);

 private:
  Result<IoOutcome> Execute(const AccessDescriptor& device_port,
                            const AccessDescriptor& request);

  Kernel* kernel_;
  AccessDescriptor reply_port_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_IO_DEVICE_H_

// The device-independent I/O protocol (§6.3).
//
// "A single specification is defined for device independent input and another for device
// independent output. Each instance of an I/O device may have a distinct implementation.
// The user interacts with each device identically but the code is specific to the device.
// ... it avoids any centralized I/O control or interface."
//
// A device instance is a package instance: one request port plus one server process. There
// is no device registry anywhere in the system — holding an AD for a device's request port
// *is* access to the device, and any party can create a new device implementation without
// touching system code.
//
// Requests are ordinary objects sent through ordinary ports. The device-independent
// operation set is the required subset; devices may accept additional device-dependent
// operations through the same port ("we actually go one step further ... by requiring only
// that a device implementation provide the common device independent interface as a
// subset"). Related devices may share class-dependent operation ranges (block devices).

#ifndef IMAX432_SRC_IO_PROTOCOL_H_
#define IMAX432_SRC_IO_PROTOCOL_H_

#include <cstdint>

#include "src/arch/types.h"

namespace imax432 {

namespace io_op {
// Device-independent operations: every device implements these.
inline constexpr uint8_t kRead = 0;    // buffer <- device[offset, offset+length)
inline constexpr uint8_t kWrite = 1;   // device[offset, ...) <- buffer
inline constexpr uint8_t kStatus = 2;  // reply value = device status word
// Class-dependent operations: block devices (disk, tape).
inline constexpr uint8_t kSeek = 16;      // position to `offset`
// Device-dependent operations: tape drives.
inline constexpr uint8_t kRewind = 32;
inline constexpr uint8_t kMount = 33;     // argument = volume id
inline constexpr uint8_t kUnmount = 34;
// Device-dependent operations: consoles.
inline constexpr uint8_t kBell = 48;
}  // namespace io_op

namespace io_status {
inline constexpr uint8_t kOk = 0;
inline constexpr uint8_t kEndOfMedium = 1;     // read/write past the device extent
inline constexpr uint8_t kNotMounted = 2;      // tape operation with no volume
inline constexpr uint8_t kBadOperation = 3;    // op code the device does not implement
inline constexpr uint8_t kDeviceFault = 4;     // simulated hard error
}  // namespace io_status

// Layout of an I/O request object. The client allocates it, fills the fields, stores the
// buffer and reply port ADs, and sends it to the device's request port; the server performs
// the operation, fills the reply fields, and sends the same object to the reply port.
struct IoRequestLayout {
  static constexpr uint32_t kOffOp = 0;        // u8  (io_op)
  static constexpr uint32_t kOffStatus = 1;    // u8  (io_status; reply)
  static constexpr uint32_t kOffOffset = 4;    // u32 (device offset / seek target / volume)
  static constexpr uint32_t kOffLength = 8;    // u32 (transfer length)
  static constexpr uint32_t kOffActual = 12;   // u32 (bytes actually moved; reply)
  static constexpr uint32_t kOffValue = 16;    // u64 (status word / op result; reply)
  static constexpr uint32_t kDataBytes = 24;

  static constexpr uint32_t kSlotBuffer = 0;     // data buffer object (read/write)
  static constexpr uint32_t kSlotReplyPort = 1;  // where the completed request returns
  static constexpr uint32_t kAccessSlots = 2;
};

// Outcome of one device operation, including its virtual-time cost (charged to the server
// process, so device latency is visible in the simulation).
struct IoOutcome {
  uint8_t status = io_status::kOk;
  uint32_t actual = 0;
  uint64_t value = 0;
  Cycles cost = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_IO_PROTOCOL_H_

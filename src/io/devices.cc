#include "src/io/devices.h"

#include <cstring>

namespace imax432 {

// --- ConsoleDevice ---

IoOutcome ConsoleDevice::Read(uint32_t offset, uint8_t* out, uint32_t length) {
  (void)offset;  // character devices ignore offsets
  IoOutcome outcome;
  uint32_t available = static_cast<uint32_t>(input_.size() - input_cursor_);
  outcome.actual = std::min(length, available);
  std::memcpy(out, input_.data() + input_cursor_, outcome.actual);
  input_cursor_ += outcome.actual;
  if (outcome.actual < length) {
    outcome.status = io_status::kEndOfMedium;
  }
  outcome.cost = static_cast<Cycles>(outcome.actual) * kCyclesPerChar;
  return outcome;
}

IoOutcome ConsoleDevice::Write(uint32_t offset, const uint8_t* in, uint32_t length) {
  (void)offset;
  IoOutcome outcome;
  output_.append(reinterpret_cast<const char*>(in), length);
  outcome.actual = length;
  outcome.cost = static_cast<Cycles>(length) * kCyclesPerChar;
  return outcome;
}

IoOutcome ConsoleDevice::Control(uint8_t op, uint32_t argument) {
  (void)argument;
  IoOutcome outcome;
  if (op == io_op::kBell) {
    ++bells_;
    outcome.cost = kCyclesPerChar;
  } else {
    outcome.status = io_status::kBadOperation;
  }
  return outcome;
}

uint64_t ConsoleDevice::StatusWord() const {
  return (input_.size() - input_cursor_) << 8 | (output_.empty() ? 0 : 1);
}

// --- TapeDevice ---

IoOutcome TapeDevice::Read(uint32_t offset, uint8_t* out, uint32_t length) {
  (void)offset;  // tapes are sequential: reads happen at the current position
  IoOutcome outcome;
  if (!mounted_) {
    outcome.status = io_status::kNotMounted;
    return outcome;
  }
  std::vector<uint8_t>& volume = (*library_)[volume_];
  if (position_ >= volume.size()) {
    outcome.status = io_status::kEndOfMedium;
    return outcome;
  }
  outcome.actual = std::min<uint32_t>(length, static_cast<uint32_t>(volume.size()) - position_);
  std::memcpy(out, volume.data() + position_, outcome.actual);
  position_ += outcome.actual;
  outcome.cost = static_cast<Cycles>(outcome.actual) * kCyclesPerByte;
  return outcome;
}

IoOutcome TapeDevice::Write(uint32_t offset, const uint8_t* in, uint32_t length) {
  (void)offset;
  IoOutcome outcome;
  if (!mounted_) {
    outcome.status = io_status::kNotMounted;
    return outcome;
  }
  if (position_ + length > capacity_) {
    outcome.status = io_status::kEndOfMedium;
    return outcome;
  }
  std::vector<uint8_t>& volume = (*library_)[volume_];
  if (volume.size() < position_ + length) {
    volume.resize(position_ + length);
  }
  std::memcpy(volume.data() + position_, in, length);
  position_ += length;
  outcome.actual = length;
  outcome.cost = static_cast<Cycles>(length) * kCyclesPerByte;
  return outcome;
}

IoOutcome TapeDevice::Control(uint8_t op, uint32_t argument) {
  IoOutcome outcome;
  switch (op) {
    case io_op::kRewind:
      if (!mounted_) {
        outcome.status = io_status::kNotMounted;
        return outcome;
      }
      position_ = 0;
      outcome.cost = kRewindCycles;
      return outcome;
    case io_op::kMount:
      mounted_ = true;
      volume_ = argument;
      position_ = 0;
      outcome.cost = kMountCycles;
      return outcome;
    case io_op::kUnmount:
      if (!mounted_) {
        outcome.status = io_status::kNotMounted;
        return outcome;
      }
      mounted_ = false;
      outcome.cost = kMountCycles;
      return outcome;
    case io_op::kSeek:  // class-dependent: block devices can position
      if (!mounted_) {
        outcome.status = io_status::kNotMounted;
        return outcome;
      }
      position_ = std::min(argument, capacity_);
      outcome.cost = kRewindCycles / 4 + static_cast<Cycles>(position_) * kCyclesPerByte / 8;
      return outcome;
    default:
      outcome.status = io_status::kBadOperation;
      return outcome;
  }
}

uint64_t TapeDevice::StatusWord() const {
  return (static_cast<uint64_t>(volume_) << 32) | (static_cast<uint64_t>(position_) << 1) |
         (mounted_ ? 1u : 0u);
}

// --- DiskDevice ---

Cycles DiskDevice::SeekCost(uint32_t target) {
  uint32_t distance = target > head_ ? target - head_ : head_ - target;
  return kSeekBaseCycles + static_cast<Cycles>(distance / 1024) * kSeekPerKilobyteCycles;
}

IoOutcome DiskDevice::Read(uint32_t offset, uint8_t* out, uint32_t length) {
  IoOutcome outcome;
  if (offset >= media_.size()) {
    outcome.status = io_status::kEndOfMedium;
    return outcome;
  }
  outcome.cost = SeekCost(offset);
  head_ = offset;
  outcome.actual = std::min<uint32_t>(length, static_cast<uint32_t>(media_.size()) - offset);
  std::memcpy(out, media_.data() + offset, outcome.actual);
  head_ += outcome.actual;
  outcome.cost += static_cast<Cycles>(outcome.actual) * kCyclesPerByte;
  if (outcome.actual < length) {
    outcome.status = io_status::kEndOfMedium;
  }
  return outcome;
}

IoOutcome DiskDevice::Write(uint32_t offset, const uint8_t* in, uint32_t length) {
  IoOutcome outcome;
  if (offset + length > media_.size()) {
    outcome.status = io_status::kEndOfMedium;
    return outcome;
  }
  outcome.cost = SeekCost(offset);
  head_ = offset;
  std::memcpy(media_.data() + offset, in, length);
  head_ += length;
  outcome.actual = length;
  outcome.cost += static_cast<Cycles>(length) * kCyclesPerByte;
  return outcome;
}

IoOutcome DiskDevice::Control(uint8_t op, uint32_t argument) {
  IoOutcome outcome;
  if (op == io_op::kSeek) {
    outcome.cost = SeekCost(argument);
    head_ = std::min(argument, static_cast<uint32_t>(media_.size()));
    return outcome;
  }
  outcome.status = io_status::kBadOperation;
  return outcome;
}

uint64_t DiskDevice::StatusWord() const {
  return (static_cast<uint64_t>(media_.size()) << 32) | head_;
}

}  // namespace imax432

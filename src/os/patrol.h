// ObjectPatrol: the object-table integrity patrol — the recovery half of the fault-injection
// story for memory corruption.
//
// The 432's central claim is that no failure propagates silently: faults become data and
// arrive at ports. Bit rot in a segment or a damaged object descriptor is the one failure
// class the hardware checks cannot catch (they validate rights and bounds, not contents), so
// the patrol closes the gap in software: a low-priority daemon — structured exactly like the
// GC daemon — walks the descriptor table in bounded increments validating, per descriptor,
//   1. the identity checksum sealed at allocation (type, level, sizes, origin SRO),
//   2. the level storing rule over every resolvable AD in the access part, and
//   3. a shadow CRC of the data part, using the descriptor's data_epoch (bumped by the
//      AddressingUnit on every mutator write) to tell a legitimate rewrite from corruption.
//
// A corrupt object is *quarantined*, never repaired: its rep-rights are revoked (descriptor
// flag; every checked access faults with kObjectQuarantined), it is pinned out of the swap
// mix, and the processes that touch it take an ordinary fault delivered to their fault
// ports — corruption becomes a policy decision instead of undefined behaviour. Only
// SystemType::kGeneric objects are ever quarantined: kernel system objects are accessed on
// paths that cannot tolerate faults, and the injector never corrupts them.

#ifndef IMAX432_SRC_OS_PATROL_H_
#define IMAX432_SRC_OS_PATROL_H_

#include <cstdint>
#include <map>

#include "src/exec/kernel.h"

namespace imax432 {

struct PatrolStats {
  uint64_t sweeps_completed = 0;
  uint64_t descriptors_scanned = 0;   // allocated descriptors examined
  uint64_t objects_quarantined = 0;
  uint64_t checksum_failures = 0;     // identity checksum mismatches (check 1)
  uint64_t invariant_failures = 0;    // level-rule violations in access parts (check 2)
  uint64_t data_crc_failures = 0;     // silent data-part mutations (check 3)
  uint64_t shadow_refreshes = 0;      // CRC baselines (re)established
};

class ObjectPatrol {
 public:
  // Which integrity check condemned an object (kObjectQuarantined trace payload b).
  enum class CheckKind : uint8_t {
    kDescriptorChecksum = 0,
    kLevelInvariant = 1,
    kDataCrc = 2,
  };

  explicit ObjectPatrol(Kernel* kernel) : kernel_(kernel) {}

  ObjectPatrol(const ObjectPatrol&) = delete;
  ObjectPatrol& operator=(const ObjectPatrol&) = delete;

  // --- Synchronous interface (tests, host-side maintenance) ---

  // Runs one full sweep over the table to completion, outside virtual time.
  PatrolStats SweepNow();

  // --- Incremental interface (the daemon) ---

  // Starts a sweep at descriptor 0.
  void BeginSweep();
  // Examines up to `units` descriptors; returns true while the sweep is unfinished.
  bool Step(uint32_t units);
  bool sweep_in_progress() const { return sweeping_; }

  // Builds the patrol daemon: a process looping { block on the request port; one full sweep
  // in bounded increments; reply if the request carried a port }. Same shape as
  // GarbageCollector::SpawnDaemon; every message posted to the returned port triggers one
  // sweep.
  Result<AccessDescriptor> SpawnDaemon(uint32_t units_per_step = 256, uint8_t priority = 16);

  // Drops shadow CRC state for a reclaimed object (System's reclaim observer).
  void Forget(ObjectIndex index) { shadow_.erase(index); }

  const PatrolStats& stats() const { return stats_; }
  uint64_t work_units() const { return work_units_; }

 private:
  // Shadow baseline for data-part CRC checking. Valid only while both generation and epoch
  // still match the descriptor: either moving on means the contents legitimately changed
  // (slot reuse / mutator write) and the baseline is re-established instead of compared.
  struct Shadow {
    uint32_t generation = 0;
    uint32_t epoch = 0;
    uint32_t crc = 0;
  };

  // Examines one descriptor; quarantines on a failed check.
  void CheckOne(ObjectIndex index);
  void Quarantine(ObjectIndex index, CheckKind kind);
  uint32_t DataCrc(const ObjectDescriptor& descriptor) const;

  Kernel* kernel_;
  std::map<ObjectIndex, Shadow> shadow_;
  bool sweeping_ = false;
  uint32_t cursor_ = 0;
  PatrolStats stats_;
  uint64_t work_units_ = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OS_PATROL_H_

// Scheduler packages layered on the basic process manager (§6.1).
//
// "Using this basic process manager, many resource control policies are possible. For
// example, the null policy simply passes through the dispatching parameters of the hardware
// and permits its users to commit them in any way they wish. ... For this and other more
// complex applications a user-process manager may build much more complex policies on the
// basic process manager. ... The system is configured by selecting those packages that
// provide the facilities needed in a particular application: just the basic process manager,
// it plus some simple scheduler, or an arbitrarily complex resource controller."
//
// Each scheduler here is a *package instance*: a daemon process plus its scheduler port.
// Processes configured with that port have their dispatching-mix transitions routed through
// the daemon, which applies its policy and admits them. The null policy is the absence of a
// scheduler port — configuration by package selection, exactly as the paper describes.

#ifndef IMAX432_SRC_OS_SCHEDULERS_H_
#define IMAX432_SRC_OS_SCHEDULERS_H_

#include "src/exec/kernel.h"
#include "src/os/process_manager.h"

namespace imax432 {

struct SchedulerStats {
  uint64_t admitted = 0;     // processes passed into the dispatching mix
  uint64_t adjusted = 0;     // processes whose dispatching parameters were rewritten
};

// A scheduler instance: the port to configure processes with, plus the daemon that serves
// it. Destroying nothing is required: the daemon and port are ordinary objects, reclaimed
// by the GC once unreferenced.
struct SchedulerInstance {
  AccessDescriptor port;     // set as ProcessOptions::scheduler_port
  AccessDescriptor daemon;   // the scheduler's own process
};

// A pass-through scheduler that admits every process unchanged but observes traffic.
// Functionally the null policy, packaged as a daemon — useful to measure the cost of
// scheduler mediation itself (bench E7).
Result<SchedulerInstance> SpawnPassThroughScheduler(Kernel* kernel,
                                                    BasicProcessManager* manager,
                                                    SchedulerStats* stats);

// A priority-leveling ("fair share") scheduler: before admitting a process it rewrites the
// process's hardware priority downward in proportion to cycles already consumed, so heavy
// consumers yield the bus and processors to light ones. Demonstrates "much more complex
// policies ... built on the basic process manager" without the manager being aware.
Result<SchedulerInstance> SpawnFairShareScheduler(Kernel* kernel, BasicProcessManager* manager,
                                                  SchedulerStats* stats,
                                                  uint8_t base_priority = 128,
                                                  uint64_t cycles_per_priority_step = 100000);

// A gating batch scheduler: admits at most `max_concurrent` of its processes into the mix;
// further ones wait at the scheduler until one of the admitted processes terminates (the
// scheduler learns of terminations through the process-event handler, so callers must route
// kernel process events to NotifyTermination).
class BatchScheduler {
 public:
  BatchScheduler(Kernel* kernel, BasicProcessManager* manager, uint32_t max_concurrent);

  Result<SchedulerInstance> Spawn();
  // Must be called from the kernel's process-event handler on kTerminated events.
  void NotifyTermination(const AccessDescriptor& process);

  const SchedulerStats& stats() const { return stats_; }

 private:
  void TryAdmit();

  Kernel* kernel_;
  BasicProcessManager* manager_;
  uint32_t max_concurrent_;
  uint32_t running_ = 0;
  std::vector<AccessDescriptor> waiting_;
  SchedulerStats stats_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OS_SCHEDULERS_H_

// Introspection: system census and utilization reporting.
//
// The capability discipline makes *global* inquiries deliberately hard for ordinary software
// (§7.1: "the process manager does not know what all the processes in the system are... it
// is a convenient tenet of the capability approach to protection that they should not" be
// answerable). The object *table*, however, is hardware state, and the 432's debug and
// maintenance tools could walk it. This package is that maintenance view: a privileged,
// read-only census over the descriptor table and the processor objects, for operators,
// examples and benchmarks — not an API that packages can use to find each other's objects
// (it returns aggregate numbers, never ADs).

#ifndef IMAX432_SRC_OS_INTROSPECTION_H_
#define IMAX432_SRC_OS_INTROSPECTION_H_

#include <cstdint>
#include <string>

#include "src/exec/kernel.h"
#include "src/gc/collector.h"
#include "src/os/schedulers.h"

namespace imax432 {

struct ObjectCensus {
  uint32_t live_objects = 0;
  uint32_t table_capacity = 0;
  uint32_t count_by_type[kNumSystemTypes] = {};
  uint64_t data_bytes_by_type[kNumSystemTypes] = {};
  uint32_t swapped_out = 0;
  uint32_t user_typed = 0;            // objects minted through a TDO
  uint64_t total_data_bytes = 0;
  uint64_t total_access_slots = 0;
  uint32_t max_level = 0;
};

struct ProcessorReport {
  uint16_t id = 0;
  ProcessorState state = ProcessorState::kIdle;
  uint64_t busy_cycles = 0;
  uint64_t idle_cycles = 0;
  uint64_t dispatches = 0;
  double utilization = 0.0;           // busy / now
};

struct SystemReport {
  Cycles now = 0;
  ObjectCensus census;
  std::vector<ProcessorReport> processors;
  double bus_utilization = 0.0;
  KernelStats kernel;
  MemoryStats memory;
  PortStats ports;
  // Optional sections, filled when the corresponding package is attached to the monitor.
  bool has_gc = false;
  GcStats gc;
  bool has_scheduler = false;
  SchedulerStats scheduler;
};

class Introspection {
 public:
  explicit Introspection(Kernel* kernel) : kernel_(kernel) {}

  // The kernel does not know which optional packages the system assembled on top of it;
  // attaching them here adds their counters to subsequent Report() calls. Pointers must
  // outlive the monitor.
  void AttachGc(const GarbageCollector* gc) { gc_ = gc; }
  void AttachScheduler(const SchedulerStats* scheduler) { scheduler_ = scheduler; }

  ObjectCensus TakeCensus() const;
  SystemReport Report() const;

  // Renders a report as a human-readable multi-line string (used by examples).
  static std::string Format(const SystemReport& report);

 private:
  Kernel* kernel_;
  const GarbageCollector* gc_ = nullptr;
  const SchedulerStats* scheduler_ = nullptr;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OS_INTROSPECTION_H_

#include "src/os/process_manager.h"

namespace imax432 {

Result<AccessDescriptor> BasicProcessManager::Create(ProgramRef program,
                                                     const ProcessOptions& options) {
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor process,
                        kernel_->CreateProcess(std::move(program), options));
  ++stats_.created;
  return process;
}

Status BasicProcessManager::VisitTree(
    const AccessDescriptor& process,
    const std::function<void(const AccessDescriptor&)>& fn) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                        kernel_->machine().table().Resolve(process));
  if (descriptor->type != SystemType::kProcess) {
    return Fault::kTypeMismatch;
  }
  fn(process);
  ProcessView view(&kernel_->machine().addressing(), process);
  AccessDescriptor child = view.Slot(ProcessLayout::kSlotFirstChild);
  while (!child.is_null()) {
    if (!kernel_->machine().table().Resolve(child).ok()) {
      break;  // child already reclaimed
    }
    IMAX_RETURN_IF_FAULT(VisitTree(child, fn));
    child = ProcessView(&kernel_->machine().addressing(), child)
                .Slot(ProcessLayout::kSlotNextSibling);
  }
  return Status::Ok();
}

Result<uint32_t> BasicProcessManager::TreeSize(const AccessDescriptor& process) const {
  uint32_t count = 0;
  IMAX_RETURN_IF_FAULT(VisitTree(process, [&count](const AccessDescriptor&) { ++count; }));
  return count;
}

Status BasicProcessManager::StartOne(const AccessDescriptor& process) {
  ProcessView proc = kernel_->process_view(process);
  if (proc.state() == ProcessState::kTerminated) {
    return Status::Ok();  // starts against finished processes are inert
  }
  int16_t count = proc.stop_count();
  if (count <= 0) {
    return Status::Ok();  // already runnable; extra starts do not accumulate
  }
  proc.set_stop_count(static_cast<int16_t>(count - 1));
  if (proc.stop_count() != 0) {
    return Status::Ok();
  }
  // The process enters the dispatching mix.
  ++stats_.transitions;
  AccessDescriptor scheduler_port = proc.scheduler_port();
  ProcessState state = proc.state();
  bool eligible = state == ProcessState::kEmbryo || state == ProcessState::kStopped;
  if (!eligible) {
    // It was blocked or faulted while stopped; it rejoins the mix when that condition
    // clears (MakeReady consults the stop count at that point).
    return Status::Ok();
  }
  if (!scheduler_port.is_null()) {
    // "it will be sent to its process scheduler. The scheduler can then make resource
    // decisions by regarding it as an individual process."
    ++stats_.scheduler_notifications;
    return kernel_->PostMessage(scheduler_port, process);
  }
  return kernel_->MakeReady(process);
}

Status BasicProcessManager::StopOne(const AccessDescriptor& process) {
  ProcessView proc = kernel_->process_view(process);
  if (proc.state() == ProcessState::kTerminated) {
    return Status::Ok();
  }
  int16_t count = proc.stop_count();
  proc.set_stop_count(static_cast<int16_t>(count + 1));
  if (count == 0) {
    // The process leaves the dispatching mix (the kernel parks it at the next boundary).
    ++stats_.transitions;
    AccessDescriptor scheduler_port = proc.scheduler_port();
    if (!scheduler_port.is_null()) {
      ++stats_.scheduler_notifications;
      (void)kernel_->PostMessage(scheduler_port, process);
    }
  }
  return Status::Ok();
}

Status BasicProcessManager::Start(const AccessDescriptor& process) {
  ++stats_.tree_starts;
  return VisitTree(process,
                   [this](const AccessDescriptor& node) { (void)StartOne(node); });
}

Status BasicProcessManager::Stop(const AccessDescriptor& process) {
  ++stats_.tree_stops;
  return VisitTree(process, [this](const AccessDescriptor& node) { (void)StopOne(node); });
}

Result<bool> BasicProcessManager::IsRunnable(const AccessDescriptor& process) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                        kernel_->machine().table().Resolve(process));
  if (descriptor->type != SystemType::kProcess) {
    return Fault::kTypeMismatch;
  }
  ProcessView proc(&kernel_->machine().addressing(), process);
  return proc.stop_count() <= 0;
}

}  // namespace imax432

// FaultService: a fault-handling package layered on the hardware fault-delivery mechanism.
//
// The hardware "send[s] them back to software when various fault or scheduling conditions
// arise": a faulted process object arrives, as a message, at its fault port. *Something*
// must serve that port; this package is the standard something — a daemon process that
// receives faulted processes and applies a policy per fault code:
//   - kRetry    : resume the process at the faulting instruction (transient conditions:
//                 timeouts, storage exhaustion after a GC cycle has run);
//   - kTerminate: give up on the process;
//   - kDeliver  : forward the process object to an escalation port for a smarter handler.
// Per-process retry budgets prevent fault loops. Like every iMAX service it is configured
// by selection: processes that name this service's port get the policy; others keep the
// default terminate-on-fault behaviour.

#ifndef IMAX432_SRC_OS_FAULT_SERVICE_H_
#define IMAX432_SRC_OS_FAULT_SERVICE_H_

#include <cstdint>
#include <map>
#include <utility>

#include "src/exec/kernel.h"

namespace imax432 {

enum class FaultAction : uint8_t {
  kTerminate = 0,
  kRetry,
  kDeliver,  // forward to the escalation port
};

struct FaultPolicy {
  // Action per fault code; anything unlisted gets `default_action`.
  std::map<Fault, FaultAction> actions;
  FaultAction default_action = FaultAction::kTerminate;
  // Retries allowed per (process, fault code) before termination regardless of policy.
  uint32_t retry_budget = 3;
  // Per-fault-code budget overrides: transient conditions (kDeviceError, kTimeout) deserve
  // more patience than logic faults. kObjectQuarantined is special-cased to zero by the
  // service itself — retrying an access to a corrupt object can never succeed.
  std::map<Fault, uint32_t> retry_budgets;
};

struct FaultServiceStats {
  uint64_t received = 0;
  uint64_t retried = 0;
  uint64_t terminated = 0;
  uint64_t escalated = 0;
  uint64_t budget_exhausted = 0;
};

class MetricsRegistry;

class FaultService {
 public:
  FaultService(Kernel* kernel, FaultPolicy policy)
      : kernel_(kernel), policy_(std::move(policy)) {}

  // The policy matched to the injectable fault classes: generous retries for transient
  // device errors and timeouts, a couple for storage exhaustion (a GC cycle may free
  // space), and immediate termination for quarantined-object faults (retry cannot help;
  // the object stays corrupt).
  static FaultPolicy MakeRecoveryPolicy();

  // Spawns the handler daemon. Returns the fault port to configure processes with
  // (ProcessOptions::fault_port). `escalation_port` receives kDeliver-class processes
  // (null = treat kDeliver as kTerminate).
  Result<AccessDescriptor> Spawn(const AccessDescriptor& escalation_port = {});

  // Exposes stats() through a registry group (the System constructor cannot: the fault
  // service is configured by selection, à la carte).
  void RegisterMetrics(MetricsRegistry* registry, const char* group = "fault_service");

  const FaultServiceStats& stats() const { return stats_; }

 private:
  void Handle(const AccessDescriptor& process);
  // Effective retry budget for one fault code under the current policy.
  uint32_t BudgetFor(Fault fault) const;

  Kernel* kernel_;
  FaultPolicy policy_;
  AccessDescriptor escalation_port_;
  // Retry counts per (process, fault code): a process with recurring device errors must
  // not burn the budget of an unrelated later timeout.
  std::map<std::pair<ObjectIndex, Fault>, uint32_t> retries_;
  FaultServiceStats stats_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OS_FAULT_SERVICE_H_

#include "src/os/type_manager.h"

namespace imax432 {

Result<AccessDescriptor> TypeManagerFacility::CreateTypeDefinition(
    uint32_t type_id, const AccessDescriptor& filter_port) {
  IMAX_ASSIGN_OR_RETURN(
      AccessDescriptor tdo,
      kernel_->memory().CreateObject(kernel_->memory().global_heap(),
                                     SystemType::kTypeDefinition, TdoLayout::kDataBytes,
                                     TdoLayout::kAccessSlots,
                                     rights::kRead | rights::kWrite | rights::kTdoCreate |
                                         rights::kTdoAmplify));
  ObjectView view(&kernel_->machine().addressing(), tdo);
  view.SetField(TdoLayout::kOffTypeId, 4, type_id);
  if (!filter_port.is_null()) {
    IMAX_ASSIGN_OR_RETURN(
        ObjectDescriptor * port_descriptor,
        kernel_->machine().addressing().ResolveTyped(filter_port, SystemType::kPort,
                                                     rights::kNone));
    (void)port_descriptor;
    view.SetField(TdoLayout::kOffHasFilter, 1, 1);
    view.SetSlot(TdoLayout::kSlotFilterPort, filter_port);
  }
  return tdo;
}

Result<const ObjectDescriptor*> TypeManagerFacility::ResolveTdo(const AccessDescriptor& tdo,
                                                                RightsMask required) const {
  IMAX_ASSIGN_OR_RETURN(
      ObjectDescriptor * descriptor,
      kernel_->machine().addressing().ResolveTyped(tdo, SystemType::kTypeDefinition,
                                                   required));
  return static_cast<const ObjectDescriptor*>(descriptor);
}

Result<AccessDescriptor> TypeManagerFacility::CreateTypedObject(
    const AccessDescriptor& tdo, const AccessDescriptor& sro_ad, uint32_t data_bytes,
    uint32_t access_slots, RightsMask ad_rights) {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* tdo_descriptor,
                        ResolveTdo(tdo, rights::kTdoCreate));
  (void)tdo_descriptor;
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor object,
                        kernel_->memory().CreateObject(sro_ad, SystemType::kGeneric,
                                                       data_bytes, access_slots, ad_rights));
  kernel_->machine().table().At(object.index()).type_def = tdo.index();

  // Bump the TDO's created counter.
  ObjectView view(&kernel_->machine().addressing(), tdo);
  view.Increment(TdoLayout::kOffCreated, 8);
  return object;
}

Status TypeManagerFacility::CheckType(const AccessDescriptor& ad,
                                      const AccessDescriptor& tdo) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                        kernel_->machine().table().Resolve(ad));
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* tdo_descriptor,
                        ResolveTdo(tdo, rights::kNone));
  (void)tdo_descriptor;
  if (descriptor->type_def != tdo.index()) {
    return Fault::kTypeMismatch;
  }
  return Status::Ok();
}

Result<AccessDescriptor> TypeManagerFacility::Amplify(const AccessDescriptor& ad,
                                                      const AccessDescriptor& tdo,
                                                      RightsMask add_rights) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* tdo_descriptor,
                        ResolveTdo(tdo, rights::kTdoAmplify));
  (void)tdo_descriptor;
  IMAX_RETURN_IF_FAULT(CheckType(ad, tdo));
  return AccessDescriptor(ad.index(), ad.generation(),
                          static_cast<RightsMask>(ad.rights() | add_rights));
}

Result<uint32_t> TypeManagerFacility::TypeIdOf(const AccessDescriptor& ad) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor,
                        kernel_->machine().table().Resolve(ad));
  if (descriptor->type_def == kInvalidObjectIndex) {
    return Fault::kNotFound;
  }
  const ObjectDescriptor& tdo = kernel_->machine().table().At(descriptor->type_def);
  if (!tdo.allocated || tdo.type != SystemType::kTypeDefinition) {
    return Fault::kNotFound;
  }
  IMAX_ASSIGN_OR_RETURN(uint64_t type_id,
                        kernel_->machine().memory().Read(
                            tdo.data_base + TdoLayout::kOffTypeId, 4));
  return static_cast<uint32_t>(type_id);
}

Result<uint64_t> TypeManagerFacility::CreatedCount(const AccessDescriptor& tdo) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor, ResolveTdo(tdo, rights::kNone));
  return kernel_->machine().memory().Read(descriptor->data_base + TdoLayout::kOffCreated, 8);
}

Result<uint64_t> TypeManagerFacility::FinalizedCount(const AccessDescriptor& tdo) const {
  IMAX_ASSIGN_OR_RETURN(const ObjectDescriptor* descriptor, ResolveTdo(tdo, rights::kNone));
  return kernel_->machine().memory().Read(descriptor->data_base + TdoLayout::kOffFinalized,
                                          8);
}

}  // namespace imax432

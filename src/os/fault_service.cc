#include "src/os/fault_service.h"

#include "src/base/log.h"
#include "src/obs/metrics.h"

namespace imax432 {

FaultPolicy FaultService::MakeRecoveryPolicy() {
  FaultPolicy policy;
  policy.actions[Fault::kDeviceError] = FaultAction::kRetry;
  policy.actions[Fault::kTimeout] = FaultAction::kRetry;
  policy.actions[Fault::kStorageExhausted] = FaultAction::kRetry;
  policy.actions[Fault::kObjectQuarantined] = FaultAction::kTerminate;
  policy.retry_budgets[Fault::kDeviceError] = 5;
  policy.retry_budgets[Fault::kTimeout] = 5;
  policy.retry_budgets[Fault::kStorageExhausted] = 2;
  return policy;
}

uint32_t FaultService::BudgetFor(Fault fault) const {
  if (fault == Fault::kObjectQuarantined) {
    return 0;  // corrupt is corrupt: no retry can un-quarantine the object
  }
  auto it = policy_.retry_budgets.find(fault);
  return it != policy_.retry_budgets.end() ? it->second : policy_.retry_budget;
}

void FaultService::RegisterMetrics(MetricsRegistry* registry, const char* group) {
  registry->Add(group, [this] { return CountersFor(stats_); });
}

Result<AccessDescriptor> FaultService::Spawn(const AccessDescriptor& escalation_port) {
  escalation_port_ = escalation_port;
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor fault_port,
                        kernel_->ports().CreatePort(kernel_->memory().global_heap(), 64,
                                                    QueueDiscipline::kFifo));
  kernel_->AddRootProvider([fault_port, escalation_port](
                               std::vector<AccessDescriptor>* roots) {
    roots->push_back(fault_port);
    if (!escalation_port.is_null()) {
      roots->push_back(escalation_port);
    }
  });

  Assembler a("fault-service");
  auto loop = a.NewLabel();
  a.Bind(loop);
  a.Native([fault_port](ExecutionContext&) -> Result<NativeResult> {
    NativeResult r;
    r.action = NativeResult::Action::kBlockReceive;
    r.port = fault_port;
    r.dest_adreg = 3;
    r.compute = cycles::kReceive;
    return r;
  });
  a.Native([this](ExecutionContext& env) -> Result<NativeResult> {
    AccessDescriptor faulted = env.ad_reg(3);
    env.set_ad_reg(3, AccessDescriptor());
    if (!faulted.is_null()) {
      Handle(faulted);
    }
    NativeResult r;
    r.compute = cycles::kSimpleOp * 16;
    return r;
  });
  a.Branch(loop);

  ProcessOptions options;
  options.priority = 245;  // fault handling outranks ordinary work
  options.imax_level = kImaxLevelServices;
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor daemon, kernel_->CreateProcess(a.Build(), options));
  // Fault-handling daemon cycles bin under fault recovery, not interpreter work.
  kernel_->machine().profiler().TagProcess(daemon.index(), CycleBucket::kFaultRecovery);
  IMAX_RETURN_IF_FAULT(kernel_->StartProcess(daemon));
  return fault_port;
}

void FaultService::Handle(const AccessDescriptor& process) {
  if (!kernel_->machine().table().Resolve(process).ok()) {
    return;  // already reclaimed
  }
  ++stats_.received;
  ProcessView proc = kernel_->process_view(process);
  Fault fault = proc.fault_code();

  auto it = policy_.actions.find(fault);
  FaultAction action = it != policy_.actions.end() ? it->second : policy_.default_action;

  if (action == FaultAction::kRetry) {
    uint32_t& used = retries_[{process.index(), fault}];
    if (used >= BudgetFor(fault)) {
      ++stats_.budget_exhausted;
      action = FaultAction::kTerminate;
    } else {
      ++used;
    }
  }

  switch (action) {
    case FaultAction::kRetry:
      ++stats_.retried;
      // The faulting instruction's pc was preserved at fault time; resuming re-executes it.
      if (!kernel_->ResumeProcess(process).ok()) {
        ++stats_.terminated;
      }
      return;
    case FaultAction::kDeliver:
      if (!escalation_port_.is_null() &&
          kernel_->PostMessage(escalation_port_, process).ok()) {
        ++stats_.escalated;
        return;
      }
      [[fallthrough]];
    case FaultAction::kTerminate:
      ++stats_.terminated;
      IMAX_LOG_DEBUG("fault service: terminating process %u after %s", process.index(),
                     FaultName(fault));
      // The process stays kFaulted but is never resumed; its resources are already
      // reclaimed by fault-time disposal or will be collected once unreferenced. Mark it
      // terminated so observers see a terminal state.
      proc.set_state(ProcessState::kTerminated);
      return;
  }
}

}  // namespace imax432

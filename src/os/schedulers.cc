#include "src/os/schedulers.h"

namespace imax432 {

namespace {

// Builds the daemon skeleton shared by the port-served schedulers: loop { block-receive a
// process at the scheduler port; run `decide` on it }.
// True when a process the scheduler received is waiting to be admitted into the mix.
bool AwaitingAdmission(const ProcessView& proc) {
  ProcessState state = proc.state();
  return proc.stop_count() <= 0 &&
         (state == ProcessState::kEmbryo || state == ProcessState::kStopped);
}

Result<SchedulerInstance> SpawnPortScheduler(
    Kernel* kernel, const char* name,
    std::function<void(ExecutionContext&, const AccessDescriptor&)> decide) {
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor port,
                        kernel->ports().CreatePort(kernel->memory().global_heap(), 64,
                                                   QueueDiscipline::kFifo));
  // The scheduler port is referenced only from this package (and from its processes'
  // scheduler slots); report it as a root so it outlives quiet periods.
  kernel->AddRootProvider(
      [port](std::vector<AccessDescriptor>* roots) { roots->push_back(port); });
  Assembler a(name);
  auto loop = a.NewLabel();
  a.Bind(loop);
  a.Native([port](ExecutionContext&) -> Result<NativeResult> {
    NativeResult r;
    r.action = NativeResult::Action::kBlockReceive;
    r.port = port;
    r.dest_adreg = 3;
    r.compute = cycles::kReceive;
    return r;
  });
  a.Native([decide = std::move(decide)](ExecutionContext& env) -> Result<NativeResult> {
    AccessDescriptor process = env.ad_reg(3);
    env.set_ad_reg(3, AccessDescriptor());
    if (!process.is_null()) {
      decide(env, process);
    }
    NativeResult r;
    r.compute = cycles::kSimpleOp * 8;
    return r;
  });
  a.Branch(loop);

  ProcessOptions options;
  options.priority = 250;  // schedulers outrank the processes they manage
  options.imax_level = kImaxLevelServices;
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor daemon, kernel->CreateProcess(a.Build(), options));
  IMAX_RETURN_IF_FAULT(kernel->StartProcess(daemon));
  return SchedulerInstance{port, daemon};
}

}  // namespace

Result<SchedulerInstance> SpawnPassThroughScheduler(Kernel* kernel,
                                                    BasicProcessManager* manager,
                                                    SchedulerStats* stats) {
  return SpawnPortScheduler(
      kernel, "sched-passthrough",
      [kernel, manager, stats](ExecutionContext&, const AccessDescriptor& process) {
        ProcessView proc = kernel->process_view(process);
        if (AwaitingAdmission(proc)) {
          ++stats->admitted;
          (void)manager->Admit(process);
        }
        // Processes arriving because they *left* the mix need no action under this policy.
      });
}

Result<SchedulerInstance> SpawnFairShareScheduler(Kernel* kernel, BasicProcessManager* manager,
                                                  SchedulerStats* stats, uint8_t base_priority,
                                                  uint64_t cycles_per_priority_step) {
  return SpawnPortScheduler(
      kernel, "sched-fairshare",
      [kernel, manager, stats, base_priority,
       cycles_per_priority_step](ExecutionContext&, const AccessDescriptor& process) {
        ProcessView proc = kernel->process_view(process);
        if (!AwaitingAdmission(proc)) {
          return;
        }
        // Rewrite the hardware dispatching parameter: heavier consumers sink in priority.
        uint64_t penalty = proc.consumed() / cycles_per_priority_step;
        uint8_t priority =
            penalty >= base_priority ? 1 : static_cast<uint8_t>(base_priority - penalty);
        proc.set_priority(priority);
        ++stats->adjusted;
        ++stats->admitted;
        (void)manager->Admit(process);
      });
}

BatchScheduler::BatchScheduler(Kernel* kernel, BasicProcessManager* manager,
                               uint32_t max_concurrent)
    : kernel_(kernel), manager_(manager), max_concurrent_(max_concurrent) {}

Result<SchedulerInstance> BatchScheduler::Spawn() {
  // Processes parked in waiting_ are referenced only from this package's C++ state, so they
  // must be reported to the collector as roots.
  kernel_->AddRootProvider([this](std::vector<AccessDescriptor>* roots) {
    for (const AccessDescriptor& process : waiting_) {
      roots->push_back(process);
    }
  });
  return SpawnPortScheduler(
      kernel_, "sched-batch", [this](ExecutionContext&, const AccessDescriptor& process) {
        ProcessView proc = kernel_->process_view(process);
        if (!AwaitingAdmission(proc)) {
          return;
        }
        waiting_.push_back(process);
        TryAdmit();
      });
}

void BatchScheduler::TryAdmit() {
  while (running_ < max_concurrent_ && !waiting_.empty()) {
    AccessDescriptor process = waiting_.front();
    waiting_.erase(waiting_.begin());
    if (!kernel_->machine().table().Resolve(process).ok()) {
      continue;
    }
    ++running_;
    ++stats_.admitted;
    (void)manager_->Admit(process);
  }
}

void BatchScheduler::NotifyTermination(const AccessDescriptor& process) {
  (void)process;
  if (running_ > 0) {
    --running_;
  }
  TryAdmit();
}

}  // namespace imax432

// System: the assembled iMAX-432 system — the library's top-level entry point.
//
// Construction is system initialization: it boots the storage system (choosing one of the
// two memory-manager implementations behind the common specification, §6.2), brings the
// configured number of general data processors online, starts the garbage-collector daemon,
// and wires the destruction-filter and subsystem-cleanup plumbing. Everything a user program
// needs is reachable from here; the individual packages (ports, process manager, type
// manager, schedulers, devices) can also be used à la carte, which is the configurability
// philosophy of §6: "The system is configured by selecting those packages that provide the
// facilities needed in a particular application."

#ifndef IMAX432_SRC_OS_SYSTEM_H_
#define IMAX432_SRC_OS_SYSTEM_H_

#include <memory>

#include "src/exec/kernel.h"
#include "src/filing/object_store.h"
#include "src/filing/stable_store.h"
#include "src/gc/collector.h"
#include "src/memory/basic_memory_manager.h"
#include "src/memory/swapping_memory_manager.h"
#include "src/os/patrol.h"
#include "src/os/ports_api.h"
#include "src/os/process_manager.h"
#include "src/os/type_manager.h"

namespace imax432 {

enum class MemoryManagerKind : uint8_t {
  kNonSwapping,  // first iMAX release
  kSwapping,     // second release
};

struct SystemConfig {
  MachineConfig machine;
  int processors = 2;
  MemoryManagerKind memory_manager = MemoryManagerKind::kNonSwapping;
  bool start_gc_daemon = true;
  uint32_t gc_units_per_step = 512;
  // Arm the lost-process recovery filter ("The first release of iMAX uses this facility
  // only to recover lost process objects"). Recovered process objects appear at
  // lost_process_port().
  bool recover_lost_processes = false;
  // Run the static capability verifier (src/analysis) over every program loaded through
  // CreateProcess / CreateDomain; provably-faulting programs are rejected with
  // Fault::kVerificationFailed instead of being dispatched.
  bool verify_on_load = false;
  // Record cycle-timestamped kernel events (dispatches, port traffic, allocations, GC
  // phases, ...) into the machine's TraceRecorder ring, and route kTrace-level log lines
  // into its annotation channel. Export with ExportChromeTrace (src/obs/perfetto.h) or the
  // imax_trace tool. Off by default: the disabled hooks cost one predicted branch each.
  bool trace = false;
  uint32_t trace_capacity = TraceRecorder::kDefaultCapacity;
  // Run the dynamic data-race sanitizer (src/analysis/races/sanitizer.h): vector clocks
  // over port transfers, checked at every data / access-part touch. Findings surface as
  // kRaceDetected trace events and via kernel().race_sanitizer()->races(). Pure observer:
  // the simulated timeline is bit-identical with it on or off.
  bool race_sanitize = false;
  // Start the object-table patrol daemon (src/os/patrol.h): a low-priority process that
  // validates descriptor checksums, level invariants and data-part CRCs, quarantining
  // corrupt objects. Request sweeps via patrol_request_port(); synchronous sweeps via
  // patrol().SweepNow(). Off by default — the patrol only earns its cycles when faults are
  // being injected (or real corruption is suspected).
  bool start_patrol_daemon = false;
  uint32_t patrol_units_per_step = 256;
  // GC-load demotion (src/analysis/lifetime): allocations the static lifetime analysis
  // proves context-local are taken from a per-context demote SRO, marked gc_exempt (the
  // collector never traces or sweeps them), and bulk-destroyed at context exit. Requires
  // verify_on_load — without program summaries no site is ever demotable, so the flag is
  // inert. Cycle charges are identical on both allocation paths; the simulated timeline is
  // deterministic per configuration.
  bool lifetime_demote = false;
  // Dynamic cross-check for the demotion verdicts (src/analysis/lifetime/auditor.h): at
  // every demote-SRO bulk destroy, flat-scan the live object table for surviving references
  // into the doomed population. Escapes raise kLifetimeViolation trace events and count in
  // kernel().stats().lifetime_violations. Pure observer: bit-identical timeline on or off.
  bool lifetime_audit = false;
  uint32_t demote_sro_bytes = 16 * 1024;

  // Per-processor AD-translation cache in the addressing-unit / program-fetch hot path.
  // Entries are either interference-analysis-certified immutable (no revalidation) or
  // epoch-keyed against descriptor generation + data_epoch. Host-side only: zero cycle
  // charges, bit-identical virtual time with the cache on or off.
  bool xlat_cache = false;
  // Dynamic cross-check for the certified tier (src/analysis/interference/auditor.h):
  // every certified cache hit re-reads the live descriptor and verifies the immutability
  // claim still holds. Violations raise kInterferenceViolation trace events and count in
  // kernel().stats().interference_violations. Pure observer.
  bool interference_audit = false;

  // Per-processor decode cache (src/arch/decode_cache.h): pre-decoded instruction segments
  // keyed by (segment, generation, data_epoch, ProgramStore version), with per-instruction
  // check-elision masks certified by the guard-dominance analysis
  // (src/analysis/guards/guards.h). Certified instructions skip the rights/bounds checks a
  // dominating check already performed; everything else keeps the full layered checks.
  // Host-side only: zero cycle charges, bit-identical virtual time with the cache on or off.
  bool decode_cache = false;
  // Dynamic cross-check for check-elided execution (src/analysis/guards/auditor.h): every
  // elided access re-runs the skipped rights/bounds checks against the live descriptor.
  // Violations raise kGuardViolation trace events and count in
  // kernel().stats().guard_violations. Pure observer.
  bool guard_audit = false;

  // Cycle-attribution profiler (src/obs/profiler.h): bin every virtual cycle of every GDP
  // into a CycleBucket, plus a deterministic 1-in-N hot-site sample of interpreter dispatch.
  // Pure observer: zero cycle charges, bit-identical virtual time (and replay fingerprint)
  // on or off.
  bool profile = false;
  uint32_t profile_sample_period = 64;
  // Causal span tracing (src/obs/span.h): Dapper-style request trees over port sends,
  // direct handoffs, domain calls and process spawns. Pure observer, same guarantee.
  bool span_trace = false;
  uint32_t span_capacity = 1 << 20;

  // Stable device backing the filing system's write-ahead journal (src/filing/journal.h).
  // Non-owned: the device outlives the System — that is the whole point. A crash-restart
  // driver hands the same StableStore to successive Systems; each boot replays the journal
  // into filing() before anything else runs (recovery status at filing_recovery_status()).
  // Null leaves filing() purely in-memory, the pre-journal behaviour.
  StableStore* stable_store = nullptr;
  // Journaled mutations between automatic checkpoint compactions (0 = never compact
  // automatically).
  uint32_t filing_checkpoint_interval = 64;
};

class System {
 public:
  explicit System(const SystemConfig& config);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // --- Component access ---
  Machine& machine() { return machine_; }
  MemoryManager& memory() { return *memory_; }
  Kernel& kernel() { return *kernel_; }
  GarbageCollector& gc() { return *gc_; }
  ObjectPatrol& patrol() { return *patrol_; }
  TypeManagerFacility& types() { return *types_; }
  BasicProcessManager& process_manager() { return *process_manager_; }
  UntypedPorts& ports() { return *ports_api_; }
  ObjectStore& filing() { return *filing_; }
  // Null unless a stable_store was configured.
  Journal* journal() { return journal_.get(); }
  // Outcome of the boot-time journal replay (Ok when no stable_store is configured; an
  // unreadable device yields kDeviceError and an empty store, never a boot panic).
  Status filing_recovery_status() const { return filing_recovery_status_; }

  // --- Conveniences ---

  // Creates and starts a user process in one step (null scheduling policy).
  Result<AccessDescriptor> Spawn(ProgramRef program, const ProcessOptions& options = {});

  // Requests one garbage collection cycle from the daemon and returns immediately; the
  // cycle runs in virtual time. (Use gc().CollectNow() for a synchronous host-side cycle.)
  Status RequestCollection();

  // Runs the machine until no event remains.
  void Run() { kernel_->Run(); }
  void RunUntil(Cycles deadline) { kernel_->RunUntil(deadline); }
  Cycles now() const { return machine_.now(); }

  // Where recovered lost processes arrive (null unless configured).
  AccessDescriptor lost_process_port() const { return lost_process_port_; }
  AccessDescriptor gc_request_port() const { return gc_request_port_; }
  AccessDescriptor patrol_request_port() const { return patrol_request_port_; }

  // Requests one patrol sweep from the daemon (kWrongState unless it was started).
  Status RequestPatrolSweep();

 private:
  // Trampoline handed to SetTraceLogSink: lands kTrace log lines in the machine's trace.
  static void TraceLogThunk(void* user, const char* message);

  MachineConfig machine_config_;
  Machine machine_;
  std::unique_ptr<MemoryManager> memory_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<GarbageCollector> gc_;
  std::unique_ptr<ObjectPatrol> patrol_;
  std::unique_ptr<TypeManagerFacility> types_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<ObjectStore> filing_;
  Status filing_recovery_status_;
  std::unique_ptr<BasicProcessManager> process_manager_;
  std::unique_ptr<UntypedPorts> ports_api_;
  AccessDescriptor gc_request_port_;
  AccessDescriptor patrol_request_port_;
  AccessDescriptor lost_process_port_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OS_SYSTEM_H_

// TypeManagerFacility: the user type definition facility of the 432.
//
// "via the user type definition facilities of the 432 such a guarantee [hardware-checked
// type identity] is available to any user defined object type as well as to those object
// types recognized by the hardware." (§7.2)
//
// A type manager package creates one type definition object (TDO) per private type it
// manages. Objects minted through a TDO carry the TDO's identity in their descriptor; the
// identity survives any channel the object passes through (ports, filing, other packages),
// so a manager can always re-verify what it is handed — the paper's point about storage
// channels that lose compile-time typing. Rights amplification is the TDO-holder's
// privilege: only the manager (holding kTdoAmplify) can turn the restricted ADs it hands
// out back into full-rights ADs inside its own domain.
//
// A TDO may also arm a *destruction filter* (§8.2): a port to which the garbage collector
// sends any object of the type found to be garbage, so the manager can disassemble real
// resources (the tape-drive example) instead of losing them.

#ifndef IMAX432_SRC_OS_TYPE_MANAGER_H_
#define IMAX432_SRC_OS_TYPE_MANAGER_H_

#include "src/exec/kernel.h"
#include "src/proc/layouts.h"

namespace imax432 {

class TypeManagerFacility {
 public:
  explicit TypeManagerFacility(Kernel* kernel) : kernel_(kernel) {}

  // Creates a type definition object. The returned AD carries create + amplify rights: it is
  // the type manager's most private possession. `filter_port`, when non-null, arms the
  // destruction filter for the type.
  Result<AccessDescriptor> CreateTypeDefinition(uint32_t type_id,
                                                const AccessDescriptor& filter_port = {});

  // Creates an object of the user type defined by `tdo` (requires kTdoCreate rights on the
  // TDO). The object's hardware-recognized identity is the TDO, forever.
  Result<AccessDescriptor> CreateTypedObject(const AccessDescriptor& tdo,
                                             const AccessDescriptor& sro_ad,
                                             uint32_t data_bytes, uint32_t access_slots,
                                             RightsMask ad_rights);

  // Verifies that `ad` designates an object of the type defined by `tdo`. This is the
  // runtime type check used by dynamically-typed ports and by type managers receiving
  // objects from untrusted channels.
  Status CheckType(const AccessDescriptor& ad, const AccessDescriptor& tdo) const;

  // Rights amplification: returns a copy of `ad` with `add_rights` added. Requires
  // kTdoAmplify rights on the TDO *and* that the object is of the TDO's type — the two
  // conditions that make amplification safe to expose.
  Result<AccessDescriptor> Amplify(const AccessDescriptor& ad, const AccessDescriptor& tdo,
                                   RightsMask add_rights) const;

  // Reads the type id of the object behind `ad`, or kNotFound for plain objects.
  Result<uint32_t> TypeIdOf(const AccessDescriptor& ad) const;

  // Statistics from the TDO's architectural counters.
  Result<uint64_t> CreatedCount(const AccessDescriptor& tdo) const;
  Result<uint64_t> FinalizedCount(const AccessDescriptor& tdo) const;

 private:
  Result<const ObjectDescriptor*> ResolveTdo(const AccessDescriptor& tdo,
                                             RightsMask required) const;

  Kernel* kernel_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OS_TYPE_MANAGER_H_

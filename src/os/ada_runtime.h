// AdaRuntime: the Ada task and lifetime model as a package over the process-memory model.
//
// §5 of the paper maps Ada semantics onto 432 objects: "Processes themselves are each
// created from an SRO and have their lifetimes constrained just as described for all
// objects. This corresponds exactly to the Ada task model. ... A group of tasks communicate
// with each other via ports defined in a scope common to all tasks in the group."
//
// A TaskScope is that common scope: it owns a local SRO at its nesting depth; tasks,
// their communication ports and their data are allocated from it, so leaving the scope
// (destroying it) reclaims the whole task group at bulk-destroy cost, and the hardware level
// rule guarantees nothing created inside escaped. Nested scopes model nested declarative
// regions; the master/dependent relationship of Ada (a scope does not complete until its
// tasks have) is checked by AllTasksCompleted / AwaitCompletion.

#ifndef IMAX432_SRC_OS_ADA_RUNTIME_H_
#define IMAX432_SRC_OS_ADA_RUNTIME_H_

#include <vector>

#include "src/exec/kernel.h"
#include "src/os/process_manager.h"

namespace imax432 {

class TaskScope {
 public:
  // Opens a scope at `level` (use Nested() for inner scopes) backed by `bytes` of storage
  // carved from `parent_sro` (null = global heap).
  static Result<TaskScope> Open(Kernel* kernel, BasicProcessManager* manager, uint32_t bytes,
                                Level level = 1, const AccessDescriptor& parent_sro = {});

  // Opens an inner scope (one level deeper, storage carved from this scope).
  Result<TaskScope> Nested(uint32_t bytes) const;

  // Declares a task of this scope: its process object, stack and data all live in the
  // scope's SRO. Created stopped; Activate() starts every declared task at once (Ada's
  // begin-of-scope activation point).
  Result<AccessDescriptor> DeclareTask(ProgramRef program, ProcessOptions options = {});

  // Declares a port in the scope ("ports defined in a scope common to all tasks").
  Result<AccessDescriptor> DeclarePort(uint16_t message_count,
                                       QueueDiscipline discipline = QueueDiscipline::kFifo);

  // Allocates a scope-lifetime object (an Ada object of a locally declared type).
  Result<AccessDescriptor> DeclareObject(uint32_t data_bytes, uint32_t access_slots,
                                         RightsMask ad_rights);

  // Activates every declared task.
  Status Activate();

  // True when every task of the scope has terminated (normally or by fault).
  Result<bool> AllTasksCompleted() const;

  // Runs the machine until the scope's tasks complete or `deadline` passes; returns whether
  // they completed. (The Ada master's wait at end of scope.)
  bool AwaitCompletion(Cycles deadline);

  // Leaves the scope: the Ada end-of-scope. Every task must have completed (kWrongState
  // otherwise — Ada masters cannot abandon dependents); then the scope's SRO is destroyed,
  // bulk-reclaiming tasks, ports and objects. Returns the number of objects reclaimed.
  Result<uint32_t> Close();

  const AccessDescriptor& sro() const { return sro_; }
  Level level() const { return level_; }
  const std::vector<AccessDescriptor>& tasks() const { return tasks_; }

 private:
  TaskScope(Kernel* kernel, BasicProcessManager* manager, const AccessDescriptor& sro,
            Level level)
      : kernel_(kernel), manager_(manager), sro_(sro), level_(level) {}

  Kernel* kernel_;
  BasicProcessManager* manager_;
  AccessDescriptor sro_;
  Level level_;
  std::vector<AccessDescriptor> tasks_;
  bool closed_ = false;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OS_ADA_RUNTIME_H_

#include "src/os/ada_runtime.h"

namespace imax432 {

Result<TaskScope> TaskScope::Open(Kernel* kernel, BasicProcessManager* manager,
                                  uint32_t bytes, Level level,
                                  const AccessDescriptor& parent_sro) {
  AccessDescriptor parent =
      parent_sro.is_null() ? kernel->memory().global_heap() : parent_sro;
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor sro,
                        kernel->memory().CreateLocalSro(parent, bytes, level));
  return TaskScope(kernel, manager, sro, level);
}

Result<TaskScope> TaskScope::Nested(uint32_t bytes) const {
  IMAX_ASSIGN_OR_RETURN(
      AccessDescriptor sro,
      kernel_->memory().CreateLocalSro(sro_, bytes, static_cast<Level>(level_ + 1)));
  return TaskScope(kernel_, manager_, sro, static_cast<Level>(level_ + 1));
}

Result<AccessDescriptor> TaskScope::DeclareTask(ProgramRef program, ProcessOptions options) {
  if (closed_) {
    return Fault::kWrongState;
  }
  options.allocation_sro = sro_;
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor task,
                        manager_->Create(std::move(program), options));
  tasks_.push_back(task);
  return task;
}

Result<AccessDescriptor> TaskScope::DeclarePort(uint16_t message_count,
                                                QueueDiscipline discipline) {
  if (closed_) {
    return Fault::kWrongState;
  }
  return kernel_->ports().CreatePort(sro_, message_count, discipline);
}

Result<AccessDescriptor> TaskScope::DeclareObject(uint32_t data_bytes, uint32_t access_slots,
                                                  RightsMask ad_rights) {
  if (closed_) {
    return Fault::kWrongState;
  }
  return kernel_->memory().CreateObject(sro_, SystemType::kGeneric, data_bytes, access_slots,
                                        ad_rights);
}

Status TaskScope::Activate() {
  for (const AccessDescriptor& task : tasks_) {
    IMAX_RETURN_IF_FAULT(manager_->Start(task));
  }
  return Status::Ok();
}

Result<bool> TaskScope::AllTasksCompleted() const {
  for (const AccessDescriptor& task : tasks_) {
    if (!kernel_->machine().table().Resolve(task).ok()) {
      continue;  // already reclaimed: certainly finished
    }
    ProcessView view(&kernel_->machine().addressing(), task);
    ProcessState state = view.state();
    if (state != ProcessState::kTerminated && state != ProcessState::kFaulted) {
      return false;
    }
  }
  return true;
}

bool TaskScope::AwaitCompletion(Cycles deadline) {
  while (kernel_->machine().now() < deadline) {
    auto done = AllTasksCompleted();
    if (done.ok() && done.value()) {
      return true;
    }
    if (kernel_->machine().events().idle()) {
      break;  // nothing will ever change again
    }
    kernel_->RunUntil(kernel_->machine().now() + 10000);
  }
  auto done = AllTasksCompleted();
  return done.ok() && done.value();
}

Result<uint32_t> TaskScope::Close() {
  if (closed_) {
    return Fault::kWrongState;
  }
  IMAX_ASSIGN_OR_RETURN(bool completed, AllTasksCompleted());
  if (!completed) {
    // An Ada master may not leave a scope while dependent tasks run.
    return Fault::kWrongState;
  }
  closed_ = true;
  return kernel_->memory().DestroySro(sro_);
}

}  // namespace imax432

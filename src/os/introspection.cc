#include "src/os/introspection.h"

#include <cstdio>

namespace imax432 {

ObjectCensus Introspection::TakeCensus() const {
  const ObjectTable& table = kernel_->machine().table();
  ObjectCensus census;
  census.table_capacity = table.capacity();
  for (ObjectIndex i = 0; i < table.capacity(); ++i) {
    const ObjectDescriptor& descriptor = table.At(i);
    if (!descriptor.allocated) {
      continue;
    }
    ++census.live_objects;
    int type = static_cast<int>(descriptor.type);
    ++census.count_by_type[type];
    census.data_bytes_by_type[type] += descriptor.data_length;
    census.total_data_bytes += descriptor.data_length;
    census.total_access_slots += descriptor.access_count();
    if (descriptor.swapped_out) {
      ++census.swapped_out;
    }
    if (descriptor.type_def != kInvalidObjectIndex) {
      ++census.user_typed;
    }
    if (descriptor.level > census.max_level) {
      census.max_level = descriptor.level;
    }
  }
  return census;
}

SystemReport Introspection::Report() const {
  SystemReport report;
  report.now = kernel_->machine().now();
  report.census = TakeCensus();
  report.bus_utilization = kernel_->machine().bus().Utilization(report.now);
  report.kernel = kernel_->stats();
  report.memory = kernel_->memory().stats();
  report.ports = kernel_->ports().stats();
  if (gc_ != nullptr) {
    report.has_gc = true;
    report.gc = gc_->stats();
  }
  if (scheduler_ != nullptr) {
    report.has_scheduler = true;
    report.scheduler = *scheduler_;
  }

  for (int i = 0; i < kernel_->processor_count(); ++i) {
    ObjectView view(&kernel_->machine().addressing(), kernel_->processor_object(i));
    ProcessorReport processor;
    processor.id = static_cast<uint16_t>(view.Field(ProcessorLayout::kOffId, 2));
    processor.state =
        static_cast<ProcessorState>(view.Field(ProcessorLayout::kOffState, 1));
    processor.busy_cycles = view.Field(ProcessorLayout::kOffBusyCycles, 8);
    processor.idle_cycles = view.Field(ProcessorLayout::kOffIdleCycles, 8);
    processor.dispatches = view.Field(ProcessorLayout::kOffDispatches, 8);
    processor.utilization = report.now > 0 ? static_cast<double>(processor.busy_cycles) /
                                                 static_cast<double>(report.now)
                                           : 0.0;
    report.processors.push_back(processor);
  }
  return report;
}

std::string Introspection::Format(const SystemReport& report) {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line), "system report at %.1f virtual ms\n",
                cycles::ToMicroseconds(report.now) / 1000.0);
  out += line;
  std::snprintf(line, sizeof(line), "  objects: %u live / %u slots, %llu data bytes, %u swapped, %u user-typed\n",
                report.census.live_objects, report.census.table_capacity,
                static_cast<unsigned long long>(report.census.total_data_bytes),
                report.census.swapped_out, report.census.user_typed);
  out += line;
  for (int t = 0; t < kNumSystemTypes; ++t) {
    if (report.census.count_by_type[t] == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "    %-20s %6u objects %10llu bytes\n",
                  SystemTypeName(static_cast<SystemType>(t)), report.census.count_by_type[t],
                  static_cast<unsigned long long>(report.census.data_bytes_by_type[t]));
    out += line;
  }
  for (const ProcessorReport& processor : report.processors) {
    std::snprintf(line, sizeof(line),
                  "  gdp %u: %-8s %5.1f%% busy, %llu dispatches\n", processor.id,
                  processor.state == ProcessorState::kIdle      ? "idle"
                  : processor.state == ProcessorState::kRunning ? "running"
                                                                : "halted",
                  processor.utilization * 100.0,
                  static_cast<unsigned long long>(processor.dispatches));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  bus: %.1f%% utilized; kernel: %llu instructions, %llu dispatches, "
                "%llu faults, %llu panics\n",
                report.bus_utilization * 100.0,
                static_cast<unsigned long long>(report.kernel.instructions_executed),
                static_cast<unsigned long long>(report.kernel.dispatches),
                static_cast<unsigned long long>(report.kernel.faults_delivered),
                static_cast<unsigned long long>(report.kernel.panics));
  out += line;
  std::snprintf(line, sizeof(line),
                "  memory: %llu created, %llu destroyed, %llu bulk-reclaimed, %u resident "
                "bytes, %llu swap-ins\n",
                static_cast<unsigned long long>(report.memory.objects_created),
                static_cast<unsigned long long>(report.memory.objects_destroyed),
                static_cast<unsigned long long>(report.memory.bulk_reclaimed_objects),
                report.memory.resident_bytes,
                static_cast<unsigned long long>(report.memory.swap_ins));
  out += line;
  std::snprintf(line, sizeof(line),
                "  ports: %llu created, %llu messages enqueued, %llu direct handoffs\n",
                static_cast<unsigned long long>(report.ports.ports_created),
                static_cast<unsigned long long>(report.ports.messages_enqueued),
                static_cast<unsigned long long>(report.ports.direct_handoffs));
  out += line;
  if (report.has_gc) {
    std::snprintf(line, sizeof(line),
                  "  gc: %llu cycles, %llu objects scanned, %llu reclaimed (%llu bytes), "
                  "%llu finalized\n",
                  static_cast<unsigned long long>(report.gc.cycles_completed),
                  static_cast<unsigned long long>(report.gc.objects_scanned),
                  static_cast<unsigned long long>(report.gc.objects_reclaimed),
                  static_cast<unsigned long long>(report.gc.bytes_reclaimed),
                  static_cast<unsigned long long>(report.gc.objects_finalized));
    out += line;
  }
  if (report.has_scheduler) {
    std::snprintf(line, sizeof(line), "  scheduler: %llu admitted, %llu adjusted\n",
                  static_cast<unsigned long long>(report.scheduler.admitted),
                  static_cast<unsigned long long>(report.scheduler.adjusted));
    out += line;
  }
  return out;
}

}  // namespace imax432

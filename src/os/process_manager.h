// BasicProcessManager: the iMAX basic process management package (§6.1).
//
// "The basic process manager of iMAX completes the model of processes embedded in the
// hardware ... It does not arbitrate conflicting requests on the processor resource,
// however. It makes directly available to the user the dispatching parameters of the
// hardware and users are free to overcommit or otherwise misuse these parameters."
//
// Responsibilities reproduced here:
//   - process creation with tree linkage (parent / first-child / next-sibling in the
//     process objects themselves — there is deliberately *no central table of processes*;
//     §7.1 explains why such a table would defeat garbage collection);
//   - nested start/stop over whole trees: "Each process has a count of the number of stops
//     or starts outstanding against it which determines if it is currently running. Since
//     starts and stops apply to entire trees, a user wishing to control a computation need
//     not be aware of the internal structure of that process";
//   - scheduler mediation: "Whenever an individual process would enter or leave the
//     dispatching mix as the result of start or stop requests, it will be sent to its
//     process scheduler" — processes with a scheduler port transition through it; processes
//     without one (the *null policy*) go straight to the hardware dispatching mix.

#ifndef IMAX432_SRC_OS_PROCESS_MANAGER_H_
#define IMAX432_SRC_OS_PROCESS_MANAGER_H_

#include "src/exec/kernel.h"

namespace imax432 {

struct ProcessManagerStats {
  uint64_t created = 0;
  uint64_t tree_starts = 0;         // Start() requests (roots)
  uint64_t tree_stops = 0;          // Stop() requests (roots)
  uint64_t transitions = 0;         // individual processes entering/leaving the mix
  uint64_t scheduler_notifications = 0;  // transitions routed via a scheduler port
};

class BasicProcessManager {
 public:
  explicit BasicProcessManager(Kernel* kernel) : kernel_(kernel) {}

  // Creates a process; `options.parent` links it into a tree. The new process is stopped;
  // Start() admits it (and any descendants it creates before then keep their own counts).
  Result<AccessDescriptor> Create(ProgramRef program, const ProcessOptions& options);

  // Applies one start to `process` and its entire subtree. A process whose stop count
  // reaches zero transitions into the dispatching mix — directly, or via its scheduler port
  // when one is set.
  Status Start(const AccessDescriptor& process);

  // Applies one stop to the subtree. Running processes leave the mix at their next
  // instruction boundary; ready ones when next dispatched; blocked ones when they unblock.
  Status Stop(const AccessDescriptor& process);

  // Admits a process the scheduler has decided to run (schedulers call this after receiving
  // the process at their scheduler port).
  Status Admit(const AccessDescriptor& process) { return kernel_->MakeReady(process); }

  // True when the process's stop count is zero (it is in, or eligible for, the mix).
  Result<bool> IsRunnable(const AccessDescriptor& process) const;

  // Walks the subtree rooted at `process`, invoking `fn` for each node (preorder). Exposed
  // because "this structure may be examined by the scheduler if desired".
  Status VisitTree(const AccessDescriptor& process,
                   const std::function<void(const AccessDescriptor&)>& fn) const;

  // Counts the processes in a subtree.
  Result<uint32_t> TreeSize(const AccessDescriptor& process) const;

  const ProcessManagerStats& stats() const { return stats_; }

 private:
  // One start/stop step applied to a single process; routes dispatching-mix transitions.
  Status StartOne(const AccessDescriptor& process);
  Status StopOne(const AccessDescriptor& process);

  Kernel* kernel_;
  ProcessManagerStats stats_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OS_PROCESS_MANAGER_H_

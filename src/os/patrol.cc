#include "src/os/patrol.h"

#include <vector>

#include "src/arch/cycle_model.h"
#include "src/base/check.h"
#include "src/base/log.h"

namespace imax432 {

uint32_t ObjectPatrol::DataCrc(const ObjectDescriptor& descriptor) const {
  // FNV-1a over the data part. The patrol reads physical memory directly: it is a kernel
  // maintenance agent, and going through the AddressingUnit would bump no state anyway
  // (reads do not advance the epoch) but would fault on rights the patrol does not hold.
  std::vector<uint8_t> data(descriptor.data_length);
  IMAX_CHECK(kernel_->machine()
                 .memory()
                 .ReadBlock(descriptor.data_base, data.data(), descriptor.data_length)
                 .ok());
  uint32_t hash = 2166136261u;
  for (uint8_t byte : data) {
    hash ^= byte;
    hash *= 16777619u;
  }
  return hash;
}

void ObjectPatrol::Quarantine(ObjectIndex index, CheckKind kind) {
  ObjectDescriptor& descriptor = kernel_->machine().table().At(index);
  descriptor.quarantined = true;
  shadow_.erase(index);
  ++stats_.objects_quarantined;
  kernel_->machine().trace().Emit(TraceEventKind::kObjectQuarantined,
                                  kernel_->machine().now(), kTraceNoProcessor,
                                  kTraceNoProcess, index, static_cast<uint32_t>(kind));
  IMAX_LOG_INFO("patrol quarantined object %u (check %u)", index,
                static_cast<unsigned>(kind));
}

void ObjectPatrol::CheckOne(ObjectIndex index) {
  ObjectTable& table = kernel_->machine().table();
  ObjectDescriptor& descriptor = table.At(index);
  ++work_units_;
  if (!descriptor.allocated) {
    shadow_.erase(index);
    return;
  }
  ++stats_.descriptors_scanned;
  if (descriptor.quarantined) {
    return;  // already frozen; nothing further to learn
  }

  // Check 1: the identity checksum sealed at allocation.
  if (ObjectTable::DescriptorChecksum(descriptor) != descriptor.checksum) {
    ++stats_.checksum_failures;
    if (descriptor.type == SystemType::kGeneric) {
      Quarantine(index, CheckKind::kDescriptorChecksum);
    }
    return;
  }

  // Checks 2 and 3 apply to plain objects only: system objects take privileged stores that
  // legitimately cross levels (a process referencing its deeper-level context), and their
  // data parts are kernel-written without epoch accounting.
  if (descriptor.type != SystemType::kGeneric) {
    return;
  }

  // Check 2: the level storing rule over every resolvable AD in the access part. Stale ADs
  // (dead generation) are legitimate — the generation check neutralizes them — but a live
  // reference that violates the rule can only mean descriptor damage.
  for (const AccessDescriptor& ad : descriptor.access) {
    auto referenced = table.Resolve(ad);
    if (referenced.ok() && !ObjectTable::StorePermitted(descriptor, *referenced.value())) {
      ++stats_.invariant_failures;
      Quarantine(index, CheckKind::kLevelInvariant);
      return;
    }
  }

  // Check 3: shadow CRC of the data part. Skipped while swapped out (contents are on the
  // backing store; the baseline stays valid because the epoch cannot advance either).
  if (descriptor.data_length == 0 || descriptor.swapped_out) {
    return;
  }
  work_units_ += descriptor.data_length / 64;
  uint32_t crc = DataCrc(descriptor);
  auto it = shadow_.find(index);
  if (it == shadow_.end() || it->second.generation != descriptor.generation ||
      it->second.epoch != descriptor.data_epoch) {
    // New object, reused slot, or legitimately written since the last look: re-baseline.
    shadow_[index] = Shadow{descriptor.generation, descriptor.data_epoch, crc};
    ++stats_.shadow_refreshes;
    return;
  }
  if (it->second.crc != crc) {
    // Same generation, same epoch, different contents: a write-free mutation — bit rot.
    ++stats_.data_crc_failures;
    Quarantine(index, CheckKind::kDataCrc);
  }
}

void ObjectPatrol::BeginSweep() {
  sweeping_ = true;
  cursor_ = 0;
}

bool ObjectPatrol::Step(uint32_t units) {
  if (!sweeping_) {
    return false;
  }
  uint32_t capacity = kernel_->machine().table().capacity();
  while (units > 0 && cursor_ < capacity) {
    CheckOne(cursor_);
    ++cursor_;
    --units;
  }
  if (cursor_ >= capacity) {
    sweeping_ = false;
    ++stats_.sweeps_completed;
    kernel_->machine().trace().Emit(
        TraceEventKind::kPatrolSweep, kernel_->machine().now(), kTraceNoProcessor,
        kTraceNoProcess, capacity, static_cast<uint32_t>(stats_.objects_quarantined));
    return false;
  }
  return true;
}

PatrolStats ObjectPatrol::SweepNow() {
  BeginSweep();
  while (Step(kernel_->machine().table().capacity())) {
  }
  return stats_;
}

Result<AccessDescriptor> ObjectPatrol::SpawnDaemon(uint32_t units_per_step, uint8_t priority) {
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor request_port,
                        kernel_->ports().CreatePort(kernel_->memory().global_heap(), 16,
                                                    QueueDiscipline::kFifo));
  // Root the doorbell, same as the GC daemon: it is referenced only from native code.
  kernel_->AddRootProvider(
      [request_port](std::vector<AccessDescriptor>* roots) { roots->push_back(request_port); });

  Assembler a("patrol-daemon");
  auto loop = a.NewLabel();
  a.Bind(loop);
  a.Native([request_port](ExecutionContext&) -> Result<NativeResult> {
    NativeResult r;
    r.action = NativeResult::Action::kBlockReceive;
    r.port = request_port;
    r.dest_adreg = 3;
    r.compute = cycles::kReceive;
    return r;
  });
  a.Native([this](ExecutionContext&) -> Result<NativeResult> {
    BeginSweep();
    return NativeResult{};
  });
  // One bounded batch of descriptor checks per native instruction; time-slice end
  // interleaves the patrol with mutators exactly like the GC daemon.
  uint32_t step_pc = a.here();
  a.Native([this, units_per_step, step_pc](ExecutionContext&) -> Result<NativeResult> {
    uint64_t units_before = work_units_;
    bool more = Step(units_per_step);
    uint64_t scanned = work_units_ - units_before;
    NativeResult r;
    r.compute = scanned * cycles::kGcScanSlot / 2;
    r.bus = scanned * cycles::kBusPerWord / 8;
    if (more) {
      r.action = NativeResult::Action::kJump;
      r.jump_target = step_pc;
    }
    return r;
  });
  a.Native([this](ExecutionContext& env) -> Result<NativeResult> {
    AccessDescriptor reply = env.ad_reg(3);
    auto descriptor = kernel_->machine().table().Resolve(reply);
    if (descriptor.ok() && descriptor.value()->type == SystemType::kPort) {
      (void)kernel_->PostMessage(reply, env.process_ad());
    }
    env.set_ad_reg(3, AccessDescriptor());
    NativeResult r;
    r.compute = cycles::kSend;
    return r;
  });
  a.Branch(loop);

  ProcessOptions options;
  options.priority = priority;
  options.imax_level = kImaxLevelServices;
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor daemon, kernel_->CreateProcess(a.Build(), options));
  // Patrol sweeps are recovery machinery: attribute their interpreter cycles accordingly.
  kernel_->machine().profiler().TagProcess(daemon.index(), CycleBucket::kFaultRecovery);
  IMAX_RETURN_IF_FAULT(kernel_->StartProcess(daemon));
  return request_port;
}

}  // namespace imax432

#include "src/os/system.h"

#include "src/base/check.h"
#include "src/base/log.h"

namespace imax432 {

System::System(const SystemConfig& config)
    : machine_config_(config.machine), machine_(machine_config_) {
  // Arm tracing before the storage system boots so even the boot allocations are on the
  // timeline.
  if (config.trace) {
    machine_.trace().Enable(config.trace_capacity);
    SetTraceLogSink(&System::TraceLogThunk, this);
  }
  // Arm the observers before anything executes so the boot daemons are attributed too.
  if (config.profile) {
    machine_.profiler().Enable(config.profile_sample_period);
  }
  if (config.span_trace) {
    machine_.spans().Enable(config.span_capacity);
  }
  // §6.2: one memory specification, two implementations; the system is configured by
  // selecting one, and nothing downstream changes.
  switch (config.memory_manager) {
    case MemoryManagerKind::kNonSwapping:
      memory_ = std::make_unique<BasicMemoryManager>(&machine_);
      break;
    case MemoryManagerKind::kSwapping:
      memory_ = std::make_unique<SwappingMemoryManager>(&machine_);
      break;
  }

  kernel_ = std::make_unique<Kernel>(&machine_, memory_.get());
  kernel_->set_verify_on_load(config.verify_on_load);
  if (config.race_sanitize) {
    kernel_->EnableRaceSanitizer();
  }
  kernel_->set_lifetime_demote(config.lifetime_demote);
  kernel_->set_demote_sro_bytes(config.demote_sro_bytes);
  if (config.lifetime_audit) {
    kernel_->EnableLifetimeAuditor();
  }
  // Auditor before cache: EnableXlatCache installs the certified-hit hook only on caches
  // that already know about the auditor, so order here keeps both orders equivalent.
  if (config.interference_audit) {
    kernel_->EnableInterferenceAuditor();
  }
  if (config.xlat_cache) {
    kernel_->EnableXlatCache();
  }
  // Same auditor-before-cache discipline for the decode tier: Execute consults the guard
  // auditor only when armed, so arming it before the cache keeps both orders equivalent.
  if (config.guard_audit) {
    kernel_->EnableGuardAuditor();
  }
  if (config.decode_cache) {
    kernel_->EnableDecodeCache();
  }
  gc_ = std::make_unique<GarbageCollector>(kernel_.get());
  patrol_ = std::make_unique<ObjectPatrol>(kernel_.get());
  types_ = std::make_unique<TypeManagerFacility>(kernel_.get());
  filing_ = std::make_unique<ObjectStore>(kernel_.get(), types_.get());
  if (config.stable_store != nullptr) {
    // Journal before anything else runs: boot-time recovery replays the previous
    // incarnation's log into the fresh store. Recovery is best-effort by design — a torn
    // or corrupt journal rolls back, an unreadable device yields an empty store, and in
    // no case does a damaged log panic the boot.
    journal_ = std::make_unique<Journal>(config.stable_store, &machine_);
    filing_->AttachJournal(journal_.get(), config.filing_checkpoint_interval);
    filing_recovery_status_ = filing_->Recover();
    if (!filing_recovery_status_.ok()) {
      IMAX_LOG_WARNING("filing: journal recovery failed (%s); starting with an empty store",
                       FaultName(filing_recovery_status_.fault()));
    }
  }
  process_manager_ = std::make_unique<BasicProcessManager>(kernel_.get());
  ports_api_ = std::make_unique<UntypedPorts>(kernel_.get());

  // Subsystem shadow state dies with the objects it shadows.
  gc_->AddReclaimObserver([this](ObjectIndex index, const ObjectDescriptor& descriptor) {
    if (descriptor.type == SystemType::kPort) {
      kernel_->ports().Forget(index);
    } else if (descriptor.type == SystemType::kInstructionSegment) {
      kernel_->programs().Forget(index);
      // Keep the whole-system IPC analysis in step: a reclaimed segment's summary must not
      // keep feeding the wait-for graph.
      kernel_->ForgetProgramAnalysis(index);
    }
    if (kernel_->race_sanitizer() != nullptr) {
      // A reclaimed index may be reused; stale epochs would fabricate races against the
      // next object that lands there.
      kernel_->race_sanitizer()->OnObjectDestroyed(index);
    }
    if (kernel_->lifetime_auditor() != nullptr) {
      // Same reuse hazard: a tracked demoted object reclaimed through any other path must
      // not leave a stale audit entry behind.
      kernel_->lifetime_auditor()->OnObjectDestroyed(index);
    }
    // Drop the patrol's CRC baseline: the index may be reused (the generation key would
    // catch it anyway, but the entry is dead weight).
    patrol_->Forget(index);
  });

  IMAX_CHECK(kernel_->AddProcessors(config.processors).ok());

  if (config.recover_lost_processes) {
    auto port = kernel_->ports().CreatePort(memory_->global_heap(), 64,
                                            QueueDiscipline::kFifo);
    IMAX_CHECK(port.ok());
    lost_process_port_ = port.value();
    gc_->SetSystemTypeFilter(SystemType::kProcess, lost_process_port_);
    kernel_->AddRootProvider([port = lost_process_port_](
                                 std::vector<AccessDescriptor>* roots) {
      roots->push_back(port);
    });
  }

  if (config.start_gc_daemon) {
    auto request_port = gc_->SpawnDaemon(config.gc_units_per_step);
    IMAX_CHECK(request_port.ok());
    gc_request_port_ = request_port.value();
  }

  if (config.start_patrol_daemon) {
    auto request_port = patrol_->SpawnDaemon(config.patrol_units_per_step);
    IMAX_CHECK(request_port.ok());
    patrol_request_port_ = request_port.value();
  }
}

System::~System() {
  if (machine_.trace().enabled()) {
    SetTraceLogSink(nullptr, nullptr);
  }
}

void System::TraceLogThunk(void* user, const char* message) {
  System* system = static_cast<System*>(user);
  system->machine_.trace().Annotate(system->machine_.now(), message);
}

Result<AccessDescriptor> System::Spawn(ProgramRef program, const ProcessOptions& options) {
  IMAX_ASSIGN_OR_RETURN(AccessDescriptor process,
                        process_manager_->Create(std::move(program), options));
  IMAX_RETURN_IF_FAULT(process_manager_->Start(process));
  return process;
}

Status System::RequestCollection() {
  if (gc_request_port_.is_null()) {
    return Fault::kWrongState;
  }
  // Any message works as a request; the collector replies only if it is a port. Reuse the
  // global heap AD as a cheap, always-live token.
  return kernel_->PostMessage(gc_request_port_, memory_->global_heap());
}

Status System::RequestPatrolSweep() {
  if (patrol_request_port_.is_null()) {
    return Fault::kWrongState;
  }
  return kernel_->PostMessage(patrol_request_port_, memory_->global_heap());
}

}  // namespace imax432

// The iMAX port packages: Untyped_Ports and the generic Typed_Ports (paper figures 1 & 2).
//
// "The applications interface to iMAX is a set of Ada package specifications ... the iMAX
// user sees no difference whatsoever between calling an operating system subprogram and
// calling some user-defined subprogram."
//
// UntypedPorts corresponds to `package Untyped_Ports`: Create is software-implemented (only
// this package can construct port objects); Send and Receive "will correspond to single
// instructions" — here, the kSend/kReceive opcodes, emitted inline by EmitSend/EmitReceive
// exactly as the Ada `pragma inline` expanded them.
//
// TypedPorts<UserMessage> corresponds to `generic package Typed_Ports`: a compile-time-typed
// veneer whose generated code is *identical* to the untyped package ("the user of typed
// ports suffers no penalty relative to even a hypothetical assembly language programmer").
// C++ templates play the role of Ada generics; the phantom message type is checked entirely
// at compile time and erased thereafter — EmitSend/EmitReceive forward to the untyped
// emitters, so the instruction streams are bit-identical (asserted by tests and measured by
// bench E4).
//
// CheckedPorts<UserMessage> is the further step the paper sketches: "It is possible to take
// the idea of typed ports one step further in the 432 to provide the type checking
// dynamically at runtime. The implementation would require a few more generated
// instructions making use of user-defined types." Its receive emits one extra native type
// check against the message type's TDO.

#ifndef IMAX432_SRC_OS_PORTS_API_H_
#define IMAX432_SRC_OS_PORTS_API_H_

#include "src/exec/kernel.h"
#include "src/os/type_manager.h"

namespace imax432 {

// An untyped port handle: the Ada `type port is access ...` value.
struct Port {
  AnyAccess ad;
};

class UntypedPorts {
 public:
  static constexpr uint16_t kMaxMessageCount = PortSubsystem::kMaxMessageCount;

  explicit UntypedPorts(Kernel* kernel) : kernel_(kernel) {}

  // function Create_port(message_count; port_discipline := FIFO) return port;
  // Software-implemented: constructs the port object. The returned AD carries send+receive
  // rights; hand out restricted copies to confine a party to one direction.
  Result<Port> Create(uint16_t message_count,
                      QueueDiscipline discipline = QueueDiscipline::kFifo) {
    IMAX_ASSIGN_OR_RETURN(AccessDescriptor ad,
                          kernel_->ports().CreatePort(kernel_->memory().global_heap(),
                                                      message_count, discipline));
    return Port{ad};
  }

  // Create from a specific SRO (local-lifetime ports for task groups).
  Result<Port> CreateFrom(const AccessDescriptor& sro, uint16_t message_count,
                          QueueDiscipline discipline = QueueDiscipline::kFifo) {
    IMAX_ASSIGN_OR_RETURN(AccessDescriptor ad,
                          kernel_->ports().CreatePort(sro, message_count, discipline));
    return Port{ad};
  }

  // procedure Send(prt, msg) / procedure Receive(prt, msg: out) — the inline expansions.
  // These emit the single hardware instruction into a program under construction.
  static Assembler& EmitSend(Assembler& a, uint8_t port_adreg, uint8_t msg_adreg) {
    return a.Send(port_adreg, msg_adreg);
  }
  static Assembler& EmitReceive(Assembler& a, uint8_t dst_adreg, uint8_t port_adreg) {
    return a.Receive(dst_adreg, port_adreg);
  }

  // Host-side conveniences for boot code and tests (outside virtual time).
  Status Send(const Port& port, const AnyAccess& message) {
    return kernel_->PostMessage(port.ad, message);
  }
  Result<AnyAccess> Receive(const Port& port) { return kernel_->ports().Dequeue(port.ad); }

 private:
  Kernel* kernel_;
};

// The generic package: one instance per user message type. `UserMessage` is any C++ tag
// type; message values are ADs branded with the tag.
template <typename UserMessage>
class TypedPorts {
 public:
  struct UserPort {
    AnyAccess ad;  // "type user_port is new port" — same representation, new name
  };
  struct Message {
    AnyAccess ad;
  };

  explicit TypedPorts(Kernel* kernel) : untyped_(kernel) {}

  Result<UserPort> Create(uint16_t message_count,
                          QueueDiscipline discipline = QueueDiscipline::kFifo) {
    IMAX_ASSIGN_OR_RETURN(Port port, untyped_.Create(message_count, discipline));
    return UserPort{port.ad};
  }

  // The emitted code is identical to Untyped_Ports' — the zero-penalty claim. The
  // unchecked_conversion of the Ada body is the brand-erasing forward below.
  static Assembler& EmitSend(Assembler& a, uint8_t port_adreg, uint8_t msg_adreg) {
    return UntypedPorts::EmitSend(a, port_adreg, msg_adreg);
  }
  static Assembler& EmitReceive(Assembler& a, uint8_t dst_adreg, uint8_t port_adreg) {
    return UntypedPorts::EmitReceive(a, dst_adreg, port_adreg);
  }

  // Host-side typed conveniences: only Message values of this instance's type compile.
  Status Send(const UserPort& port, const Message& message) {
    return untyped_.Send(Port{port.ad}, message.ad);
  }
  Result<Message> Receive(const UserPort& port) {
    IMAX_ASSIGN_OR_RETURN(AnyAccess ad, untyped_.Receive(Port{port.ad}));
    return Message{ad};
  }

 private:
  UntypedPorts untyped_;
};

// Runtime-checked ports: the dynamic type check the paper sketches, using the user type
// definition facility. Receive verifies the message against the instance's TDO; a mismatch
// faults the receiver with kTypeMismatch.
template <typename UserMessage>
class CheckedPorts {
 public:
  struct UserPort {
    AnyAccess ad;
  };

  CheckedPorts(Kernel* kernel, TypeManagerFacility* types, const AccessDescriptor& tdo)
      : kernel_(kernel), types_(types), tdo_(tdo), untyped_(kernel) {}

  Result<UserPort> Create(uint16_t message_count,
                          QueueDiscipline discipline = QueueDiscipline::kFifo) {
    IMAX_ASSIGN_OR_RETURN(Port port, untyped_.Create(message_count, discipline));
    return UserPort{port.ad};
  }

  // Send is unchanged; receive appends the runtime type check ("a few more generated
  // instructions making use of user-defined types").
  Assembler& EmitSend(Assembler& a, uint8_t port_adreg, uint8_t msg_adreg) {
    return UntypedPorts::EmitSend(a, port_adreg, msg_adreg);
  }
  Assembler& EmitReceive(Assembler& a, uint8_t dst_adreg, uint8_t port_adreg) {
    UntypedPorts::EmitReceive(a, dst_adreg, port_adreg);
    a.Native([types = types_, tdo = tdo_, dst_adreg](ExecutionContext& env)
                 -> Result<NativeResult> {
      IMAX_RETURN_IF_FAULT(types->CheckType(env.ad_reg(dst_adreg), tdo));
      NativeResult r;
      r.compute = cycles::kSimpleOp * 4;  // the extra generated instructions
      return r;
    });
    return a;
  }

  const AccessDescriptor& tdo() const { return tdo_; }

 private:
  Kernel* kernel_;
  TypeManagerFacility* types_;
  AccessDescriptor tdo_;
  UntypedPorts untyped_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_OS_PORTS_API_H_

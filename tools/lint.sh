#!/usr/bin/env sh
# Lints the tree: clang-tidy over the compilation database (when available) plus the
# repo's own static capability verifier (imax_lint) over the example/daemon programs.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir  CMake build tree holding compile_commands.json (default: build)
#
# Degrades gracefully: a missing clang-tidy or compile_commands.json is reported and
# skipped, not fatal — imax_lint still runs. Exit status is non-zero only when a lint
# step that could run found problems.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"${repo_root}/build"}
status=0

# --- clang-tidy over src/ and tools/ -------------------------------------------------
tidy_bin=$(command -v clang-tidy || true)
if [ -z "${tidy_bin}" ]; then
  echo "lint.sh: clang-tidy not found on PATH — skipping C++ static analysis"
elif [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint.sh: ${build_dir}/compile_commands.json missing — configure with cmake first"
else
  echo "lint.sh: running clang-tidy (config: .clang-tidy)"
  find "${repo_root}/src" "${repo_root}/tools" -name '*.cc' -print | while read -r file; do
    "${tidy_bin}" -p "${build_dir}" --quiet "${file}" || echo "TIDY-FAIL ${file}"
  done > "${build_dir}/clang-tidy.log" 2>&1
  if grep -q 'TIDY-FAIL\|warning:\|error:' "${build_dir}/clang-tidy.log"; then
    echo "lint.sh: clang-tidy reported findings — see ${build_dir}/clang-tidy.log"
    status=1
  else
    echo "lint.sh: clang-tidy clean"
  fi
fi

# --- imax_lint: static capability verification of ISA programs -----------------------
if [ -x "${build_dir}/tools/imax_lint" ]; then
  echo "lint.sh: running imax_lint --all"
  if ! "${build_dir}/tools/imax_lint" --all; then
    echo "lint.sh: imax_lint failed"
    status=1
  fi
else
  echo "lint.sh: ${build_dir}/tools/imax_lint not built — run: cmake --build ${build_dir}"
fi

exit "${status}"

// imax_trace: run a canned workload with kernel event tracing enabled and export the
// timeline as Chrome trace-event JSON (open in ui.perfetto.dev or chrome://tracing) plus an
// optional metrics snapshot.
//
// Usage:
//   imax_trace [--workload quickstart|pipeline|churn] [--processors N] [--cycles N]
//              [--trace-capacity N] [--out trace.json] [--metrics metrics.json] [--overhead]
//
// --overhead runs the selected workload twice — tracing enabled and disabled — and reports
// the host wall-clock cost of instrumentation. The two runs must reach the same virtual
// time; tracing is an observer, never a participant.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/perfetto.h"
#include "src/os/system.h"

using namespace imax432;

namespace {

struct Options {
  std::string workload = "quickstart";
  std::string out = "trace.json";
  std::string metrics;
  int processors = 2;
  Cycles cycles = 0;  // 0 = run to quiescence
  uint32_t trace_capacity = TraceRecorder::kDefaultCapacity;
  bool overhead = false;
  bool race_sanitize = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: imax_trace [--workload quickstart|pipeline|churn] [--processors N]\n"
               "                  [--cycles N] [--trace-capacity N] [--out FILE]\n"
               "                  [--metrics FILE] [--overhead] [--race-sanitize]\n");
}

// quickstart: the README workload — a producer/consumer pair over a bounded port, a domain
// the producer calls on every item, and a GC cycle at the end. Exercises dispatch, port,
// domain-call, allocation, and GC-phase events.
std::unique_ptr<System> RunQuickstart(SystemConfig config) {
  auto system = std::make_unique<System>(config);
  auto& kernel = system->kernel();
  auto& memory = system->memory();

  auto port = kernel.ports().CreatePort(memory.global_heap(), 4, QueueDiscipline::kFifo);
  IMAX_CHECK(port.ok());
  kernel.symbols().Name(port.value().index(), "work port");

  // A one-entry domain the producer calls per item; every call is a protection-domain
  // switch and shows up as a ~65 us slice.
  Assembler leaf("stamp");
  leaf.Compute(64).ClearAd(7).Return();
  auto segment = kernel.programs().Register(leaf.Build());
  IMAX_CHECK(segment.ok());
  auto domain = kernel.CreateDomain({segment.value()});
  IMAX_CHECK(domain.ok());
  kernel.symbols().Name(domain.value().index(), "stamp domain");

  auto carrier = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 16, 3,
                                     rights::kRead | rights::kWrite);
  IMAX_CHECK(carrier.ok());
  (void)system->machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system->machine().addressing().WriteAd(carrier.value(), 1, memory.global_heap());
  (void)system->machine().addressing().WriteAd(carrier.value(), 2, domain.value());

  constexpr uint64_t kItems = 12;

  Assembler producer("producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)  // a2 = port
      .LoadAd(3, 1, 1)  // a3 = heap
      .LoadAd(5, 1, 2)  // a5 = domain
      .LoadImm(0, 0)
      .LoadImm(1, kItems)
      .Bind(send_loop)
      .CreateObject(4, 3, 32)
      .StoreData(4, 0, 0, 8)
      .Call(5, 0)  // inter-domain call before every send
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, send_loop)
      .Halt();

  Assembler consumer("consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, kItems)
      .LoadImm(2, 0)
      .Bind(recv_loop)
      .Receive(4, 2)
      .LoadData(3, 4, 0, 8)
      .Add(2, 2, 3)
      .Compute(512)  // slow consumer: the bounded port backpressures the producer
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .StoreData(1, 2, 0, 8)
      .Halt();

  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto consumer_process = system->Spawn(consumer.Build(), options);
  auto producer_process = system->Spawn(producer.Build(), options);
  IMAX_CHECK(consumer_process.ok() && producer_process.ok());
  kernel.symbols().Name(consumer_process.value().index(), "consumer");
  kernel.symbols().Name(producer_process.value().index(), "producer");

  system->Run();
  (void)system->RequestCollection();
  system->Run();
  return system;
}

// pipeline: a four-stage dataflow across however many GDPs are configured; heavy port
// traffic with backpressure, good for watching processes migrate between processors.
std::unique_ptr<System> RunPipeline(SystemConfig config) {
  constexpr int kStages = 4;
  constexpr uint64_t kItems = 16;
  auto system = std::make_unique<System>(config);
  auto& kernel = system->kernel();
  auto& memory = system->memory();

  std::vector<AccessDescriptor> ports;
  for (int i = 0; i <= kStages; ++i) {
    uint16_t capacity = (i == kStages) ? static_cast<uint16_t>(kItems) : 2;
    auto port =
        kernel.ports().CreatePort(memory.global_heap(), capacity, QueueDiscipline::kFifo);
    IMAX_CHECK(port.ok());
    kernel.symbols().Name(port.value().index(), "stage port " + std::to_string(i));
    ports.push_back(port.value());
  }
  kernel.AddRootProvider([ports](std::vector<AccessDescriptor>* roots) {
    for (const AccessDescriptor& port : ports) {
      roots->push_back(port);
    }
  });

  auto carrier = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 8,
                                     kStages + 2, rights::kRead | rights::kWrite);
  IMAX_CHECK(carrier.ok());
  for (int i = 0; i <= kStages; ++i) {
    (void)system->machine().addressing().WriteAd(carrier.value(), static_cast<uint32_t>(i),
                                                 ports[static_cast<size_t>(i)]);
  }
  (void)system->machine().addressing().WriteAd(carrier.value(), kStages + 1,
                                               memory.global_heap());

  Assembler source("source");
  auto source_loop = source.NewLabel();
  source.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, kStages + 1)
      .LoadImm(0, 0)
      .LoadImm(1, kItems)
      .Bind(source_loop)
      .CreateObject(4, 3, 64)
      .StoreData(4, 0, 0, 8)
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, source_loop)
      .Halt();

  ProcessOptions options;
  options.initial_arg = carrier.value();
  for (int stage = 0; stage < kStages; ++stage) {
    Assembler a("stage");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, static_cast<uint32_t>(stage))
        .LoadAd(3, 1, static_cast<uint32_t>(stage + 1))
        .LoadImm(0, 0)
        .LoadImm(1, kItems)
        .Bind(loop)
        .Receive(4, 2)
        .Compute(4000)
        .Send(3, 4)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    auto process = system->Spawn(a.Build(), options);
    IMAX_CHECK(process.ok());
    kernel.symbols().Name(process.value().index(), "stage " + std::to_string(stage));
  }
  auto source_process = system->Spawn(source.Build(), options);
  IMAX_CHECK(source_process.ok());
  kernel.symbols().Name(source_process.value().index(), "source");

  system->Run();
  return system;
}

// churn: an allocation-heavy loop that turns most of its objects into garbage, then a GC
// cycle to reclaim them — a memory-manager and collector stress view.
std::unique_ptr<System> RunChurn(SystemConfig config) {
  auto system = std::make_unique<System>(config);
  auto& memory = system->memory();

  auto carrier = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 16, 1,
                                     rights::kRead | rights::kWrite);
  IMAX_CHECK(carrier.ok());
  (void)system->machine().addressing().WriteAd(carrier.value(), 0, memory.global_heap());

  Assembler churn("churn");
  auto loop = churn.NewLabel();
  churn.MoveAd(1, kArgAdReg)
      .LoadAd(3, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 200)
      .Bind(loop)
      .CreateObject(4, 3, 128)  // each iteration orphans the previous object
      .StoreData(4, 0, 0, 8)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .Halt();

  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto process = system->Spawn(churn.Build(), options);
  IMAX_CHECK(process.ok());
  system->kernel().symbols().Name(process.value().index(), "churn");

  system->Run();
  (void)system->RequestCollection();
  system->Run();
  return system;
}

std::unique_ptr<System> RunWorkload(const Options& options, bool trace) {
  SystemConfig config;
  config.processors = options.processors;
  config.machine.memory_bytes = 8 * 1024 * 1024;
  config.trace = trace;
  config.trace_capacity = options.trace_capacity;
  config.race_sanitize = options.race_sanitize;
  std::unique_ptr<System> system;
  if (options.workload == "quickstart") {
    system = RunQuickstart(config);
  } else if (options.workload == "pipeline") {
    system = RunPipeline(config);
  } else if (options.workload == "churn") {
    system = RunChurn(config);
  } else {
    std::fprintf(stderr, "imax_trace: unknown workload '%s'\n", options.workload.c_str());
    return nullptr;
  }
  if (options.cycles != 0 && system->now() > options.cycles) {
    std::fprintf(stderr, "note: workload ran to %llu cycles, past --cycles %llu\n",
                 static_cast<unsigned long long>(system->now()),
                 static_cast<unsigned long long>(options.cycles));
  }
  return system;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  if (path == "-") {
    std::fwrite(contents.data(), 1, contents.size(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "imax_trace: cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(contents.data(), 1, contents.size(), file);
  std::fclose(file);
  return true;
}

int RunOverhead(const Options& options) {
  using Clock = std::chrono::steady_clock;
  // Warm-up run so first-touch costs (page faults, allocator growth) hit neither side.
  RunWorkload(options, /*trace=*/false);

  // Host timing on a millisecond workload is noisy; alternate the two configurations and
  // compare best-of-N, which discards scheduler interference instead of averaging it in.
  constexpr int kRepeats = 7;
  double off_us = 1e300;
  double on_us = 1e300;
  std::unique_ptr<System> untraced;
  std::unique_ptr<System> traced;
  for (int i = 0; i < kRepeats; ++i) {
    auto t0 = Clock::now();
    untraced = RunWorkload(options, /*trace=*/false);
    auto t1 = Clock::now();
    traced = RunWorkload(options, /*trace=*/true);
    auto t2 = Clock::now();
    if (untraced == nullptr || traced == nullptr) {
      return 1;
    }
    off_us = std::min(off_us, std::chrono::duration<double, std::micro>(t1 - t0).count());
    on_us = std::min(on_us, std::chrono::duration<double, std::micro>(t2 - t1).count());
  }

  std::printf("workload %s: trace off %.0f us, trace on %.0f us, overhead %+.1f%% "
              "(best of %d)\n",
              options.workload.c_str(), off_us, on_us, (on_us / off_us - 1.0) * 100.0,
              kRepeats);
  std::printf("events recorded: %llu (dropped %llu)\n",
              static_cast<unsigned long long>(traced->machine().trace().total_emitted()),
              static_cast<unsigned long long>(traced->machine().trace().dropped()));
  if (traced->now() != untraced->now()) {
    std::printf("FAIL: tracing changed virtual time (%llu vs %llu cycles)\n",
                static_cast<unsigned long long>(traced->now()),
                static_cast<unsigned long long>(untraced->now()));
    return 1;
  }
  std::printf("virtual time identical with tracing on/off: %llu cycles\n",
              static_cast<unsigned long long>(traced->now()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      options.workload = value();
    } else if (arg == "--out") {
      options.out = value();
    } else if (arg == "--metrics") {
      options.metrics = value();
    } else if (arg == "--processors") {
      options.processors = std::atoi(value());
    } else if (arg == "--cycles") {
      options.cycles = static_cast<Cycles>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--trace-capacity") {
      options.trace_capacity = static_cast<uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--overhead") {
      options.overhead = true;
    } else if (arg == "--race-sanitize") {
      options.race_sanitize = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "imax_trace: unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (options.overhead) {
    return RunOverhead(options);
  }

  auto system = RunWorkload(options, /*trace=*/true);
  if (system == nullptr) {
    return 1;
  }

  const TraceRecorder& trace = system->machine().trace();
  std::string json = ExportChromeTrace(trace, &system->kernel().symbols());
  if (!WriteFile(options.out, json)) {
    return 1;
  }
  std::fprintf(stderr, "%s: %zu events (%llu dropped), %.1f virtual ms -> %s\n",
               options.workload.c_str(), trace.size(),
               static_cast<unsigned long long>(trace.dropped()),
               cycles::ToMicroseconds(system->now()) / 1000.0, options.out.c_str());

  if (!options.metrics.empty()) {
    MetricsRegistry registry(system.get());
    if (!WriteFile(options.metrics, registry.Collect().ToJson())) {
      return 1;
    }
    std::fprintf(stderr, "metrics -> %s\n", options.metrics.c_str());
  }

  if (options.race_sanitize) {
    const analysis::RaceSanitizer* sanitizer = system->kernel().race_sanitizer();
    const analysis::RaceSanitizerStats& stats = sanitizer->stats();
    std::fprintf(stderr,
                 "race sanitizer: %llu accesses checked, %llu messages stamped, "
                 "%llu joins, %llu race(s)\n",
                 static_cast<unsigned long long>(stats.accesses_checked),
                 static_cast<unsigned long long>(stats.messages_stamped),
                 static_cast<unsigned long long>(stats.joins),
                 static_cast<unsigned long long>(stats.races_detected));
    // The canned workloads are race-free by construction; a finding is a real defect (or a
    // sanitizer bug) and must fail the run so CI catches it.
    if (!sanitizer->races().empty()) {
      for (const analysis::RaceRecord& race : sanitizer->races()) {
        std::fprintf(stderr,
                     "  race: object %llu process %llu pc %u vs process %llu pc %u\n",
                     static_cast<unsigned long long>(race.object),
                     static_cast<unsigned long long>(race.first_process), race.first_pc,
                     static_cast<unsigned long long>(race.second_process), race.second_pc);
      }
      return 1;
    }
  }
  return 0;
}

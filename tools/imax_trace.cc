// imax_trace: run a canned workload with kernel event tracing enabled and export the
// timeline as Chrome trace-event JSON (open in ui.perfetto.dev or chrome://tracing) plus an
// optional metrics snapshot.
//
// Usage:
//   imax_trace [--workload quickstart|pipeline|churn] [--processors N] [--cycles N]
//              [--trace-capacity N] [--out trace.json] [--metrics metrics.json] [--overhead]
//              [--xlat-cache]
//
// --xlat-cache arms the certified AD-translation cache and its runtime auditor (implies
// verify-on-load so the interference analysis runs at spawn). The run reports hit/miss
// counts at exit and fails if the auditor catches a single certified-entry violation.
// Composes with --inject: the campaign replay must stay bit-identical with the cache in
// the hot path.
//
// --decode-cache arms the pre-validated decode cache with check-elided superblock
// execution plus the guard auditor (implies verify-on-load so the guard-dominance analysis
// runs at spawn). The run reports decode hit/miss and elision counts at exit and fails if
// the auditor catches a single elided check that would have failed. Composes with
// --xlat-cache and with --inject: the campaign replay fingerprint must be unchanged with
// both caches in the hot path.
//
// --overhead runs the selected workload twice — tracing enabled and disabled — and reports
// the host wall-clock cost of instrumentation. The two runs must reach the same virtual
// time; tracing is an observer, never a participant.
//
// --profile arms the cycle-attribution profiler: every virtual cycle of every GDP is binned
// into an attribution bucket (interpreter, dispatch, bus, port wait, gc, fault recovery,
// idle, halted) with a deterministic hot-site sample of interpreter dispatch. The run
// reports the per-GDP table and fails unless each GDP's buckets sum exactly to its online
// time (the gap-free invariant). --critical-path additionally arms causal span tracing and
// prints the longest request's chain composition plus p50/p99/p999 end-to-end latency.
// --span-export FILE writes the span trees as Chrome trace-event JSON with flow arrows.
// All three are pure observers: virtual time (and the campaign replay fingerprint under
// --inject) is bit-identical with them on or off.
//
// --inject N switches to fault-injection campaign mode: a seeded schedule of N hardware
// faults (processor retirement/stalls, backing-store failures, bit flips, descriptor
// corruption, bus fault windows) is armed against a swapping-memory worker fleet with the
// patrol daemon and the fault service's recovery policy active. The run must end with zero
// kernel panics — every injected fault either recovers or is terminated by policy — and
// --inject-report writes a JSON recovery report. --inject-verify runs the campaign twice
// and fails unless both runs are bit-identical (same virtual end time, same trace
// fingerprint): the replay contract.
//
// --power-cut-campaign N switches to crash-restart campaign mode: a seeded schedule of N
// events of which --power-cuts K (default 25) are whole-System power cuts. Each cut tears
// the journal's unsynced tail mid-write and destroys the live System; a fresh boot then
// replays the journal and the driver verifies prefix-consistent recovery, zero patrol
// violations, and §7.2 type identity across the restart. --inject-report writes the JSON
// recovery report; --inject-verify double-runs the whole campaign and demands bit-identical
// fingerprints. Exit is nonzero if any epoch fails to recover.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/filing/crash_campaign.h"
#include "src/obs/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/perfetto.h"
#include "src/os/fault_service.h"
#include "src/os/system.h"
#include "src/sim/fault_injector.h"

using namespace imax432;

namespace {

struct Options {
  std::string workload = "quickstart";
  std::string out = "trace.json";
  std::string metrics;
  int processors = 2;
  Cycles cycles = 0;  // 0 = run to quiescence
  uint32_t trace_capacity = TraceRecorder::kDefaultCapacity;
  bool overhead = false;
  bool race_sanitize = false;
  bool lifetime_demote = false;
  bool xlat_cache = false;
  bool decode_cache = false;
  uint32_t inject_count = 0;  // > 0 selects campaign mode
  uint64_t seed = 432;
  Cycles inject_horizon = 2'000'000;
  std::string inject_report;
  bool inject_verify = false;
  uint32_t power_cut_events = 0;  // > 0 selects crash-restart campaign mode
  uint32_t power_cuts = 25;       // kPowerCut events among --power-cut-campaign's total
  bool profile = false;
  bool critical_path = false;  // implies profile + span tracing
  std::string span_export;     // implies span tracing

  bool spans_armed() const { return critical_path || !span_export.empty(); }
};

void Usage() {
  std::fprintf(stderr,
               "usage: imax_trace [--workload quickstart|pipeline|churn] [--processors N]\n"
               "                  [--cycles N] [--trace-capacity N] [--out FILE]\n"
               "                  [--metrics FILE] [--overhead] [--race-sanitize]\n"
               "                  [--lifetime-demote] [--xlat-cache] [--decode-cache]\n"
               "                  [--inject N] [--seed S]\n"
               "                  [--inject-horizon CYCLES] [--inject-report FILE]\n"
               "                  [--inject-verify] [--power-cut-campaign N]\n"
               "                  [--power-cuts K] [--profile] [--critical-path]\n"
               "                  [--span-export FILE]\n");
}

// quickstart: the README workload — a producer/consumer pair over a bounded port, a domain
// the producer calls on every item, and a GC cycle at the end. Exercises dispatch, port,
// domain-call, allocation, and GC-phase events.
std::unique_ptr<System> RunQuickstart(SystemConfig config) {
  auto system = std::make_unique<System>(config);
  auto& kernel = system->kernel();
  auto& memory = system->memory();

  auto port = kernel.ports().CreatePort(memory.global_heap(), 4, QueueDiscipline::kFifo);
  IMAX_CHECK(port.ok());
  kernel.symbols().Name(port.value().index(), "work port");

  // A one-entry domain the producer calls per item; every call is a protection-domain
  // switch and shows up as a ~65 us slice.
  Assembler leaf("stamp");
  leaf.Compute(64).ClearAd(7).Return();
  auto segment = kernel.programs().Register(leaf.Build());
  IMAX_CHECK(segment.ok());
  auto domain = kernel.CreateDomain({segment.value()});
  IMAX_CHECK(domain.ok());
  kernel.symbols().Name(domain.value().index(), "stamp domain");

  auto carrier = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 16, 3,
                                     rights::kRead | rights::kWrite);
  IMAX_CHECK(carrier.ok());
  (void)system->machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system->machine().addressing().WriteAd(carrier.value(), 1, memory.global_heap());
  (void)system->machine().addressing().WriteAd(carrier.value(), 2, domain.value());

  constexpr uint64_t kItems = 12;

  Assembler producer("producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)  // a2 = port
      .LoadAd(3, 1, 1)  // a3 = heap
      .LoadAd(5, 1, 2)  // a5 = domain
      .LoadImm(0, 0)
      .LoadImm(1, kItems)
      .Bind(send_loop)
      .CreateObject(4, 3, 32)
      .StoreData(4, 0, 0, 8)
      .Call(5, 0)  // inter-domain call before every send
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, send_loop)
      .Halt();

  Assembler consumer("consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, kItems)
      .LoadImm(2, 0)
      .Bind(recv_loop)
      .Receive(4, 2)
      .LoadData(3, 4, 0, 8)
      .Add(2, 2, 3)
      .Compute(512)  // slow consumer: the bounded port backpressures the producer
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .StoreData(1, 2, 0, 8)
      .Halt();

  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto consumer_process = system->Spawn(consumer.Build(), options);
  auto producer_process = system->Spawn(producer.Build(), options);
  IMAX_CHECK(consumer_process.ok() && producer_process.ok());
  kernel.symbols().Name(consumer_process.value().index(), "consumer");
  kernel.symbols().Name(producer_process.value().index(), "producer");

  system->Run();
  (void)system->RequestCollection();
  system->Run();
  return system;
}

// pipeline: a four-stage dataflow across however many GDPs are configured; heavy port
// traffic with backpressure, good for watching processes migrate between processors.
std::unique_ptr<System> RunPipeline(SystemConfig config) {
  constexpr int kStages = 4;
  constexpr uint64_t kItems = 16;
  auto system = std::make_unique<System>(config);
  auto& kernel = system->kernel();
  auto& memory = system->memory();

  std::vector<AccessDescriptor> ports;
  for (int i = 0; i <= kStages; ++i) {
    uint16_t capacity = (i == kStages) ? static_cast<uint16_t>(kItems) : 2;
    auto port =
        kernel.ports().CreatePort(memory.global_heap(), capacity, QueueDiscipline::kFifo);
    IMAX_CHECK(port.ok());
    kernel.symbols().Name(port.value().index(), "stage port " + std::to_string(i));
    ports.push_back(port.value());
  }
  kernel.AddRootProvider([ports](std::vector<AccessDescriptor>* roots) {
    for (const AccessDescriptor& port : ports) {
      roots->push_back(port);
    }
  });

  auto carrier = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 8,
                                     kStages + 2, rights::kRead | rights::kWrite);
  IMAX_CHECK(carrier.ok());
  for (int i = 0; i <= kStages; ++i) {
    (void)system->machine().addressing().WriteAd(carrier.value(), static_cast<uint32_t>(i),
                                                 ports[static_cast<size_t>(i)]);
  }
  (void)system->machine().addressing().WriteAd(carrier.value(), kStages + 1,
                                               memory.global_heap());

  Assembler source("source");
  auto source_loop = source.NewLabel();
  source.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, kStages + 1)
      .LoadImm(0, 0)
      .LoadImm(1, kItems)
      .Bind(source_loop)
      .CreateObject(4, 3, 64)
      .StoreData(4, 0, 0, 8)
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, source_loop)
      .Halt();

  ProcessOptions options;
  options.initial_arg = carrier.value();
  for (int stage = 0; stage < kStages; ++stage) {
    Assembler a("stage");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, static_cast<uint32_t>(stage))
        .LoadAd(3, 1, static_cast<uint32_t>(stage + 1))
        .LoadImm(0, 0)
        .LoadImm(1, kItems)
        .Bind(loop)
        .Receive(4, 2)
        .Compute(4000)
        .Send(3, 4)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    auto process = system->Spawn(a.Build(), options);
    IMAX_CHECK(process.ok());
    kernel.symbols().Name(process.value().index(), "stage " + std::to_string(stage));
  }
  auto source_process = system->Spawn(source.Build(), options);
  IMAX_CHECK(source_process.ok());
  kernel.symbols().Name(source_process.value().index(), "source");

  system->Run();
  return system;
}

// churn: an allocation-heavy loop that turns most of its objects into garbage, then a GC
// cycle to reclaim them — a memory-manager and collector stress view.
std::unique_ptr<System> RunChurn(SystemConfig config) {
  auto system = std::make_unique<System>(config);
  auto& memory = system->memory();

  auto carrier = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 16, 1,
                                     rights::kRead | rights::kWrite);
  IMAX_CHECK(carrier.ok());
  (void)system->machine().addressing().WriteAd(carrier.value(), 0, memory.global_heap());

  Assembler churn("churn");
  auto loop = churn.NewLabel();
  churn.MoveAd(1, kArgAdReg)
      .LoadAd(3, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 200)
      .Bind(loop)
      .CreateObject(4, 3, 128)  // each iteration orphans the previous object
      .StoreData(4, 0, 0, 8)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .Halt();

  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto process = system->Spawn(churn.Build(), options);
  IMAX_CHECK(process.ok());
  system->kernel().symbols().Name(process.value().index(), "churn");

  system->Run();
  (void)system->RequestCollection();
  system->Run();
  return system;
}

std::unique_ptr<System> RunWorkload(const Options& options, bool trace) {
  SystemConfig config;
  config.processors = options.processors;
  config.machine.memory_bytes = 8 * 1024 * 1024;
  config.trace = trace;
  config.trace_capacity = options.trace_capacity;
  config.race_sanitize = options.race_sanitize;
  if (options.lifetime_demote) {
    // Demotion verdicts come from the load-time lifetime analysis, so the verifier (and
    // with it the analysis pipeline) must be armed; the auditor rides along to prove every
    // demotion stayed context-local.
    config.verify_on_load = true;
    config.lifetime_demote = true;
    config.lifetime_audit = true;
  }
  if (options.xlat_cache) {
    // Cacheability certificates come from the load-time interference analysis, so
    // summaries must land at spawn; the auditor revalidates every certified hit so a
    // violation is a soundness finding, not silent corruption.
    config.verify_on_load = true;
    config.xlat_cache = true;
    config.interference_audit = true;
  }
  if (options.decode_cache) {
    // Elision certificates come from the load-time guard-dominance analysis, so summaries
    // must land at spawn; the auditor re-executes every skipped check so a violation is a
    // soundness finding, not silent corruption.
    config.verify_on_load = true;
    config.decode_cache = true;
    config.guard_audit = true;
  }
  config.profile = options.profile;
  config.span_trace = options.spans_armed();
  std::unique_ptr<System> system;
  if (options.workload == "quickstart") {
    system = RunQuickstart(config);
  } else if (options.workload == "pipeline") {
    system = RunPipeline(config);
  } else if (options.workload == "churn") {
    system = RunChurn(config);
  } else {
    std::fprintf(stderr, "imax_trace: unknown workload '%s'\n", options.workload.c_str());
    return nullptr;
  }
  if (options.cycles != 0 && system->now() > options.cycles) {
    std::fprintf(stderr, "note: workload ran to %llu cycles, past --cycles %llu\n",
                 static_cast<unsigned long long>(system->now()),
                 static_cast<unsigned long long>(options.cycles));
  }
  return system;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  if (path == "-") {
    std::fwrite(contents.data(), 1, contents.size(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "imax_trace: cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(contents.data(), 1, contents.size(), file);
  std::fclose(file);
  return true;
}

// --- Profiler / span reporting (shared by workload and campaign modes) ---

// Flushes the observers at quiescence, prints the per-GDP attribution table, hot sites,
// critical-path report, and span export. Returns nonzero if the gap-free invariant fails:
// every GDP's bucket sums must equal its online time exactly.
int ReportObservers(System& system, const Options& options) {
  int rc = 0;
  Machine& machine = system.machine();
  if (options.profile) {
    CycleProfiler& profiler = machine.profiler();
    profiler.FlushOpenIntervals(machine.now());
    std::fprintf(stderr, "cycle attribution (sample period %u):\n", profiler.sample_period());
    const auto& cpus = profiler.cpus();
    CycleBucketArray totals = profiler.Totals();
    Cycles grand_total = 0;
    for (size_t cpu = 0; cpu < cpus.size(); ++cpu) {
      const CycleProfiler::CpuSlot& slot = cpus[cpu];
      Cycles total = profiler.CpuTotal(static_cast<uint16_t>(cpu));
      Cycles online = machine.now() - slot.epoch_start;
      grand_total += total;
      std::fprintf(stderr, "  GDP %zu: %llu cycles attributed, %llu online%s\n", cpu,
                   static_cast<unsigned long long>(total),
                   static_cast<unsigned long long>(online),
                   total == online ? "" : "  [MISMATCH]");
      if (total != online) {
        rc = 1;
      }
      for (size_t b = 0; b < kCycleBucketCount; ++b) {
        if (slot.buckets[b] == 0) continue;
        std::fprintf(stderr, "    %-14s %12llu (%5.1f%%)\n",
                     CycleBucketName(static_cast<CycleBucket>(b)),
                     static_cast<unsigned long long>(slot.buckets[b]),
                     total == 0 ? 0.0
                                : 100.0 * static_cast<double>(slot.buckets[b]) /
                                      static_cast<double>(total));
      }
    }
    std::fprintf(stderr, "  all GDPs: %llu cycles attributed across %zu buckets\n",
                 static_cast<unsigned long long>(grand_total), totals.size());

    std::vector<std::pair<uint64_t, CycleProfiler::HotSite>> sites(
        profiler.hot_sites().begin(), profiler.hot_sites().end());
    std::sort(sites.begin(), sites.end(), [](const auto& a, const auto& b) {
      if (a.second.cycles != b.second.cycles) return a.second.cycles > b.second.cycles;
      return a.first < b.first;
    });
    size_t top = sites.size() < 10 ? sites.size() : 10;
    std::fprintf(stderr,
                 "  hot sites (%llu samples, %llu dropped, top %zu of %zu):\n",
                 static_cast<unsigned long long>(profiler.samples_taken()),
                 static_cast<unsigned long long>(profiler.samples_dropped()), top,
                 sites.size());
    for (size_t i = 0; i < top; ++i) {
      uint32_t segment = static_cast<uint32_t>(sites[i].first >> 32);
      uint32_t pc = static_cast<uint32_t>(sites[i].first & 0xffffffffu);
      std::string name = "segment " + std::to_string(segment);
      const std::string* symbol = system.kernel().symbols().Find(segment);
      if (symbol != nullptr) name = *symbol;
      std::fprintf(stderr, "    %s pc %u: %llu samples, %llu cycles\n", name.c_str(), pc,
                   static_cast<unsigned long long>(sites[i].second.samples),
                   static_cast<unsigned long long>(sites[i].second.cycles));
    }
    if (rc != 0) {
      std::fprintf(stderr, "FAIL: cycle attribution has unaccounted gaps\n");
    }
  }
  if (options.spans_armed()) {
    machine.spans().FlushOpen();
  }
  if (options.critical_path) {
    CriticalPathReport report = AnalyzeCriticalPath(machine.spans());
    std::fprintf(stderr, "%s", report.ToString().c_str());
  }
  if (!options.span_export.empty()) {
    std::string json = ExportSpanChromeTrace(machine.spans(), &system.kernel().symbols());
    if (!WriteFile(options.span_export, json)) {
      rc = 1;
    } else {
      std::fprintf(stderr, "spans -> %s (%llu spans, %llu roots, %llu dropped)\n",
                   options.span_export.c_str(),
                   static_cast<unsigned long long>(machine.spans().spans_created()),
                   static_cast<unsigned long long>(machine.spans().roots_created()),
                   static_cast<unsigned long long>(machine.spans().dropped()));
    }
  }
  return rc;
}

// --- Fault-injection campaign mode ---

struct CampaignResult {
  std::unique_ptr<System> system;
  std::vector<InjectionEvent> schedule;
  InjectorStats injector;
  FaultServiceStats fault_service;
  uint64_t fingerprint = 0;
};

// FNV-1a over every recorded trace event. Two campaigns with the same {seed, schedule}
// must produce the same fingerprint — the bit-identical-replay check.
uint64_t FingerprintTrace(const TraceRecorder& trace) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t word) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (word >> shift) & 0xFFull;
      hash *= 1099511628211ull;
    }
  };
  for (const TraceEvent& event : trace.Snapshot()) {
    mix(event.ts);
    mix(event.process);
    mix((static_cast<uint64_t>(event.a) << 32) | event.b);
    mix((static_cast<uint64_t>(event.c) << 16) | event.cpu);
    mix(static_cast<uint64_t>(event.kind));
  }
  return hash;
}

// The campaign workload: a fleet of workers over the swapping memory manager, each churning
// allocations through a small ring of objects and re-reading the slot it filled on the
// previous iteration. The churn keeps the heap under pressure (evictions -> backing-store
// traffic for the device faults to hit), the re-reads force swap-ins and walk straight into
// any object the patrol quarantined, and the fleet gives processor retirement real victims.
CampaignResult RunCampaign(const Options& options) {
  SystemConfig config;
  config.processors = options.processors;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.memory_manager = MemoryManagerKind::kSwapping;
  config.trace = true;
  config.trace_capacity = options.trace_capacity;
  config.start_patrol_daemon = true;
  if (options.lifetime_demote) {
    // Demotion under fire: the campaign replays must stay bit-identical with the demote
    // machinery (and its auditor) in the loop.
    config.verify_on_load = true;
    config.lifetime_demote = true;
    config.lifetime_audit = true;
  }
  if (options.xlat_cache) {
    // Translation caching under fire: certified and epoch-keyed hits must not perturb
    // virtual time, and the auditor must stay silent across retirements and corruption.
    config.verify_on_load = true;
    config.xlat_cache = true;
    config.interference_audit = true;
  }
  if (options.decode_cache) {
    // Check-elided decode under fire: retirement, corruption, and quarantine must fault
    // identically on the elided path, and the guard auditor must stay silent.
    config.verify_on_load = true;
    config.decode_cache = true;
    config.guard_audit = true;
  }
  // Profiling under fire: attribution and span tracing must leave the replay fingerprint
  // untouched (CI diffs the profiled campaign's fingerprint against the unprofiled one).
  config.profile = options.profile;
  config.span_trace = options.spans_armed();

  CampaignResult result;
  result.system = std::make_unique<System>(config);
  System& system = *result.system;
  auto& kernel = system.kernel();
  auto& memory = system.memory();

  auto* swap = static_cast<SwappingMemoryManager*>(&memory);
  FaultService fault_service(&kernel, FaultService::MakeRecoveryPolicy());
  auto fault_port = fault_service.Spawn();
  IMAX_CHECK(fault_port.ok());

  FaultInjector injector(&kernel, swap);
  result.schedule = FaultInjector::GenerateSchedule(options.seed, options.inject_count,
                                                    options.inject_horizon);
  injector.Arm(result.schedule);

  // Periodic GC (reclaims the churn so allocation pressure stays survivable) and patrol
  // sweeps (bounds how long corruption lingers before quarantine) across the window.
  System* sys = &system;
  for (Cycles t = 150'000; t < options.inject_horizon; t += 150'000) {
    system.machine().events().ScheduleAt(t, [sys] { (void)sys->RequestCollection(); });
  }
  for (Cycles t = 100'000; t < options.inject_horizon; t += 200'000) {
    system.machine().events().ScheduleAt(t, [sys] { (void)sys->RequestPatrolSweep(); });
  }

  constexpr int kWorkers = 6;
  constexpr uint32_t kRing = 6;
  constexpr uint64_t kIterations = 220;
  constexpr uint32_t kObjectBytes = 2048;
  for (int w = 0; w < kWorkers; ++w) {
    auto carrier = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 16,
                                       kRing + 1, rights::kRead | rights::kWrite);
    IMAX_CHECK(carrier.ok());
    (void)system.machine().addressing().WriteAd(carrier.value(), 0, memory.global_heap());

    Assembler a("worker");
    auto fill = a.NewLabel();
    auto loop = a.NewLabel();
    auto advanced = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)  // a2 = heap
        .LoadImm(0, 0)    // r0 = iteration counter
        .LoadImm(1, kIterations)
        .LoadImm(2, 0)  // r2 = ring cursor
        .LoadImm(4, kRing)
        .Bind(fill)  // pre-fill the ring so the re-read below never hits a null slot
        .CreateObject(4, 2, kObjectBytes)
        .StoreData(4, 0, 0, 8)
        .StoreAdIndexed(1, 4, 2, 1)
        .AddImm(2, 2, 1)
        .BranchIfLess(2, 4, fill)
        .LoadImm(2, 0)
        .LoadImm(3, 0)  // r3 = slot filled on the previous iteration
        .Bind(loop)
        .CreateObject(4, 2, kObjectBytes)
        .StoreData(4, 0, 0, 8)
        .StoreAdIndexed(1, 4, 2, 1)  // overwrite: orphans the slot's old occupant
        .LoadAdIndexed(5, 1, 3, 1)
        .LoadData(6, 5, 0, 8)  // re-read: swap-ins, and quarantined objects fault here
        .Compute(300)
        .Move(3, 2)
        .AddImm(2, 2, 1)
        .BranchIfLess(2, 4, advanced)
        .LoadImm(2, 0)
        .Bind(advanced)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();

    ProcessOptions po;
    po.initial_arg = carrier.value();
    // Services level: injected faults deliver to the fault port instead of panicking —
    // the campaign exercises recovery, not the §7.3 fault-freedom proof obligations.
    po.imax_level = kImaxLevelServices;
    po.fault_port = fault_port.value();
    auto process = system.Spawn(a.Build(), po);
    IMAX_CHECK(process.ok());
    kernel.symbols().Name(process.value().index(), "worker " + std::to_string(w));
  }

  system.Run();
  // A final synchronous sweep so corruption injected near the end still shows up in the
  // quarantine counts the report documents.
  system.patrol().SweepNow();

  result.injector = injector.stats();
  result.fault_service = fault_service.stats();
  result.fingerprint = FingerprintTrace(system.machine().trace());
  return result;
}

void AppendJsonU64(std::string* out, uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu", static_cast<unsigned long long>(value));
  *out += buffer;
}

void AppendJsonField(std::string* out, const char* name, uint64_t value, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += name;
  *out += "\":";
  AppendJsonU64(out, value);
}

std::string CampaignReportJson(const Options& options, const CampaignResult& result) {
  System& system = *result.system;
  const KernelStats& kernel = system.kernel().stats();
  const MemoryStats memory = system.memory().stats();
  const PatrolStats& patrol = system.patrol().stats();
  const Bus& bus = system.machine().bus();

  std::string out = "{\"seed\":";
  AppendJsonU64(&out, options.seed);
  out += ",\"requested\":";
  AppendJsonU64(&out, options.inject_count);
  out += ",\"horizon\":";
  AppendJsonU64(&out, options.inject_horizon);
  out += ",\"processors\":";
  AppendJsonU64(&out, static_cast<uint64_t>(options.processors));

  out += ",\"events\":[";
  bool first = true;
  for (const InjectionEvent& event : result.schedule) {
    if (!first) out += ',';
    first = false;
    out += "{\"at\":";
    AppendJsonU64(&out, event.at);
    out += ",\"kind\":\"";
    out += InjectionKindName(event.kind);
    out += "\",\"target\":";
    AppendJsonU64(&out, event.target);
    out += ",\"arg\":";
    AppendJsonU64(&out, event.arg);
    out += '}';
  }
  out += ']';

  out += ",\"injector\":{\"fired\":";
  AppendJsonU64(&out, result.injector.fired);
  out += ",\"skipped\":";
  AppendJsonU64(&out, result.injector.skipped);
  out += ",\"per_kind\":{";
  first = true;
  for (size_t kind = 0; kind < static_cast<size_t>(InjectionKind::kKindCount); ++kind) {
    AppendJsonField(&out, InjectionKindName(static_cast<InjectionKind>(kind)),
                    result.injector.per_kind[kind], &first);
  }
  out += "}}";

  out += ",\"recovery\":{";
  first = true;
  AppendJsonField(&out, "processors_retired", kernel.processors_retired, &first);
  AppendJsonField(&out, "processors_stalled", kernel.processors_stalled, &first);
  AppendJsonField(&out, "retirement_requeues", kernel.retirement_requeues, &first);
  AppendJsonField(&out, "device_retries", memory.device_retries, &first);
  AppendJsonField(&out, "device_errors", memory.device_errors, &first);
  AppendJsonField(&out, "swap_ins", memory.swap_ins, &first);
  AppendJsonField(&out, "swap_outs", memory.swap_outs, &first);
  AppendJsonField(&out, "backing_peak_used", memory.backing_peak_used, &first);
  AppendJsonField(&out, "patrol_sweeps", patrol.sweeps_completed, &first);
  AppendJsonField(&out, "objects_quarantined", patrol.objects_quarantined, &first);
  AppendJsonField(&out, "checksum_failures", patrol.checksum_failures, &first);
  AppendJsonField(&out, "data_crc_failures", patrol.data_crc_failures, &first);
  AppendJsonField(&out, "bus_dropped_transfers", bus.dropped_transfers(), &first);
  AppendJsonField(&out, "bus_duplicated_transfers", bus.duplicated_transfers(), &first);
  out += ",\"fault_service\":{";
  first = true;
  AppendJsonField(&out, "received", result.fault_service.received, &first);
  AppendJsonField(&out, "retried", result.fault_service.retried, &first);
  AppendJsonField(&out, "terminated", result.fault_service.terminated, &first);
  AppendJsonField(&out, "escalated", result.fault_service.escalated, &first);
  AppendJsonField(&out, "budget_exhausted", result.fault_service.budget_exhausted, &first);
  out += "}}";

  out += ",\"outcome\":{";
  first = true;
  AppendJsonField(&out, "virtual_cycles", system.now(), &first);
  AppendJsonField(&out, "panics", kernel.panics, &first);
  AppendJsonField(&out, "faults_delivered", kernel.faults_delivered, &first);
  AppendJsonField(&out, "processes_created", kernel.processes_created, &first);
  AppendJsonField(&out, "processes_terminated", kernel.processes_terminated, &first);
  AppendJsonField(&out, "active_processors",
                  static_cast<uint64_t>(system.kernel().active_processor_count()), &first);
  AppendJsonField(&out, "trace_events", system.machine().trace().total_emitted(), &first);
  out += ",\"trace_fingerprint\":\"";
  char fp[20];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(result.fingerprint));
  out += fp;
  out += "\"}}";
  return out;
}

int RunInjectCampaign(const Options& options) {
  CampaignResult result = RunCampaign(options);

  if (options.inject_verify) {
    CampaignResult replay = RunCampaign(options);
    if (replay.system->now() != result.system->now() ||
        replay.fingerprint != result.fingerprint) {
      if (std::getenv("IMAX_INJECT_DEBUG") != nullptr) {
        auto a = result.system->machine().trace().Snapshot();
        auto b = replay.system->machine().trace().Snapshot();
        for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
          if (a[i].ts != b[i].ts || a[i].kind != b[i].kind || a[i].a != b[i].a ||
              a[i].b != b[i].b || a[i].c != b[i].c || a[i].process != b[i].process ||
              a[i].cpu != b[i].cpu) {
            std::fprintf(stderr,
                         "first diff at event %zu:\n  A ts=%llu kind=%s cpu=%u proc=%u "
                         "a=%u b=%u c=%u\n  B ts=%llu kind=%s cpu=%u proc=%u a=%u b=%u "
                         "c=%u\n",
                         i, static_cast<unsigned long long>(a[i].ts),
                         TraceEventKindName(a[i].kind), a[i].cpu, a[i].process, a[i].a,
                         a[i].b, a[i].c, static_cast<unsigned long long>(b[i].ts),
                         TraceEventKindName(b[i].kind), b[i].cpu, b[i].process, b[i].a,
                         b[i].b, b[i].c);
            break;
          }
        }
        std::fprintf(stderr, "sizes: A=%zu B=%zu\n", a.size(), b.size());
        for (size_t i = std::min(a.size(), b.size());
             i < std::max(a.size(), b.size()); ++i) {
          const auto& e = (a.size() > b.size() ? a : b)[i];
          std::fprintf(stderr, "  extra[%zu] ts=%llu kind=%s cpu=%u proc=%u a=%u b=%u c=%u\n",
                       i, static_cast<unsigned long long>(e.ts), TraceEventKindName(e.kind),
                       e.cpu, e.process, e.a, e.b, e.c);
        }
      }
      std::fprintf(stderr,
                   "FAIL: replay diverged (cycles %llu vs %llu, fingerprint %016llx vs "
                   "%016llx)\n",
                   static_cast<unsigned long long>(result.system->now()),
                   static_cast<unsigned long long>(replay.system->now()),
                   static_cast<unsigned long long>(result.fingerprint),
                   static_cast<unsigned long long>(replay.fingerprint));
      return 1;
    }
    std::fprintf(stderr, "replay verified: %llu cycles, fingerprint %016llx\n",
                 static_cast<unsigned long long>(result.system->now()),
                 static_cast<unsigned long long>(result.fingerprint));
  }

  const KernelStats& kernel = result.system->kernel().stats();
  std::fprintf(stderr,
               "campaign seed %llu: %llu/%u faults fired, %llu retired GDP(s), "
               "%llu device retries, %llu quarantined, %llu panics, %llu virtual cycles\n",
               static_cast<unsigned long long>(options.seed),
               static_cast<unsigned long long>(result.injector.fired), options.inject_count,
               static_cast<unsigned long long>(kernel.processors_retired),
               static_cast<unsigned long long>(result.system->memory().stats().device_retries),
               static_cast<unsigned long long>(
                   result.system->patrol().stats().objects_quarantined),
               static_cast<unsigned long long>(kernel.panics),
               static_cast<unsigned long long>(result.system->now()));

  if (!options.inject_report.empty() &&
      !WriteFile(options.inject_report, CampaignReportJson(options, result))) {
    return 1;
  }
  // Flush + report the observers before the metrics snapshot so the collected bucket
  // totals include the tail intervals.
  int observers = ReportObservers(*result.system, options);
  if (observers != 0) {
    return observers;
  }
  // Campaigns usually only want the report; export the timeline only when --out was given
  // explicitly (the default trace.json write would be surprising here).
  if (options.out != "trace.json") {
    std::string json =
        ExportChromeTrace(result.system->machine().trace(), &result.system->kernel().symbols());
    if (!WriteFile(options.out, json)) {
      return 1;
    }
  }
  if (!options.metrics.empty()) {
    MetricsRegistry registry(result.system.get());
    if (!WriteFile(options.metrics, registry.Collect().ToJson())) {
      return 1;
    }
  }

  if (options.xlat_cache) {
    const XlatCacheStats xlat = result.system->kernel().xlat_stats();
    const analysis::InterferenceAuditorStats& audit =
        result.system->kernel().interference_auditor()->stats();
    std::fprintf(stderr,
                 "xlat cache: %llu certified + %llu epoch hits, %llu certified + %llu "
                 "epoch program hits; auditor checked %llu, %llu violation(s)\n",
                 static_cast<unsigned long long>(xlat.certified_hits),
                 static_cast<unsigned long long>(xlat.hits),
                 static_cast<unsigned long long>(xlat.certified_program_hits),
                 static_cast<unsigned long long>(xlat.program_hits),
                 static_cast<unsigned long long>(audit.hits_checked),
                 static_cast<unsigned long long>(audit.violations));
    // Under fault injection every certified hit is still revalidated by the auditor; a
    // violation means injected corruption reached a translation the analysis froze.
    if (audit.violations != 0) {
      std::fprintf(stderr, "FAIL: %llu interference violation(s) during campaign\n",
                   static_cast<unsigned long long>(audit.violations));
      return 1;
    }
  }

  if (options.decode_cache) {
    const DecodeCacheStats decode = result.system->kernel().decode_stats();
    const analysis::GuardAuditorStats& audit =
        result.system->kernel().guard_auditor()->stats();
    std::fprintf(stderr,
                 "decode cache: %llu hits (%llu misses), %llu check-elided executions; "
                 "guard auditor checked %llu, %llu violation(s)\n",
                 static_cast<unsigned long long>(decode.hits),
                 static_cast<unsigned long long>(decode.misses),
                 static_cast<unsigned long long>(
                     result.system->kernel().stats().guard_elisions),
                 static_cast<unsigned long long>(audit.hits_checked),
                 static_cast<unsigned long long>(audit.violations));
    // Every elided execution re-runs its skipped checks under the auditor; a violation
    // means injected corruption invalidated a dominance proof the decode cache trusted.
    if (audit.violations != 0) {
      std::fprintf(stderr, "FAIL: %llu guard violation(s) during campaign\n",
                   static_cast<unsigned long long>(audit.violations));
      return 1;
    }
  }

  // The acceptance bar: every injected fault ends in recovery or policy-driven
  // termination. A panic means a fault escaped both.
  if (kernel.panics != 0) {
    std::fprintf(stderr, "FAIL: %llu kernel panic(s) during campaign\n",
                 static_cast<unsigned long long>(kernel.panics));
    return 1;
  }
  return 0;
}

// --- Crash-restart (power-cut) campaign mode ---

std::string CrashReportJson(const CrashCampaignReport& report) {
  std::string out = "{\"config\":{";
  bool first = true;
  AppendJsonField(&out, "seed", report.config.seed, &first);
  AppendJsonField(&out, "events", report.config.events, &first);
  AppendJsonField(&out, "power_cuts", report.config.power_cuts, &first);
  AppendJsonField(&out, "horizon", report.config.horizon, &first);
  AppendJsonField(&out, "processors", static_cast<uint64_t>(report.config.processors),
                  &first);
  AppendJsonField(&out, "checkpoint_interval", report.config.checkpoint_interval, &first);

  out += "},\"campaign\":{";
  first = true;
  AppendJsonField(&out, "epochs", report.epochs, &first);
  AppendJsonField(&out, "power_cuts_fired", report.power_cuts_fired, &first);
  AppendJsonField(&out, "injections_fired", report.injections_fired, &first);
  AppendJsonField(&out, "injections_skipped", report.injections_skipped, &first);
  AppendJsonField(&out, "mutations_applied", report.mutations_applied, &first);
  AppendJsonField(&out, "mutations_durable", report.mutations_durable, &first);
  AppendJsonField(&out, "virtual_cycles", report.virtual_cycles, &first);
  AppendJsonField(&out, "healthy", report.healthy() ? 1 : 0, &first);

  out += "},\"failures\":{";
  first = true;
  AppendJsonField(&out, "recovery_mismatches", report.recovery_mismatches, &first);
  AppendJsonField(&out, "typed_identity_failures", report.typed_identity_failures, &first);
  AppendJsonField(&out, "post_recovery_violations", report.post_recovery_violations,
                  &first);
  AppendJsonField(&out, "panics", report.panics, &first);

  out += "},\"journal\":{";
  first = true;
  for (const auto& [name, value] : CountersFor(report.journal)) {
    AppendJsonField(&out, name.c_str(), value, &first);
  }

  out += "},\"epochs\":[";
  first = true;
  for (const CrashEpochReport& epoch : report.epoch_reports) {
    if (!first) out += ',';
    first = false;
    out += '{';
    bool field = true;
    AppendJsonField(&out, "start", epoch.start, &field);
    AppendJsonField(&out, "virtual_cycles", epoch.end, &field);
    AppendJsonField(&out, "power_cut", epoch.power_cut ? 1 : 0, &field);
    AppendJsonField(&out, "recovery_matched", epoch.recovery_matched ? 1 : 0, &field);
    AppendJsonField(&out, "recovery_prefix", epoch.recovery_prefix, &field);
    AppendJsonField(&out, "durable_floor", epoch.durable_floor, &field);
    AppendJsonField(&out, "mutations_applied", epoch.mutations_applied, &field);
    AppendJsonField(&out, "patrol_violations", epoch.patrol_violations, &field);
    AppendJsonField(&out, "typed_identity_checked", epoch.typed_identity_checked ? 1 : 0,
                    &field);
    AppendJsonField(&out, "typed_identity_ok", epoch.typed_identity_ok ? 1 : 0, &field);
    AppendJsonField(&out, "panics", epoch.panics, &field);
    char fp[20];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(epoch.trace_fingerprint));
    out += ",\"trace_fingerprint\":\"";
    out += fp;
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(epoch.store_digest));
    out += "\",\"store_digest\":\"";
    out += fp;
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(epoch.recovered_digest));
    out += "\",\"recovered_digest\":\"";
    out += fp;
    out += "\"}";
  }
  out += "],\"campaign_fingerprint\":\"";
  char fp[20];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(report.campaign_fingerprint));
  out += fp;
  out += "\"}";
  return out;
}

int RunPowerCutCampaign(const Options& options) {
  CrashCampaignConfig config;
  config.seed = options.seed;
  config.events = options.power_cut_events;
  config.power_cuts = std::min(options.power_cuts, options.power_cut_events);
  config.horizon = options.inject_horizon;
  config.processors = options.processors;

  CrashCampaignReport report = RunCrashCampaign(config);

  if (options.inject_verify) {
    CrashCampaignReport replay = RunCrashCampaign(config);
    if (replay.campaign_fingerprint != report.campaign_fingerprint ||
        replay.virtual_cycles != report.virtual_cycles) {
      std::fprintf(stderr,
                   "FAIL: crash campaign replay diverged (cycles %llu vs %llu, "
                   "fingerprint %016llx vs %016llx)\n",
                   static_cast<unsigned long long>(report.virtual_cycles),
                   static_cast<unsigned long long>(replay.virtual_cycles),
                   static_cast<unsigned long long>(report.campaign_fingerprint),
                   static_cast<unsigned long long>(replay.campaign_fingerprint));
      return 1;
    }
    std::fprintf(stderr, "replay verified: %llu virtual cycles, fingerprint %016llx\n",
                 static_cast<unsigned long long>(report.virtual_cycles),
                 static_cast<unsigned long long>(report.campaign_fingerprint));
  }

  std::fprintf(stderr,
               "crash campaign seed %llu: %u epoch(s), %llu power cut(s), "
               "%llu mutations (%llu durable at cuts), %llu replayed / %llu rolled back / "
               "%llu torn tail(s), %llu journal retries\n",
               static_cast<unsigned long long>(config.seed), report.epochs,
               static_cast<unsigned long long>(report.power_cuts_fired),
               static_cast<unsigned long long>(report.mutations_applied),
               static_cast<unsigned long long>(report.mutations_durable),
               static_cast<unsigned long long>(report.journal.replayed_transactions),
               static_cast<unsigned long long>(report.journal.rolled_back_transactions),
               static_cast<unsigned long long>(report.journal.torn_tail_truncations),
               static_cast<unsigned long long>(report.journal.retries));

  if (!options.inject_report.empty() &&
      !WriteFile(options.inject_report, CrashReportJson(report))) {
    return 1;
  }

  // The acceptance bar: every epoch recovers to a valid mutation prefix with zero patrol
  // violations, type identity enforced across every restart, and no kernel panics.
  if (!report.healthy()) {
    std::fprintf(stderr,
                 "FAIL: %llu recovery mismatch(es), %llu identity failure(s), "
                 "%llu patrol violation(s), %llu panic(s)\n",
                 static_cast<unsigned long long>(report.recovery_mismatches),
                 static_cast<unsigned long long>(report.typed_identity_failures),
                 static_cast<unsigned long long>(report.post_recovery_violations),
                 static_cast<unsigned long long>(report.panics));
    return 1;
  }
  return 0;
}

int RunOverhead(const Options& options) {
  using Clock = std::chrono::steady_clock;
  // Warm-up run so first-touch costs (page faults, allocator growth) hit neither side.
  RunWorkload(options, /*trace=*/false);

  // Host timing on a millisecond workload is noisy; alternate the two configurations and
  // compare best-of-N, which discards scheduler interference instead of averaging it in.
  constexpr int kRepeats = 7;
  double off_us = 1e300;
  double on_us = 1e300;
  std::unique_ptr<System> untraced;
  std::unique_ptr<System> traced;
  for (int i = 0; i < kRepeats; ++i) {
    auto t0 = Clock::now();
    untraced = RunWorkload(options, /*trace=*/false);
    auto t1 = Clock::now();
    traced = RunWorkload(options, /*trace=*/true);
    auto t2 = Clock::now();
    if (untraced == nullptr || traced == nullptr) {
      return 1;
    }
    off_us = std::min(off_us, std::chrono::duration<double, std::micro>(t1 - t0).count());
    on_us = std::min(on_us, std::chrono::duration<double, std::micro>(t2 - t1).count());
  }

  std::printf("workload %s: trace off %.0f us, trace on %.0f us, overhead %+.1f%% "
              "(best of %d)\n",
              options.workload.c_str(), off_us, on_us, (on_us / off_us - 1.0) * 100.0,
              kRepeats);
  std::printf("events recorded: %llu (dropped %llu)\n",
              static_cast<unsigned long long>(traced->machine().trace().total_emitted()),
              static_cast<unsigned long long>(traced->machine().trace().dropped()));
  if (traced->now() != untraced->now()) {
    std::printf("FAIL: tracing changed virtual time (%llu vs %llu cycles)\n",
                static_cast<unsigned long long>(traced->now()),
                static_cast<unsigned long long>(untraced->now()));
    return 1;
  }
  std::printf("virtual time identical with tracing on/off: %llu cycles\n",
              static_cast<unsigned long long>(traced->now()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      options.workload = value();
    } else if (arg == "--out") {
      options.out = value();
    } else if (arg == "--metrics") {
      options.metrics = value();
    } else if (arg == "--processors") {
      options.processors = std::atoi(value());
    } else if (arg == "--cycles") {
      options.cycles = static_cast<Cycles>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--trace-capacity") {
      options.trace_capacity = static_cast<uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--overhead") {
      options.overhead = true;
    } else if (arg == "--inject") {
      options.inject_count = static_cast<uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--inject-horizon") {
      options.inject_horizon = static_cast<Cycles>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--inject-report") {
      options.inject_report = value();
    } else if (arg == "--inject-verify") {
      options.inject_verify = true;
    } else if (arg == "--power-cut-campaign") {
      options.power_cut_events = static_cast<uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--power-cuts") {
      options.power_cuts = static_cast<uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--lifetime-demote") {
      options.lifetime_demote = true;
    } else if (arg == "--xlat-cache") {
      options.xlat_cache = true;
    } else if (arg == "--decode-cache") {
      options.decode_cache = true;
    } else if (arg == "--race-sanitize") {
      options.race_sanitize = true;
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg == "--critical-path") {
      options.critical_path = true;
      options.profile = true;  // the chain composition rides on the profiler's buckets
    } else if (arg == "--span-export") {
      options.span_export = value();
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "imax_trace: unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (options.power_cut_events > 0) {
    return RunPowerCutCampaign(options);
  }
  if (options.inject_count > 0) {
    return RunInjectCampaign(options);
  }
  if (options.overhead) {
    return RunOverhead(options);
  }

  auto system = RunWorkload(options, /*trace=*/true);
  if (system == nullptr) {
    return 1;
  }

  const TraceRecorder& trace = system->machine().trace();
  std::string json = ExportChromeTrace(trace, &system->kernel().symbols());
  if (!WriteFile(options.out, json)) {
    return 1;
  }
  std::fprintf(stderr, "%s: %zu events (%llu dropped), %.1f virtual ms -> %s\n",
               options.workload.c_str(), trace.size(),
               static_cast<unsigned long long>(trace.dropped()),
               cycles::ToMicroseconds(system->now()) / 1000.0, options.out.c_str());

  // Flush + report the observers before the metrics snapshot so the collected bucket
  // totals include the tail intervals.
  int observers = ReportObservers(*system, options);
  if (observers != 0) {
    return observers;
  }

  if (!options.metrics.empty()) {
    MetricsRegistry registry(system.get());
    if (!WriteFile(options.metrics, registry.Collect().ToJson())) {
      return 1;
    }
    std::fprintf(stderr, "metrics -> %s\n", options.metrics.c_str());
  }

  if (options.race_sanitize) {
    const analysis::RaceSanitizer* sanitizer = system->kernel().race_sanitizer();
    const analysis::RaceSanitizerStats& stats = sanitizer->stats();
    std::fprintf(stderr,
                 "race sanitizer: %llu accesses checked, %llu messages stamped, "
                 "%llu joins, %llu race(s)\n",
                 static_cast<unsigned long long>(stats.accesses_checked),
                 static_cast<unsigned long long>(stats.messages_stamped),
                 static_cast<unsigned long long>(stats.joins),
                 static_cast<unsigned long long>(stats.races_detected));
    // The canned workloads are race-free by construction; a finding is a real defect (or a
    // sanitizer bug) and must fail the run so CI catches it.
    if (!sanitizer->races().empty()) {
      for (const analysis::RaceRecord& race : sanitizer->races()) {
        std::fprintf(stderr,
                     "  race: object %llu process %llu pc %u vs process %llu pc %u\n",
                     static_cast<unsigned long long>(race.object),
                     static_cast<unsigned long long>(race.first_process), race.first_pc,
                     static_cast<unsigned long long>(race.second_process), race.second_pc);
      }
      return 1;
    }
  }

  if (options.lifetime_demote) {
    const KernelStats& stats = system->kernel().stats();
    std::fprintf(stderr,
                 "lifetime demotion: %llu demotions (%llu bulk-reclaimed, %llu fallbacks, "
                 "%llu demote SROs), %llu violations\n",
                 static_cast<unsigned long long>(stats.demotions),
                 static_cast<unsigned long long>(stats.demoted_bulk_reclaimed),
                 static_cast<unsigned long long>(stats.demote_fallbacks),
                 static_cast<unsigned long long>(stats.demote_sros_created),
                 static_cast<unsigned long long>(stats.lifetime_violations));
    // The canned workloads never leak a demoted object; an audit violation is a real
    // soundness bug in the lifetime analysis and must fail the run so CI catches it.
    if (stats.lifetime_violations != 0) {
      return 1;
    }
  }

  if (options.xlat_cache) {
    const XlatCacheStats xlat = system->kernel().xlat_stats();
    const analysis::InterferenceAuditorStats& audit =
        system->kernel().interference_auditor()->stats();
    std::fprintf(stderr,
                 "xlat cache: %llu certified + %llu epoch hits (%llu misses), "
                 "%llu certified + %llu epoch program hits (%llu misses); "
                 "auditor checked %llu, %llu violation(s)\n",
                 static_cast<unsigned long long>(xlat.certified_hits),
                 static_cast<unsigned long long>(xlat.hits),
                 static_cast<unsigned long long>(xlat.misses),
                 static_cast<unsigned long long>(xlat.certified_program_hits),
                 static_cast<unsigned long long>(xlat.program_hits),
                 static_cast<unsigned long long>(xlat.program_misses),
                 static_cast<unsigned long long>(audit.hits_checked),
                 static_cast<unsigned long long>(audit.violations));
    // Nothing in the canned workloads mutates a certified object; a violation means the
    // interference analysis certified something it shouldn't have. Fail loudly.
    if (audit.violations != 0 || system->kernel().stats().interference_violations != 0) {
      return 1;
    }
  }

  if (options.decode_cache) {
    const DecodeCacheStats decode = system->kernel().decode_stats();
    const analysis::GuardAuditorStats& audit = system->kernel().guard_auditor()->stats();
    std::fprintf(stderr,
                 "decode cache: %llu hits (%llu misses), %llu check-elided executions; "
                 "guard auditor checked %llu, %llu violation(s)\n",
                 static_cast<unsigned long long>(decode.hits),
                 static_cast<unsigned long long>(decode.misses),
                 static_cast<unsigned long long>(system->kernel().stats().guard_elisions),
                 static_cast<unsigned long long>(audit.hits_checked),
                 static_cast<unsigned long long>(audit.violations));
    // Nothing in the canned workloads invalidates a dominance proof behind the kernel's
    // back; a violation means the guard analysis certified a check it shouldn't have.
    if (audit.violations != 0 || system->kernel().stats().guard_violations != 0) {
      return 1;
    }
  }
  return 0;
}

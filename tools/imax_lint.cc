// imax_lint: offline static analysis for iMAX-432 programs.
//
// Boots a representative system configuration — GC daemon, fault service, pass-through
// scheduler, console device server, plus a quickstart-style producer/consumer pair — then
// sweeps every instruction segment in the program store through the static verifier
// (src/analysis) and prints a disassembly-annotated diagnostic report. See --help for the
// modes and the exit-code contract (CI gates on it).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/deadlock.h"
#include "src/analysis/effects.h"
#include "src/analysis/guards/guards.h"
#include "src/analysis/interference/interference.h"
#include "src/analysis/lifetime/lifetime.h"
#include "src/analysis/races/races.h"
#include "src/analysis/verifier.h"
#include "src/filing/journal.h"
#include "src/filing/stable_store.h"
#include "src/io/devices.h"
#include "src/isa/disassembler.h"
#include "src/os/fault_service.h"
#include "src/os/schedulers.h"
#include "src/os/system.h"

using namespace imax432;

namespace {

constexpr char kUsage[] =
    "usage: imax_lint [--dump] [--demo-bad] [--deadlock] [--races] [--lifetime]\n"
    "                 [--interference] [--guards] [--filing] [--all] [--json] [--help]\n"
    "\n"
    "Boots a representative iMAX-432 system with verify-on-load armed and sweeps every\n"
    "loaded program through the static capability verifier.\n"
    "\n"
    "  --dump      also print the full disassembly of every linted program\n"
    "  --demo-bad  additionally lint a corpus of deliberately broken programs and check\n"
    "              that each one is rejected (verifier rule coverage, end to end)\n"
    "  --deadlock  additionally run the whole-system IPC analysis: the booted system must\n"
    "              come back clean, and a seeded corpus (3-process receive cycle, orphan\n"
    "              port, starved port) must be flagged\n"
    "  --races     additionally run the static data-race analysis: the booted system must\n"
    "              come back clean, a seeded racy corpus (unordered write/write and\n"
    "              write/read pairs) must be flagged, and a seeded race-free corpus\n"
    "              (send/receive ordered, relayed, conditionally ambiguous) must not be\n"
    "  --lifetime  additionally run the object-lifetime analysis: the booted system must\n"
    "              come back clean, a seeded corpus (leaked store, retention anomaly) must\n"
    "              be flagged while context-local and consumed allocations must not, and a\n"
    "              live demote+audit quickstart must run violation-free\n"
    "  --interference\n"
    "              additionally run the interference & immutability analysis: the booted\n"
    "              system must come back clean, a seeded corpus (disjoint pair, shared-write\n"
    "              pair, immutable-after-publication, mutation-after-certification) must\n"
    "              produce the ground-truth verdicts and certificates, and a live\n"
    "              xlat-cache+audit quickstart must serve certified hits violation-free\n"
    "  --guards    additionally run the guard-dominance analysis: the booted system's\n"
    "              suppression accounting must balance, a seeded corpus (dominated read,\n"
    "              contended object, opaque program, fresh allocation) must produce the\n"
    "              ground-truth certificates and retractions, and a live decode-cache+audit\n"
    "              quickstart must execute check-elided with zero guard violations\n"
    "  --filing    additionally run the filing journal-integrity pass: a healthy journal\n"
    "              must replay whole, and a seeded corrupt-journal corpus (torn tail,\n"
    "              checksum-mismatched record, orphaned commit record) must be detected,\n"
    "              rolled back to the surviving prefix, and recovered from by a booting\n"
    "              kernel without panicking\n"
    "  --all       run every analysis pass above (equivalent to --demo-bad --deadlock\n"
    "              --races --lifetime --interference --guards --filing); tools/lint.sh and\n"
    "              CI use this\n"
    "  --json      append a machine-readable findings document as the LAST line of stdout:\n"
    "              one JSON object {\"findings\":[...],\"exit\":N} where each finding carries\n"
    "              pass (which analysis produced it), site (program/object/pc anchor),\n"
    "              verdict, and reason (suppression cause or diagnostic text; empty when\n"
    "              none). Human output above it is unchanged; CI extracts with `tail -1`\n"
    "  --help      print this text and exit 0\n"
    "\n"
    "exit status (flags combine; the worst outcome across all requested checks wins):\n"
    "  0  everything clean: all programs verified, all seeded defects detected, no seeded\n"
    "     race-free pair reported\n"
    "  1  infrastructure failure (boot/setup error, bad usage) — reported only when no\n"
    "     check that did run produced a finding\n"
    "  2  diagnostics found: a verifier error, a missed seeded defect, or a whole-system\n"
    "     false positive/negative; takes precedence over 1. CI gates on this value\n"
    "     (--json mirrors the same value in the document's \"exit\" field)\n";

// --- --json: machine-readable findings ---------------------------------------------------
//
// Every pass appends findings here when --json is armed; main() prints the whole document as
// the last line of stdout so CI can extract it with `tail -1` without parsing the prose.
struct JsonFinding {
  std::string pass;     // which analysis produced it (verifier, demo-bad, guards, ...)
  std::string site;     // program / object / pc anchor
  std::string verdict;  // clean / rejected / elidable / suppressed / findings / ...
  std::string reason;   // suppression cause or diagnostic text; empty when none
};
std::vector<JsonFinding>* g_json_findings = nullptr;

void AddFinding(std::string pass, std::string site, std::string verdict,
                std::string reason = "") {
  if (g_json_findings == nullptr) return;
  g_json_findings->push_back(
      {std::move(pass), std::move(site), std::move(verdict), std::move(reason)});
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void EmitJson(const std::vector<JsonFinding>& findings, int exit_code) {
  std::printf("{\"findings\":[");
  for (size_t i = 0; i < findings.size(); ++i) {
    const JsonFinding& f = findings[i];
    std::printf("%s{\"pass\":\"%s\",\"site\":\"%s\",\"verdict\":\"%s\",\"reason\":\"%s\"}",
                i == 0 ? "" : ",", JsonEscape(f.pass).c_str(), JsonEscape(f.site).c_str(),
                JsonEscape(f.verdict).c_str(), JsonEscape(f.reason).c_str());
  }
  std::printf("],\"exit\":%d}\n", exit_code);
}

struct BadProgram {
  const char* why;
  ProgramRef program;
  analysis::VerifyOptions options;
};

// The shape Spawn-from-the-global-heap gives a7: a level-0 SRO with allocate rights.
analysis::VerifyOptions SroArg() {
  analysis::VerifyOptions options;
  options.initial_arg = analysis::AdAbstract::Object(
      SystemType::kStorageResource, rights::kRead | rights::kSroAllocate,
      analysis::LevelRange::Exact(0));
  return options;
}

analysis::VerifyOptions PortArg() {
  analysis::VerifyOptions options;
  options.initial_arg = analysis::AdAbstract::Object(SystemType::kPort, rights::kAll,
                                                     analysis::LevelRange::Exact(0));
  return options;
}

// Deliberately broken programs, one per verifier rule family.
std::vector<BadProgram> BuildBadCorpus() {
  std::vector<BadProgram> corpus;

  {
    Assembler a("bad_null_load");
    a.LoadData(0, 1, 0, 8).Halt();  // a1 never initialized
    corpus.push_back({"loads through a null AD register", a.Build(), {}});
  }
  {
    Assembler a("bad_restricted_send");
    a.MoveAd(1, kArgAdReg).RestrictRights(1, rights::kRead).Send(1, 1).Halt();
    corpus.push_back({"sends after stripping port-send rights", a.Build(), PortArg()});
  }
  {
    Assembler a("bad_branch_target");
    Instruction in;
    in.op = Opcode::kBranch;
    in.imm = 1000;
    auto program = std::make_shared<Program>("bad_branch_target");
    program->Append(in);
    corpus.push_back({"branches far beyond the program end", ProgramRef(program), {}});
  }
  {
    Assembler a("bad_oob_store");
    a.MoveAd(1, kArgAdReg)
        .CreateObject(2, 1, 16)    // 16-byte object
        .StoreData(2, 0, 64, 8)    // store at offset 64
        .Halt();
    corpus.push_back({"stores past the end of a 16-byte object", a.Build(), SroArg()});
  }
  {
    Assembler a("bad_restricted_cond_send");
    a.MoveAd(1, kArgAdReg).RestrictRights(1, rights::kRead).CondSend(1, 1, 0).Halt();
    corpus.push_back(
        {"cond-sends after stripping port-send rights", a.Build(), PortArg()});
  }
  {
    Assembler a("bad_restricted_cond_receive");
    a.MoveAd(1, kArgAdReg)
        .RestrictRights(1, rights::kPortSend)  // keep send, drop receive
        .CondReceive(2, 1, 0)
        .Halt();
    corpus.push_back(
        {"cond-receives after stripping port-receive rights", a.Build(), PortArg()});
  }
  {
    Assembler a("bad_level_escape");
    a.MoveAd(1, kArgAdReg)       // a1 = global SRO (level 0)
        .CreateObject(2, 1, 16, 2)
        .CreateSro(3, 1, 4096)   // a3 = local SRO, level = entry + 1
        .StoreAd(2, 3, 0)        // store local SRO into global-level object
        .Halt();
    corpus.push_back(
        {"stores an activation-local SRO into a global object", a.Build(), SroArg()});
  }

  return corpus;
}

int LintProgram(const Program& program, const analysis::VerifyOptions& options, bool dump) {
  analysis::VerifyResult result = analysis::Verifier::Verify(program, options);
  std::printf("---- %-24s %4u instructions: %s\n", program.name().c_str(), program.size(),
              result.ok() ? (result.diagnostics.empty() ? "clean" : "clean (warnings)")
                          : "REJECTED");
  if (dump) {
    std::fputs(Disassemble(program).c_str(), stdout);
  }
  if (!result.diagnostics.empty()) {
    std::fputs(analysis::FormatDiagnostics(program, result).c_str(), stdout);
  }
  return static_cast<int>(result.error_count());
}

// Whole-system IPC analysis: the booted system must come back clean (zero false positives
// on shipped programs), then a seeded corpus of known-defective topologies must be flagged
// (zero false negatives on the patterns the detector claims to catch). Returns the number
// of failed expectations; -1 on setup failure.
int RunDeadlockChecks(System& system, bool dump) {
  int failures = 0;

  std::printf("\n==== whole-system IPC analysis (booted system) ====\n");
  analysis::SystemAnalysisReport live = system.kernel().AnalyzeSystem();
  std::printf("imax_lint: %u programs, %u distinct ports, %u opaque: %s\n",
              live.programs_analyzed, live.ports_seen, live.opaque_programs,
              live.ok() ? "clean" : "DIAGNOSTICS");
  if (!live.ok()) {
    std::fputs(analysis::FormatReport(live).c_str(), stdout);
    std::printf("^^^^ FALSE POSITIVE — the booted system is known deadlock-free\n");
    failures += static_cast<int>(live.diagnostics.size());
  }

  // --- Seeded corpus: a 3-process receive ring, an orphan port, a starved port. ---
  // Ports and carriers are real objects in the live table (so AD chains resolve exactly as
  // they would at load time), but the programs are analyzed standalone and never spawned —
  // running the ring would genuinely hang the simulation.
  std::printf("\n==== seeded deadlock corpus (every defect below must be flagged) ====\n");
  Kernel& kernel = system.kernel();
  SymbolTable& symbols = kernel.symbols();
  auto make_port = [&](const char* name) {
    auto port = kernel.ports().CreatePort(system.memory().global_heap(), 4,
                                          QueueDiscipline::kFifo);
    if (port.ok()) symbols.Name(port.value().index(), name);
    return port;
  };
  auto ring0 = make_port("ring.0");
  auto ring1 = make_port("ring.1");
  auto ring2 = make_port("ring.2");
  auto orphan = make_port("orphan.sink");
  auto starved = make_port("starved.source");
  if (!ring0.ok() || !ring1.ok() || !ring2.ok() || !orphan.ok() || !starved.ok()) {
    std::fprintf(stderr, "imax_lint: corpus port creation failed\n");
    return -1;
  }

  // carrier slot 0 = the port the program receives from, slot 1 = the port it sends to.
  auto make_carrier = [&](const AccessDescriptor& recv_port,
                          const AccessDescriptor& send_port) {
    auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                                SystemType::kGeneric, 16, 2,
                                                rights::kRead | rights::kWrite);
    if (carrier.ok()) {
      (void)system.machine().addressing().WriteAd(carrier.value(), 0, recv_port);
      (void)system.machine().addressing().WriteAd(carrier.value(), 1, send_port);
    }
    return carrier;
  };

  analysis::SystemEffectGraph graph;
  graph.set_symbols(&symbols);
  ObjectIndex next_key = 1;
  auto add_program = [&](const Program& program, const AccessDescriptor& carrier) {
    analysis::EffectOptions options =
        analysis::EffectOptionsForTable(system.machine().table(), carrier, &symbols);
    if (dump) std::fputs(Disassemble(program).c_str(), stdout);
    graph.AddProgram(next_key++, analysis::EffectAnalyzer::Analyze(program, options));
  };

  // The ring: each member blocks receiving from its own port, then forwards to the next.
  // No message is ever in flight, so all three block forever.
  const AccessDescriptor ring_ports[3] = {ring0.value(), ring1.value(), ring2.value()};
  for (int i = 0; i < 3; ++i) {
    Assembler a("ring.p" + std::to_string(i));
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)   // own port
        .LoadAd(3, 1, 1)   // next member's port
        .Receive(4, 2)
        .Send(3, 4)
        .Halt();
    auto carrier = make_carrier(ring_ports[i], ring_ports[(i + 1) % 3]);
    if (!carrier.ok()) return -1;
    add_program(*a.Build(), carrier.value());
  }
  {
    Assembler a("orphan.writer");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 1).Send(2, 1).Halt();
    auto carrier = make_carrier(AccessDescriptor(), orphan.value());
    if (!carrier.ok()) return -1;
    add_program(*a.Build(), carrier.value());
  }
  {
    Assembler a("starved.reader");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Receive(4, 2).Halt();
    auto carrier = make_carrier(starved.value(), AccessDescriptor());
    if (!carrier.ok()) return -1;
    add_program(*a.Build(), carrier.value());
  }

  analysis::SystemAnalysisReport report = graph.Analyze();
  std::fputs(analysis::FormatReport(report).c_str(), stdout);
  int cycles = 0, orphans = 0, starvations = 0;
  for (const analysis::SystemDiagnostic& diagnostic : report.diagnostics) {
    switch (diagnostic.rule) {
      case analysis::SystemRule::kDeadlockCycle:
        ++cycles;
        if (diagnostic.programs.size() != 3) {
          std::printf("^^^^ WRONG CYCLE — expected 3 programs, got %zu\n",
                      diagnostic.programs.size());
          ++failures;
        }
        break;
      case analysis::SystemRule::kOrphanPort: ++orphans; break;
      case analysis::SystemRule::kStarvedPort: ++starvations; break;
    }
  }
  if (cycles != 1 || orphans != 1 || starvations != 1) {
    std::printf("^^^^ MISSED DEFECT — expected 1 cycle / 1 orphan / 1 starved, "
                "got %d / %d / %d\n", cycles, orphans, starvations);
    ++failures;
  }
  std::printf("\nimax_lint: seeded corpus: %d cycle, %d orphan, %d starved; %d failures\n",
              cycles, orphans, starvations, failures);
  return failures;
}

// Static data-race analysis: the booted system must come back clean, a seeded corpus of
// genuinely racy topologies must be flagged, and a seeded corpus of message-ordered (or
// merely ambiguous) topologies must be suppressed — both halves of the zero-false-positive
// contract, end to end. Returns the number of failed expectations; -1 on setup failure.
int RunRaceChecks(System& system, bool dump) {
  int failures = 0;

  std::printf("\n==== whole-system race analysis (booted system) ====\n");
  analysis::RaceAnalysisReport live = system.kernel().AnalyzeRaces();
  std::printf("imax_lint: %u programs, %u shared objects, %u pairs "
              "(%u ordered, %u suppressed): %s\n",
              live.programs_analyzed, live.objects_shared, live.pairs_checked,
              live.pairs_ordered, live.pairs_suppressed,
              live.ok() ? "clean" : "DIAGNOSTICS");
  if (!live.ok()) {
    std::fputs(analysis::FormatRaceReport(live).c_str(), stdout);
    std::printf("^^^^ FALSE POSITIVE — the booted system is known race-free\n");
    failures += static_cast<int>(live.diagnostics.size());
  }

  std::printf("\n==== seeded race corpus (racy pairs flagged, ordered pairs not) ====\n");
  Kernel& kernel = system.kernel();
  SymbolTable& symbols = kernel.symbols();
  // Shared objects and ports are real objects in the live table; the programs are analyzed
  // standalone, exactly like the deadlock corpus.
  auto make_object = [&](const char* name) {
    auto object = system.memory().CreateObject(system.memory().global_heap(),
                                               SystemType::kGeneric, 16, 0,
                                               rights::kRead | rights::kWrite);
    if (object.ok()) symbols.Name(object.value().index(), name);
    return object;
  };
  auto make_port = [&](const char* name) {
    auto port = kernel.ports().CreatePort(system.memory().global_heap(), 4,
                                          QueueDiscipline::kFifo);
    if (port.ok()) symbols.Name(port.value().index(), name);
    return port;
  };
  // carrier slot 0 = the shared object, slots 1/2 = ports.
  auto make_carrier = [&](const AccessDescriptor& shared, const AccessDescriptor& port1,
                          const AccessDescriptor& port2) {
    auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                                SystemType::kGeneric, 16, 3,
                                                rights::kRead | rights::kWrite);
    if (carrier.ok()) {
      (void)system.machine().addressing().WriteAd(carrier.value(), 0, shared);
      (void)system.machine().addressing().WriteAd(carrier.value(), 1, port1);
      (void)system.machine().addressing().WriteAd(carrier.value(), 2, port2);
    }
    return carrier;
  };

  auto ww = make_object("racy.counter");
  auto rw = make_object("racy.buffer");
  auto sync = make_object("sync.cell");
  auto relay = make_object("relay.cell");
  auto cond = make_object("cond.cell");
  auto sync_port = make_port("sync.token");
  auto relay_t = make_port("relay.t");
  auto relay_u = make_port("relay.u");
  auto cond_port = make_port("cond.token");
  if (!ww.ok() || !rw.ok() || !sync.ok() || !relay.ok() || !cond.ok() || !sync_port.ok() ||
      !relay_t.ok() || !relay_u.ok() || !cond_port.ok()) {
    std::fprintf(stderr, "imax_lint: race corpus object creation failed\n");
    return -1;
  }

  analysis::SystemEffectGraph graph;
  graph.set_symbols(&symbols);
  ObjectIndex next_key = 1;
  bool carriers_ok = true;
  auto add_program = [&](const Program& program, const AccessDescriptor& shared,
                         const AccessDescriptor& port1, const AccessDescriptor& port2) {
    auto carrier = make_carrier(shared, port1, port2);
    if (!carrier.ok()) {
      carriers_ok = false;
      return;
    }
    analysis::EffectOptions options = analysis::EffectOptionsForTable(
        system.machine().table(), carrier.value(), &symbols);
    if (dump) std::fputs(Disassemble(program).c_str(), stdout);
    graph.AddProgram(next_key++, analysis::EffectAnalyzer::Analyze(program, options));
  };

  // Two writers, no communication at all: must be reported.
  for (int i = 0; i < 2; ++i) {
    Assembler a("racy.w" + std::to_string(i));
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).StoreData(2, 0, 0, 8).Halt();
    add_program(*a.Build(), ww.value(), AccessDescriptor(), AccessDescriptor());
  }
  // A writer and a reader, no communication: must be reported.
  {
    Assembler a("racy.writer");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).StoreData(2, 0, 0, 8).Halt();
    add_program(*a.Build(), rw.value(), AccessDescriptor(), AccessDescriptor());
  }
  {
    Assembler a("racy.reader");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadData(0, 2, 0, 8).Halt();
    add_program(*a.Build(), rw.value(), AccessDescriptor(), AccessDescriptor());
  }
  // Write, then a blocking send; the reader receives first: proven ordered, not reported.
  {
    Assembler a("sync.writer");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadAd(3, 1, 1).StoreData(2, 0, 0, 8)
        .Send(3, 1).Halt();
    add_program(*a.Build(), sync.value(), sync_port.value(), AccessDescriptor());
  }
  {
    Assembler a("sync.reader");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadAd(3, 1, 1).Receive(4, 3)
        .LoadData(0, 2, 0, 8).Halt();
    add_program(*a.Build(), sync.value(), sync_port.value(), AccessDescriptor());
  }
  // Same, but the ordering crosses a relay (receive t, then send u): still not reported.
  {
    Assembler a("relay.writer");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadAd(3, 1, 1).StoreData(2, 0, 0, 8)
        .Send(3, 1).Halt();
    add_program(*a.Build(), relay.value(), relay_t.value(), relay_u.value());
  }
  {
    Assembler a("relay.hop");
    a.MoveAd(1, kArgAdReg).LoadAd(3, 1, 1).LoadAd(4, 1, 2).Receive(5, 3).Send(4, 1).Halt();
    add_program(*a.Build(), relay.value(), relay_t.value(), relay_u.value());
  }
  {
    Assembler a("relay.reader");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadAd(4, 1, 2).Receive(5, 4)
        .LoadData(0, 2, 0, 8).Halt();
    add_program(*a.Build(), relay.value(), relay_t.value(), relay_u.value());
  }
  // A conditional send carries no must-ordering, but the pair may communicate: the
  // zero-false-positive posture suppresses it rather than reporting.
  {
    Assembler a("cond.writer");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadAd(3, 1, 1).StoreData(2, 0, 0, 8)
        .CondSend(3, 1, 0).Halt();
    add_program(*a.Build(), cond.value(), cond_port.value(), AccessDescriptor());
  }
  {
    Assembler a("cond.reader");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadAd(3, 1, 1).Receive(4, 3)
        .LoadData(0, 2, 0, 8).Halt();
    add_program(*a.Build(), cond.value(), cond_port.value(), AccessDescriptor());
  }
  if (!carriers_ok) {
    std::fprintf(stderr, "imax_lint: race corpus carrier creation failed\n");
    return -1;
  }

  analysis::RaceAnalysisReport report = analysis::AnalyzeRaces(graph);
  std::fputs(analysis::FormatRaceReport(report).c_str(), stdout);
  int ww_pairs = 0, rw_pairs = 0, clean_object_reports = 0;
  for (const analysis::RaceDiagnostic& diagnostic : report.diagnostics) {
    if (diagnostic.object == ww.value().index()) {
      ww_pairs += static_cast<int>(diagnostic.pairs.size());
    } else if (diagnostic.object == rw.value().index()) {
      rw_pairs += static_cast<int>(diagnostic.pairs.size());
    } else {
      ++clean_object_reports;
    }
  }
  if (ww_pairs != 1 || rw_pairs != 1) {
    std::printf("^^^^ MISSED RACE — expected 1 write/write + 1 write/read pair, "
                "got %d / %d\n", ww_pairs, rw_pairs);
    ++failures;
  }
  if (clean_object_reports != 0) {
    std::printf("^^^^ FALSE POSITIVE — %d diagnostic(s) on ordered/suppressed objects\n",
                clean_object_reports);
    failures += clean_object_reports;
  }
  if (report.pairs_ordered < 2) {
    std::printf("^^^^ LOST ORDERING — expected >= 2 ordered pairs (sync + relay), got %u\n",
                report.pairs_ordered);
    ++failures;
  }
  if (report.pairs_suppressed < 1) {
    std::printf("^^^^ LOST SUPPRESSION — expected >= 1 suppressed pair (cond), got %u\n",
                report.pairs_suppressed);
    ++failures;
  }
  std::printf("\nimax_lint: race corpus: %d racy pair(s) flagged, %u ordered, "
              "%u suppressed; %d failures\n",
              ww_pairs + rw_pairs, report.pairs_ordered, report.pairs_suppressed, failures);
  return failures;
}

// Object-lifetime analysis: the booted system must come back clean (whole-system opacity
// from the native daemons suppresses speculation), a seeded corpus must flag the genuine
// leak and retention anomaly while never touching the context-local or consumed
// allocations, and a live demote+audit quickstart must demote every loop allocation with
// zero auditor violations. Returns the number of failed expectations; -1 on setup failure.
int RunLifetimeChecks(System& system, bool dump) {
  int failures = 0;

  std::printf("\n==== whole-system lifetime analysis (booted system) ====\n");
  analysis::LifetimeAnalysisReport live = system.kernel().AnalyzeLifetimes();
  std::printf("imax_lint: %u programs, %u sites (%u demotable), %u opaque, "
              "%u leaks / %u anomalies suppressed: %s\n",
              live.programs_analyzed, live.sites_analyzed, live.sites_demotable,
              live.opaque_programs, live.leaks_suppressed, live.anomalies_suppressed,
              live.ok() ? "clean" : "DIAGNOSTICS");
  if (!live.ok()) {
    std::fputs(analysis::FormatLifetimeReport(live).c_str(), stdout);
    std::printf("^^^^ FALSE POSITIVE — the booted system is known leak-free\n");
    failures += static_cast<int>(live.leaks.size() + live.anomalies.size());
  }

  std::printf("\n==== seeded lifetime corpus (leak + anomaly flagged, local/consumed not) "
              "====\n");
  SymbolTable& symbols = system.kernel().symbols();
  // Long-lived containers are real objects in the live table so store targets resolve
  // exactly as they would at load time; the programs are analyzed standalone.
  auto make_container = [&](const char* name) {
    auto object = system.memory().CreateObject(system.memory().global_heap(),
                                               SystemType::kGeneric, 16, 2,
                                               rights::kRead | rights::kWrite);
    if (object.ok()) symbols.Name(object.value().index(), name);
    return object;
  };
  auto leak_registry = make_container("leak.registry");
  auto consumed_buffer = make_container("consumed.buffer");
  auto anomaly_cell = make_container("anomaly.cell");
  if (!leak_registry.ok() || !consumed_buffer.ok() || !anomaly_cell.ok()) {
    std::fprintf(stderr, "imax_lint: lifetime corpus container creation failed\n");
    return -1;
  }

  // carrier slot 0 = the allocation SRO (the global heap), slot 1 = the container.
  analysis::SystemEffectGraph graph;
  graph.set_symbols(&symbols);
  std::map<ObjectIndex, analysis::LifetimeSummary> lifetimes;
  ObjectIndex next_key = 1;
  bool carriers_ok = true;
  auto add_program = [&](const Program& program, const AccessDescriptor& container) {
    auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                                SystemType::kGeneric, 16, 2,
                                                rights::kRead | rights::kWrite);
    if (!carrier.ok()) {
      carriers_ok = false;
      return;
    }
    (void)system.machine().addressing().WriteAd(carrier.value(), 0,
                                                system.memory().global_heap());
    (void)system.machine().addressing().WriteAd(carrier.value(), 1, container);
    analysis::EffectOptions options = analysis::EffectOptionsForTable(
        system.machine().table(), carrier.value(), &symbols);
    if (dump) std::fputs(Disassemble(program).c_str(), stdout);
    graph.AddProgram(next_key, analysis::EffectAnalyzer::Analyze(program, options));
    lifetimes[next_key] = analysis::LifetimeAnalyzer::Analyze(program, options);
    ++next_key;
  };

  // Context-local allocation: demotable, and never the subject of a diagnostic.
  {
    Assembler a("good.local");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).CreateObject(4, 2, 16).Halt();
    add_program(*a.Build(), AccessDescriptor());
  }
  // Stored into a long-lived buffer that another program loads back: leak retracted.
  {
    Assembler a("good.producer");
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadAd(3, 1, 1)
        .CreateObject(4, 2, 16)
        .StoreAd(3, 4, 0)
        .Halt();
    add_program(*a.Build(), consumed_buffer.value());
  }
  {
    Assembler a("good.consumer");
    a.MoveAd(1, kArgAdReg).LoadAd(3, 1, 1).LoadAd(4, 3, 0).Halt();
    add_program(*a.Build(), consumed_buffer.value());
  }
  // Stored into a registry nobody ever reads back: a leak suspect.
  {
    Assembler a("bad.leak");
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadAd(3, 1, 1)
        .CreateObject(4, 2, 16)
        .StoreAd(3, 4, 0)
        .Halt();
    add_program(*a.Build(), leak_registry.value());
  }
  // The cell's sole reference is overwritten while no register still holds the object.
  {
    Assembler a("bad.anomaly");
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadAd(3, 1, 1)
        .CreateObject(4, 2, 16)
        .StoreAd(3, 4, 0)
        .ClearAd(4)
        .CreateObject(5, 2, 16)
        .StoreAd(3, 5, 0)
        .Halt();
    add_program(*a.Build(), anomaly_cell.value());
  }
  if (!carriers_ok) {
    std::fprintf(stderr, "imax_lint: lifetime corpus carrier creation failed\n");
    return -1;
  }

  analysis::LifetimeAnalysisReport report = analysis::AnalyzeLifetimes(graph, lifetimes);
  std::fputs(analysis::FormatLifetimeReport(report).c_str(), stdout);
  int leak_hits = 0, anomaly_hits = 0, good_hits = 0;
  for (const analysis::LeakDiagnostic& leak : report.leaks) {
    if (leak.program == "bad.leak") ++leak_hits;
    if (leak.program.rfind("good.", 0) == 0) ++good_hits;
  }
  for (const analysis::AnomalyDiagnostic& anomaly : report.anomalies) {
    if (anomaly.program == "bad.anomaly") ++anomaly_hits;
    if (anomaly.program.rfind("good.", 0) == 0) ++good_hits;
  }
  if (leak_hits < 1 || anomaly_hits < 1) {
    std::printf("^^^^ MISSED DEFECT — expected >= 1 leak on bad.leak and >= 1 anomaly on "
                "bad.anomaly, got %d / %d\n", leak_hits, anomaly_hits);
    ++failures;
  }
  if (good_hits != 0) {
    std::printf("^^^^ FALSE POSITIVE — %d diagnostic(s) on context-local/consumed "
                "programs\n", good_hits);
    failures += good_hits;
  }
  if (report.sites_demotable < 1) {
    std::printf("^^^^ LOST DEMOTION — good.local's allocation should be demotable\n");
    ++failures;
  }
  if (report.leaks_suppressed < 1) {
    std::printf("^^^^ LOST RETRACTION — good.producer's store should be retracted by the "
                "consumer's read-back\n");
    ++failures;
  }
  std::printf("\nimax_lint: lifetime corpus: %d leak(s), %d anomaly(ies) flagged, "
              "%u demotable, %u retracted; %d failures\n",
              leak_hits, anomaly_hits, report.sites_demotable, report.leaks_suppressed,
              failures);

  // --- Live quickstart: demotion + audit, end to end. ---
  std::printf("\n==== demotion quickstart (lifetime_demote + lifetime_audit) ====\n");
  SystemConfig config;
  config.processors = 1;
  config.verify_on_load = true;
  config.lifetime_demote = true;
  config.lifetime_audit = true;
  System demo(config);
  auto carrier = demo.memory().CreateObject(demo.memory().global_heap(),
                                            SystemType::kGeneric, 8, 1, rights::kAll);
  if (!carrier.ok() ||
      !demo.machine()
           .addressing()
           .WriteAd(carrier.value(), 0, demo.memory().global_heap())
           .ok()) {
    std::fprintf(stderr, "imax_lint: quickstart carrier creation failed\n");
    return failures > 0 ? failures : -1;
  }
  constexpr uint64_t kLoopAllocations = 16;
  Assembler loop_program("quickstart.demoter");
  auto loop = loop_program.NewLabel();
  loop_program.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, kLoopAllocations)
      .Bind(loop)
      .CreateObject(4, 2, 32)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto process = demo.Spawn(loop_program.Build(), options);
  if (!process.ok()) {
    std::fprintf(stderr, "imax_lint: quickstart spawn failed\n");
    return failures > 0 ? failures : -1;
  }
  demo.Run();
  const KernelStats& stats = demo.kernel().stats();
  std::printf("imax_lint: %llu demotions, %llu bulk-reclaimed, %llu violations, "
              "%llu fallbacks\n",
              static_cast<unsigned long long>(stats.demotions),
              static_cast<unsigned long long>(stats.demoted_bulk_reclaimed),
              static_cast<unsigned long long>(stats.lifetime_violations),
              static_cast<unsigned long long>(stats.demote_fallbacks));
  if (stats.demotions < kLoopAllocations || stats.demoted_bulk_reclaimed != stats.demotions) {
    std::printf("^^^^ LOST DEMOTION — expected %llu loop allocations demoted and "
                "bulk-reclaimed\n", static_cast<unsigned long long>(kLoopAllocations));
    ++failures;
  }
  if (stats.lifetime_violations != 0) {
    std::printf("^^^^ AUDIT VIOLATION — a demoted object escaped its context\n");
    failures += static_cast<int>(stats.lifetime_violations);
  }
  return failures;
}

// Static interference & immutability analysis: the booted system must come back clean
// (the zero-false-positive tiers suppress the native daemons), a seeded corpus must keep
// the disjoint pair independent, report the shared-write pair with named witnesses,
// certify the read-only object strictly immutable, and retract that certificate the moment
// a writer joins the graph — then a live xlat-cache+audit quickstart must serve certified
// hits with zero auditor violations. Returns the number of failed expectations; -1 on
// setup failure.
int RunInterferenceChecks(System& system, bool dump) {
  int failures = 0;

  std::printf("\n==== whole-system interference analysis (booted system) ====\n");
  analysis::InterferenceAnalysisReport live = system.kernel().AnalyzeInterference();
  std::printf("imax_lint: %u programs, %u objects, %u independent / %u interfering / %u "
              "suppressed pair(s), %u certified immutable (%u caveated): %s\n",
              live.programs_analyzed, live.objects_seen, live.pairs_independent,
              live.pairs_interfering, live.pairs_suppressed, live.certified_immutable,
              live.certified_with_caveat, live.ok() ? "clean" : "DIAGNOSTICS");
  if (!live.ok()) {
    std::fputs(analysis::FormatInterferenceReport(live).c_str(), stdout);
    std::printf("^^^^ FALSE POSITIVE — the booted system is known interference-free\n");
    failures += static_cast<int>(live.pairs_interfering);
  }

  std::printf("\n==== seeded interference corpus (ground-truth verdicts & certificates) "
              "====\n");
  SymbolTable& symbols = system.kernel().symbols();
  auto make_object = [&](const char* name) {
    auto object = system.memory().CreateObject(system.memory().global_heap(),
                                               SystemType::kGeneric, 16, 0,
                                               rights::kRead | rights::kWrite);
    if (object.ok()) symbols.Name(object.value().index(), name);
    return object;
  };
  auto left = make_object("disjoint.left");
  auto right = make_object("disjoint.right");
  auto cell = make_object("contended.cell");
  auto table = make_object("immutable.table");
  if (!left.ok() || !right.ok() || !cell.ok() || !table.ok()) {
    std::fprintf(stderr, "imax_lint: interference corpus object creation failed\n");
    return -1;
  }

  // carrier slot 0 = the target object. Programs are analyzed standalone, like every other
  // seeded corpus: the objects are real so AD chains resolve exactly as at load time.
  analysis::SystemEffectGraph graph;
  graph.set_symbols(&symbols);
  std::map<ObjectIndex, analysis::InterferenceSummary> summaries;
  ObjectIndex next_key = 1;
  bool carriers_ok = true;
  auto add_program = [&](const Program& program, const AccessDescriptor& target) {
    auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                                SystemType::kGeneric, 16, 1,
                                                rights::kRead | rights::kWrite);
    if (!carrier.ok()) {
      carriers_ok = false;
      return;
    }
    (void)system.machine().addressing().WriteAd(carrier.value(), 0, target);
    analysis::EffectOptions options = analysis::EffectOptionsForTable(
        system.machine().table(), carrier.value(), &symbols);
    if (dump) std::fputs(Disassemble(program).c_str(), stdout);
    graph.AddProgram(next_key, analysis::EffectAnalyzer::Analyze(program, options));
    summaries[next_key] = analysis::InterferenceAnalyzer::Analyze(program, options);
    ++next_key;
  };
  auto reader = [](const char* name) {
    Assembler a(name);
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadData(0, 2, 0, 8).Halt();
    return a;
  };
  auto writer = [](const char* name) {
    Assembler a(name);
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).StoreData(2, 0, 0, 8).Halt();
    return a;
  };

  // Disjoint pair: independent. Shared-write pair: interfering. Immutable table: two
  // readers, nobody writes — a strict immutable certificate.
  add_program(*reader("disjoint.a").Build(), left.value());
  add_program(*reader("disjoint.b").Build(), right.value());
  add_program(*writer("contended.w0").Build(), cell.value());
  add_program(*writer("contended.w1").Build(), cell.value());
  add_program(*reader("immutable.r0").Build(), table.value());
  add_program(*reader("immutable.r1").Build(), table.value());
  if (!carriers_ok) {
    std::fprintf(stderr, "imax_lint: interference corpus carrier creation failed\n");
    return -1;
  }

  analysis::InterferenceAnalysisReport report =
      analysis::AnalyzeInterference(graph, summaries);
  std::fputs(analysis::FormatInterferenceReport(report).c_str(), stdout);
  if (report.pairs_interfering != 1) {
    std::printf("^^^^ WRONG VERDICTS — expected exactly the contended.cell pair to "
                "interfere, got %u pair(s)\n", report.pairs_interfering);
    ++failures;
  }
  bool witness_ok = false;
  for (const analysis::InterferenceVerdict& verdict : report.verdicts) {
    if (verdict.verdict != analysis::PairVerdict::kInterfering) continue;
    witness_ok = verdict.shared.size() == 1 && verdict.shared[0] == cell.value().index() &&
                 verdict.message.find("contended.cell") != std::string::npos;
  }
  if (report.pairs_interfering == 1 && !witness_ok) {
    std::printf("^^^^ WRONG WITNESS — the interfering verdict must name contended.cell\n");
    ++failures;
  }
  auto find_cert = [](const analysis::InterferenceAnalysisReport& r, ObjectIndex object) {
    const analysis::CacheCertificate* found = nullptr;
    for (const analysis::CacheCertificate& cert : r.certificates) {
      if (cert.object == object && cert.part == analysis::ObjectPart::kData) found = &cert;
    }
    return found;
  };
  const analysis::CacheCertificate* table_cert = find_cert(report, table.value().index());
  if (table_cert == nullptr || table_cert->grade != analysis::CacheGrade::kImmutable ||
      table_cert->caveat) {
    std::printf("^^^^ LOST CERTIFICATE — immutable.table must certify strictly "
                "immutable\n");
    ++failures;
  }

  // Mutation after certification: a writer joining the graph must retract the certificate.
  add_program(*writer("immutable.late_writer").Build(), table.value());
  if (!carriers_ok) {
    std::fprintf(stderr, "imax_lint: interference corpus carrier creation failed\n");
    return failures > 0 ? failures : -1;
  }
  analysis::InterferenceAnalysisReport retracted =
      analysis::AnalyzeInterference(graph, summaries);
  const analysis::CacheCertificate* late_cert = find_cert(retracted, table.value().index());
  if (late_cert == nullptr || late_cert->grade != analysis::CacheGrade::kMutable) {
    std::printf("^^^^ STALE CERTIFICATE — immutable.table must grade mutable once a "
                "writer exists\n");
    ++failures;
  }
  std::printf("\nimax_lint: interference corpus: %u independent, %u interfering, "
              "certificate %s -> %s; %d failures\n",
              report.pairs_independent, report.pairs_interfering,
              table_cert != nullptr ? analysis::CacheGradeName(table_cert->grade) : "?",
              late_cert != nullptr ? analysis::CacheGradeName(late_cert->grade) : "?",
              failures);

  // --- Live quickstart: certified translation cache + runtime auditor, end to end. ---
  std::printf("\n==== xlat-cache quickstart (xlat_cache + interference_audit) ====\n");
  SystemConfig config;
  config.processors = 1;
  config.verify_on_load = true;
  config.start_gc_daemon = false;  // the daemon's native steps caveat every certificate
  config.xlat_cache = true;
  config.interference_audit = true;
  System demo(config);
  auto shared = demo.memory().CreateObject(demo.memory().global_heap(),
                                           SystemType::kGeneric, 64, 0,
                                           rights::kRead | rights::kWrite);
  if (!shared.ok() ||
      !demo.machine().addressing().WriteData(shared.value(), 0, 8, 7).ok()) {
    std::fprintf(stderr, "imax_lint: quickstart object creation failed\n");
    return failures > 0 ? failures : -1;
  }
  Assembler loop_program("quickstart.reader");
  auto loop = loop_program.NewLabel();
  loop_program.MoveAd(1, kArgAdReg)
      .LoadImm(0, 0)
      .LoadImm(3, 256)
      .Bind(loop)
      .LoadData(2, 1, 0, 8)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 3, loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = shared.value();
  auto process = demo.Spawn(loop_program.Build(), options);
  if (!process.ok()) {
    std::fprintf(stderr, "imax_lint: quickstart spawn failed\n");
    return failures > 0 ? failures : -1;
  }
  demo.Run();
  XlatCacheStats stats = demo.kernel().xlat_stats();
  const analysis::InterferenceAuditorStats& audit =
      demo.kernel().interference_auditor()->stats();
  std::printf("imax_lint: %llu certified hits, %llu certified program hits, %llu epoch "
              "hits, %llu audited, %llu violations\n",
              static_cast<unsigned long long>(stats.certified_hits),
              static_cast<unsigned long long>(stats.certified_program_hits),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(audit.hits_checked),
              static_cast<unsigned long long>(audit.violations));
  if (stats.certified_hits == 0 || stats.certified_program_hits == 0) {
    std::printf("^^^^ COLD CACHE — the hot read loop must serve certified hits on both "
                "tiers\n");
    ++failures;
  }
  if (audit.violations != 0 || demo.kernel().stats().interference_violations != 0) {
    std::printf("^^^^ AUDIT VIOLATION — a certified translation went stale\n");
    failures += static_cast<int>(audit.violations);
  }
  return failures;
}

// Runs the guard-dominance analysis three ways: the booted system's Phase 1 suppression
// accounting must balance exactly (every check bit is elidable or counted to one cause) and
// Phase 2 must never certify more than Phase 1 proved; a seeded corpus (dominated read over
// a writer-free object, a writer retracting that certificate, an opaque program suppressing
// every non-fresh site, fresh allocations surviving both) must produce the ground-truth
// verdicts; and a live decode-cache+guard-audit quickstart must execute check-elided with
// zero violations. Returns the number of failed expectations; -1 on setup failure.
int RunGuardChecks(System& system, bool dump) {
  int failures = 0;

  std::printf("\n==== whole-system guard-dominance analysis (booted system) ====\n");
  analysis::GuardAnalysisReport live = system.kernel().AnalyzeGuards();
  std::printf("imax_lint: %u programs, %u sites, %u checks: %u elidable, %u certified "
              "(%u fresh)\n",
              live.programs_analyzed, live.sites_seen, live.checks_seen,
              live.checks_elidable, live.checks_certified, live.certified_fresh);
  if (dump) {
    std::fputs(analysis::FormatGuardReport(live, system.kernel().guard_summaries()).c_str(),
               stdout);
  }
  const analysis::GuardCounters& c = live.phase1;
  if (c.checks_seen != c.checks_elidable + c.suppressed_opaque + c.suppressed_dynamic +
                           c.suppressed_unproven + c.suppressed_level) {
    std::printf("^^^^ BROKEN ACCOUNTING — every check bit must be elidable or counted to "
                "exactly one suppression cause\n");
    ++failures;
  }
  if (live.checks_certified > live.checks_elidable) {
    std::printf("^^^^ OVER-CERTIFICATION — Phase 2 certified more checks than Phase 1 "
                "proved dominated\n");
    ++failures;
  }
  for (const auto& [segment, summary] : system.kernel().guard_summaries()) {
    (void)segment;
    for (const analysis::GuardSite& site : summary.sites) {
      AddFinding("guards", summary.program_name + ":" + std::to_string(site.pc),
                 site.elidable != 0 ? "elidable" : "suppressed",
                 site.suppression == analysis::GuardSuppression::kNone
                     ? ""
                     : analysis::GuardSuppressionName(site.suppression));
    }
  }

  std::printf("\n==== seeded guard corpus (ground-truth certificates & retractions) ====\n");
  SymbolTable& symbols = system.kernel().symbols();
  auto table = system.memory().CreateObject(system.memory().global_heap(),
                                            SystemType::kGeneric, 16, 0,
                                            rights::kRead | rights::kWrite);
  if (!table.ok()) {
    std::fprintf(stderr, "imax_lint: guard corpus object creation failed\n");
    return -1;
  }
  symbols.Name(table.value().index(), "guards.table");

  // carrier slot 0 = the target (the shared table, or the global heap SRO for the fresh
  // allocator). Programs are analyzed standalone against real objects, like every other
  // seeded corpus, so AD chains resolve exactly as at load time.
  analysis::SystemEffectGraph graph;
  graph.set_symbols(&symbols);
  std::map<ObjectIndex, analysis::GuardSummary> guards;
  std::map<ObjectIndex, analysis::InterferenceSummary> interference;
  ObjectIndex next_key = 1;
  bool carriers_ok = true;
  auto add_program = [&](const Program& program, const AccessDescriptor& target) {
    ObjectIndex key = next_key++;
    auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                                SystemType::kGeneric, 16, 1,
                                                rights::kRead | rights::kWrite);
    if (!carrier.ok()) {
      carriers_ok = false;
      return key;
    }
    (void)system.machine().addressing().WriteAd(carrier.value(), 0, target);
    analysis::EffectOptions options = analysis::EffectOptionsForTable(
        system.machine().table(), carrier.value(), &symbols);
    if (dump) std::fputs(Disassemble(program).c_str(), stdout);
    graph.AddProgram(key, analysis::EffectAnalyzer::Analyze(program, options));
    guards[key] = analysis::GuardAnalyzer::Analyze(program, options);
    interference[key] = analysis::InterferenceAnalyzer::Analyze(program, options);
    return key;
  };

  // Dominated reader: the second load's rights + bounds are proven by the first — the
  // elidable, non-fresh site. Fresh allocator: store + load against a same-block
  // create_object. Writer and opaque native program join in later stages.
  Assembler reader("guards.reader");
  reader.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadData(0, 2, 0, 8).LoadData(3, 2, 0, 8)
      .Halt();
  Assembler fresh("guards.fresh");
  fresh.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadImm(5, 41).CreateObject(3, 2, 32)
      .StoreData(3, 5, 0, 8).LoadData(4, 3, 0, 8).Halt();
  ObjectIndex reader_key = add_program(*reader.Build(), table.value());
  (void)add_program(*fresh.Build(), system.memory().global_heap());
  if (!carriers_ok) {
    std::fprintf(stderr, "imax_lint: guard corpus carrier creation failed\n");
    return -1;
  }

  analysis::GuardAnalysisReport stage1 = analysis::AnalyzeGuards(graph, guards, interference);
  if (dump) std::fputs(analysis::FormatGuardReport(stage1, guards).c_str(), stdout);
  bool reader_certified = false;
  for (const analysis::ElisionCertificate& cert : stage1.certificates) {
    if (cert.segment != reader_key) continue;
    for (const analysis::ElidedCheck& check : cert.checks) {
      if (!check.fresh) reader_certified = true;
    }
  }
  if (!reader_certified || stage1.certified_fresh == 0 ||
      stage1.suppressed_interference != 0) {
    std::printf("^^^^ MISSED CERTIFICATE — the dominated writer-free read and the fresh "
                "sites must both certify\n");
    ++failures;
  }
  AddFinding("guards", "corpus:dominated-read",
             reader_certified ? "certified" : "missed-certificate");
  AddFinding("guards", "corpus:fresh-alloc",
             stage1.certified_fresh > 0 ? "certified" : "missed-certificate");

  // A writer joining the graph must retract the reader's certificate (fresh sites survive:
  // an unpublished object has no foreign writers by construction).
  Assembler writer("guards.writer");
  writer.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).StoreData(2, 0, 0, 8).Halt();
  (void)add_program(*writer.Build(), table.value());
  analysis::GuardAnalysisReport stage2 = analysis::AnalyzeGuards(graph, guards, interference);
  if (stage2.checks_certified != stage2.certified_fresh ||
      stage2.suppressed_interference == 0 || stage2.certified_fresh == 0) {
    std::printf("^^^^ STALE CERTIFICATE — a writer on guards.table must suppress the "
                "non-fresh site and spare the fresh ones\n");
    ++failures;
  }
  AddFinding("guards", "corpus:writer-retraction",
             stage2.checks_certified == stage2.certified_fresh &&
                     stage2.suppressed_interference > 0
                 ? "retracted"
                 : "stale-certificate",
             "foreign writer on guards.table");

  // An opaque program makes the whole system unknowable for non-fresh sites; fresh sites
  // still certify.
  Assembler opaque("guards.opaque");
  opaque.Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; })
      .Halt();
  (void)add_program(*opaque.Build(), table.value());
  analysis::GuardAnalysisReport stage3 = analysis::AnalyzeGuards(graph, guards, interference);
  if (stage3.checks_certified != stage3.certified_fresh || stage3.certified_fresh == 0 ||
      stage3.suppressed_system_opaque + stage3.suppressed_interference == 0) {
    std::printf("^^^^ OPACITY LEAK — an opaque program must suppress every non-fresh "
                "elision system-wide\n");
    ++failures;
  }
  AddFinding("guards", "corpus:opaque-program",
             stage3.checks_certified == stage3.certified_fresh ? "suppressed"
                                                               : "opacity-leak");
  std::printf("\nimax_lint: guard corpus: %u certified (%u fresh) -> writer: %u (%u) -> "
              "opaque: %u (%u); %d failures\n",
              stage1.checks_certified, stage1.certified_fresh, stage2.checks_certified,
              stage2.certified_fresh, stage3.checks_certified, stage3.certified_fresh,
              failures);

  // --- Live quickstart: armed decode cache + guard auditor, end to end. -----------------
  std::printf("\n==== decode-cache quickstart (decode_cache + guard_audit) ====\n");
  SystemConfig config;
  config.processors = 1;
  config.verify_on_load = true;
  config.start_gc_daemon = false;  // the daemon's native steps opaque the system
  config.decode_cache = true;
  config.guard_audit = true;
  System demo(config);
  Assembler hot("quickstart.alloc");
  auto loop = hot.NewLabel();
  hot.MoveAd(1, kArgAdReg)
      .LoadImm(0, 0)
      .LoadImm(3, 256)
      .LoadImm(5, 41)
      .Bind(loop)
      .CreateObject(4, 1, 32)
      .StoreData(4, 5, 0, 8)
      .LoadData(6, 4, 0, 8)
      .DestroyObject(4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 3, loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = demo.memory().global_heap();
  auto process = demo.Spawn(hot.Build(), options);
  if (!process.ok()) {
    std::fprintf(stderr, "imax_lint: quickstart spawn failed\n");
    return failures > 0 ? failures : -1;
  }
  demo.Run();
  DecodeCacheStats dstats = demo.kernel().decode_stats();
  const analysis::GuardAuditorStats& audit = demo.kernel().guard_auditor()->stats();
  std::printf("imax_lint: %llu decode hits, %llu misses, %llu check-elided executions, "
              "%llu audited, %llu violations\n",
              static_cast<unsigned long long>(dstats.hits),
              static_cast<unsigned long long>(dstats.misses),
              static_cast<unsigned long long>(demo.kernel().stats().guard_elisions),
              static_cast<unsigned long long>(audit.hits_checked),
              static_cast<unsigned long long>(audit.violations));
  if (dstats.hits == 0 || demo.kernel().stats().guard_elisions == 0 ||
      audit.hits_checked == 0) {
    std::printf("^^^^ COLD CACHE — the hot allocation loop must execute check-elided "
                "decode hits under audit\n");
    ++failures;
  }
  if (audit.violations != 0 || demo.kernel().stats().guard_violations != 0) {
    std::printf("^^^^ AUDIT VIOLATION — a certified elision skipped a check that would "
                "have failed\n");
    failures += static_cast<int>(audit.violations);
  }
  AddFinding("guards", "quickstart.alloc",
             audit.violations == 0 && demo.kernel().stats().guard_elisions > 0
                 ? "clean"
                 : "violation");
  return failures;
}

}  // namespace

// --- --filing: journal-integrity pass ----------------------------------------------------
//
// Builds a known-good write-ahead journal, then seeds three corrupt variants of it — torn
// tail, checksum-mismatched record, orphaned commit — and checks that replay detects each
// defect in the right counter, rolls the log back to the surviving prefix (never applying a
// damaged or unsealed transaction), and that a kernel booting from the corrupt device
// recovers without panicking. Returns the number of failed expectations; -1 on setup
// failure.
int RunFilingChecks(bool dump) {
  int failures = 0;

  // The known-good log: three sealed transactions. Every corrupt variant below is stamped
  // from this image, so the "surviving prefix" is exactly the first transaction.
  auto build_healthy = [](StableStore* device) {
    Journal journal(device, nullptr);
    bool ok = true;
    ok = ok && journal.Commit(JournalRecordType::kFileImage, {1, 2, 3}).ok();
    ok = ok && journal.Commit(JournalRecordType::kRemove, {4, 5}).ok();
    ok = ok && journal.Commit(JournalRecordType::kFileComposite, {6, 7, 8, 9}).ok();
    return ok;
  };
  auto replay_count = [](StableStore* device, JournalStats* stats) {
    Journal journal(device, nullptr);
    uint64_t applied = 0;
    Status status = journal.Replay([&applied](JournalRecordType, const std::vector<uint8_t>&) {
      ++applied;
      return Status::Ok();
    });
    *stats = journal.stats();
    return status.ok() ? static_cast<int64_t>(applied) : -1;
  };

  std::printf("\n==== filing journal integrity (seeded corrupt-journal corpus) ====\n");
  StableStore healthy;
  if (!build_healthy(&healthy)) {
    std::fprintf(stderr, "imax_lint: filing corpus journal construction failed\n");
    return -1;
  }
  const std::vector<uint8_t> image = healthy.durable_bytes();
  if (dump) {
    std::printf("healthy log: %zu bytes, 3 sealed transactions\n", image.size());
  }

  JournalStats stats;
  int64_t applied = replay_count(&healthy, &stats);
  bool healthy_ok = applied == 3 && stats.torn_tail_truncations == 0 &&
                    stats.corrupt_records_dropped == 0 && stats.orphan_commits == 0 &&
                    stats.rolled_back_transactions == 0;
  std::printf("healthy log: %lld of 3 transactions replayed, %llu anomalies\n",
              static_cast<long long>(applied),
              static_cast<unsigned long long>(stats.torn_tail_truncations +
                                              stats.corrupt_records_dropped +
                                              stats.orphan_commits +
                                              stats.rolled_back_transactions));
  if (!healthy_ok) {
    std::printf("^^^^ BROKEN REPLAY — a clean journal must replay whole, with zero "
                "anomaly counts\n");
    ++failures;
  }
  AddFinding("filing", "corpus:healthy-log", healthy_ok ? "clean" : "missed-defect");

  // Torn tail: the log ends inside the last transaction's mutation record.
  StableStore torn;
  torn.LoadImage(image);
  torn.TruncateDurable(image.size() - 30);
  applied = replay_count(&torn, &stats);
  bool torn_ok = applied == 2 && stats.torn_tail_truncations == 1 &&
                 stats.corrupt_records_dropped == 0;
  if (!torn_ok) {
    std::printf("^^^^ MISSED TORN TAIL — truncation mid-record must be counted and the "
                "prefix kept (%lld applied)\n",
                static_cast<long long>(applied));
    ++failures;
  }
  AddFinding("filing", "corpus:torn-tail", torn_ok ? "rolled-back" : "missed-defect",
             "log truncated mid-record");

  // Checksum mismatch: a payload bit under the second transaction's CRC flips.
  StableStore rotted;
  rotted.LoadImage(image);
  auto first = Journal::EncodeRecord(1, JournalRecordType::kFileImage, {1, 2, 3});
  auto seal = Journal::EncodeRecord(1, JournalRecordType::kCommit, {});
  rotted.CorruptDurable(first.size() + seal.size() + Journal::kRecordHeaderBytes, 0x08);
  applied = replay_count(&rotted, &stats);
  bool rot_ok = applied == 1 && stats.corrupt_records_dropped == 1;
  if (!rot_ok) {
    std::printf("^^^^ MISSED CHECKSUM MISMATCH — a bit-rotted record must be dropped with "
                "everything after it (%lld applied)\n",
                static_cast<long long>(applied));
    ++failures;
  }
  AddFinding("filing", "corpus:checksum-mismatch", rot_ok ? "rolled-back" : "missed-defect",
             "payload bit flipped under the record CRC");

  // Orphaned commit: a forged seal with no mutation record to seal.
  StableStore forged;
  {
    std::vector<uint8_t> forged_image = image;
    auto orphan = Journal::EncodeRecord(99, JournalRecordType::kCommit, {});
    forged_image.insert(forged_image.end(), orphan.begin(), orphan.end());
    forged.LoadImage(std::move(forged_image));
  }
  applied = replay_count(&forged, &stats);
  bool orphan_ok = applied == 3 && stats.orphan_commits == 1;
  if (!orphan_ok) {
    std::printf("^^^^ MISSED ORPHAN COMMIT — a seal without its mutation must be counted "
                "and skipped (%lld applied)\n",
                static_cast<long long>(applied));
    ++failures;
  }
  AddFinding("filing", "corpus:orphan-commit", orphan_ok ? "detected" : "missed-defect",
             "forged commit record with no mutation");

  // End to end: a kernel booting from the torn device must recover the surviving prefix
  // without panicking (recovery is best-effort, never fatal).
  StableStore crashed;
  crashed.LoadImage(image);
  crashed.TruncateDurable(image.size() - 30);
  SystemConfig config;
  config.processors = 1;
  config.machine.memory_bytes = 96 * 1024;
  config.stable_store = &crashed;
  System recovered(config);
  bool boot_ok = recovered.filing_recovery_status().ok() &&
                 recovered.kernel().stats().panics == 0 &&
                 recovered.journal() != nullptr &&
                 recovered.journal()->stats().torn_tail_truncations == 1;
  std::printf("torn-device boot: recovery %s, %llu panic(s), %llu transactions replayed\n",
              recovered.filing_recovery_status().ok() ? "ok" : "failed",
              static_cast<unsigned long long>(recovered.kernel().stats().panics),
              static_cast<unsigned long long>(
                  recovered.journal()->stats().replayed_transactions));
  if (!boot_ok) {
    std::printf("^^^^ RECOVERY REGRESSION — booting from a torn journal must succeed "
                "quietly with the prefix restored\n");
    ++failures;
  }
  AddFinding("filing", "boot:torn-device", boot_ok ? "recovered" : "missed-defect",
             "kernel boot over the torn corpus");

  std::printf("imax_lint: filing pass: %d failed expectation(s)\n", failures);
  return failures;
}

int main(int argc, char** argv) {
  bool dump = false;
  bool demo_bad = false;
  bool deadlock = false;
  bool races = false;
  bool lifetime = false;
  bool interference = false;
  bool guards = false;
  bool filing = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--demo-bad") == 0) {
      demo_bad = true;
    } else if (std::strcmp(argv[i], "--deadlock") == 0) {
      deadlock = true;
    } else if (std::strcmp(argv[i], "--races") == 0) {
      races = true;
    } else if (std::strcmp(argv[i], "--lifetime") == 0) {
      lifetime = true;
    } else if (std::strcmp(argv[i], "--interference") == 0) {
      interference = true;
    } else if (std::strcmp(argv[i], "--guards") == 0) {
      guards = true;
    } else if (std::strcmp(argv[i], "--filing") == 0) {
      filing = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--all") == 0) {
      demo_bad = deadlock = races = lifetime = interference = guards = filing = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      std::fputs(kUsage, stderr);
      return 1;  // bad usage is an infrastructure failure, not a lint finding
    }
  }
  std::vector<JsonFinding> json_findings;
  if (json) g_json_findings = &json_findings;

  // Boot the representative configuration with verify-on-load armed, so every program below
  // passes through the verifier twice: once inside the kernel, once in the sweep.
  SystemConfig config;
  config.processors = 2;
  config.verify_on_load = true;
  System system(config);

  FaultService fault_service(&system.kernel(), FaultPolicy{});
  auto fault_port = fault_service.Spawn();
  SchedulerStats scheduler_stats;
  auto scheduler =
      SpawnPassThroughScheduler(&system.kernel(), &system.process_manager(), &scheduler_stats);
  auto console = DeviceServer::Spawn(&system.kernel(), std::make_unique<ConsoleDevice>());
  if (!fault_port.ok() || !scheduler.ok() || !console.ok()) {
    std::fprintf(stderr, "imax_lint: system services failed to boot\n");
    return 1;
  }

  // A quickstart-style user pair, so the sweep covers ordinary assembled code too.
  auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 8,
                                                 QueueDiscipline::kFifo);
  if (!port.ok()) {
    return 1;
  }
  Assembler producer("example_producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .LoadImm(0, 0)
      .LoadImm(1, 10)
      .Bind(send_loop)
      .CreateObject(4, 3, 32)
      .StoreData(4, 0, 0, 8)
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, send_loop)
      .Halt();
  Assembler consumer("example_consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 10)
      .Bind(recv_loop)
      .Receive(4, 2)
      .LoadData(3, 4, 0, 8)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .Halt();
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 16, 2,
                                              rights::kRead | rights::kWrite);
  if (!carrier.ok()) {
    return 1;
  }
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system.machine().addressing().WriteAd(carrier.value(), 1,
                                              system.memory().global_heap());
  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto producer_process = system.Spawn(producer.Build(), options);
  auto consumer_process = system.Spawn(consumer.Build(), options);
  if (!producer_process.ok() || !consumer_process.ok()) {
    std::fprintf(stderr, "imax_lint: verify-on-load rejected an example program\n");
    return 1;
  }

  // Sweep every instruction segment now registered in the program store. Process programs
  // are analyzed as process entries with an unknown initial argument, which is weaker than
  // what the kernel proved at load time and therefore cannot produce extra rejections.
  std::printf("imax_lint: %u instruction segments registered\n\n",
              static_cast<uint32_t>(system.machine().table().live_count()));
  int errors = 0;
  int programs = 0;
  system.kernel().programs().ForEach([&](ObjectIndex, const Program& program) {
    ++programs;
    int program_errors = LintProgram(program, analysis::VerifyOptions{}, dump);
    errors += program_errors;
    AddFinding("verifier", program.name(), program_errors == 0 ? "clean" : "rejected",
               program_errors == 0 ? ""
                                   : std::to_string(program_errors) + " verifier error(s)");
  });
  std::printf("\nimax_lint: %d programs, %d errors (kernel verified %llu, rejected %llu)\n",
              programs, errors,
              static_cast<unsigned long long>(system.kernel().stats().programs_verified),
              static_cast<unsigned long long>(system.kernel().stats().programs_rejected));

  int missed = 0;
  if (demo_bad) {
    std::printf("\n==== seeded-bad corpus (every program below must be rejected) ====\n");
    for (const BadProgram& bad : BuildBadCorpus()) {
      std::printf("# %s\n", bad.why);
      int bad_errors = LintProgram(*bad.program, bad.options, dump);
      if (bad_errors == 0) {
        std::printf("^^^^ NOT REJECTED — verifier rule gap\n");
        ++missed;
      }
      AddFinding("demo-bad", bad.program->name(),
                 bad_errors > 0 ? "rejected-as-expected" : "missed-defect", bad.why);
    }
    std::printf("\nimax_lint: %d of %zu bad programs slipped through\n", missed,
                BuildBadCorpus().size());
  }

  // A setup failure in one check must not mask findings from another: run everything that
  // was requested, then let findings (exit 2) take precedence over infrastructure trouble
  // (exit 1).
  bool infrastructure_failed = false;
  // Clamps a pass result (< 0 = setup failure) and records the pass-level JSON finding.
  auto run_pass = [&](const char* name, int result) {
    if (result < 0) {
      infrastructure_failed = true;
      AddFinding(name, "whole-system", "setup-failed");
      return 0;
    }
    AddFinding(name, "whole-system", result == 0 ? "clean" : "findings",
               result == 0 ? "" : std::to_string(result) + " failed expectation(s)");
    return result;
  };
  if (deadlock || races) {
    // Give the quickstart pair's port a name first, so any diagnostic that did involve it
    // would read well.
    system.kernel().symbols().Name(port.value().index(), "example.queue");
  }
  int deadlock_failures = 0;
  if (deadlock) {
    deadlock_failures = run_pass("deadlock", RunDeadlockChecks(system, dump));
  }
  int race_failures = 0;
  if (races) {
    race_failures = run_pass("races", RunRaceChecks(system, dump));
  }
  int lifetime_failures = 0;
  if (lifetime) {
    lifetime_failures = run_pass("lifetime", RunLifetimeChecks(system, dump));
  }
  int interference_failures = 0;
  if (interference) {
    interference_failures = run_pass("interference", RunInterferenceChecks(system, dump));
  }
  int guard_failures = 0;
  if (guards) {
    guard_failures = run_pass("guards", RunGuardChecks(system, dump));
  }
  int filing_failures = 0;
  if (filing) {
    filing_failures = run_pass("filing", RunFilingChecks(dump));
  }

  const int findings = errors + missed + deadlock_failures + race_failures +
                       lifetime_failures + interference_failures + guard_failures +
                       filing_failures;
  const int exit_code = findings > 0 ? 2 : (infrastructure_failed ? 1 : 0);
  std::printf("\nLINT EXIT: %d\n", exit_code);
  if (json) EmitJson(json_findings, exit_code);
  return exit_code;
}

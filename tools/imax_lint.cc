// imax_lint: offline static capability verification for iMAX-432 programs.
//
// Boots a representative system configuration — GC daemon, fault service, pass-through
// scheduler, console device server, plus a quickstart-style producer/consumer pair — then
// sweeps every instruction segment in the program store through the static verifier
// (src/analysis) and prints a disassembly-annotated diagnostic report.
//
// Usage: imax_lint [--dump] [--demo-bad]
//   --dump      also print the full disassembly of every linted program
//   --demo-bad  additionally lint a corpus of deliberately broken programs and check that
//               each one is rejected (exercises the verifier's rule coverage end to end)
//
// Exit status: 0 when every system/example program verifies (and, with --demo-bad, every
// broken program is rejected); 1 otherwise.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/verifier.h"
#include "src/io/devices.h"
#include "src/isa/disassembler.h"
#include "src/os/fault_service.h"
#include "src/os/schedulers.h"
#include "src/os/system.h"

using namespace imax432;

namespace {

struct BadProgram {
  const char* why;
  ProgramRef program;
  analysis::VerifyOptions options;
};

// The shape Spawn-from-the-global-heap gives a7: a level-0 SRO with allocate rights.
analysis::VerifyOptions SroArg() {
  analysis::VerifyOptions options;
  options.initial_arg = analysis::AdAbstract::Object(
      SystemType::kStorageResource, rights::kRead | rights::kSroAllocate,
      analysis::LevelRange::Exact(0));
  return options;
}

analysis::VerifyOptions PortArg() {
  analysis::VerifyOptions options;
  options.initial_arg = analysis::AdAbstract::Object(SystemType::kPort, rights::kAll,
                                                     analysis::LevelRange::Exact(0));
  return options;
}

// Deliberately broken programs, one per verifier rule family.
std::vector<BadProgram> BuildBadCorpus() {
  std::vector<BadProgram> corpus;

  {
    Assembler a("bad_null_load");
    a.LoadData(0, 1, 0, 8).Halt();  // a1 never initialized
    corpus.push_back({"loads through a null AD register", a.Build(), {}});
  }
  {
    Assembler a("bad_restricted_send");
    a.MoveAd(1, kArgAdReg).RestrictRights(1, rights::kRead).Send(1, 1).Halt();
    corpus.push_back({"sends after stripping port-send rights", a.Build(), PortArg()});
  }
  {
    Assembler a("bad_branch_target");
    Instruction in;
    in.op = Opcode::kBranch;
    in.imm = 1000;
    auto program = std::make_shared<Program>("bad_branch_target");
    program->Append(in);
    corpus.push_back({"branches far beyond the program end", ProgramRef(program), {}});
  }
  {
    Assembler a("bad_oob_store");
    a.MoveAd(1, kArgAdReg)
        .CreateObject(2, 1, 16)    // 16-byte object
        .StoreData(2, 0, 64, 8)    // store at offset 64
        .Halt();
    corpus.push_back({"stores past the end of a 16-byte object", a.Build(), SroArg()});
  }
  {
    Assembler a("bad_level_escape");
    a.MoveAd(1, kArgAdReg)       // a1 = global SRO (level 0)
        .CreateObject(2, 1, 16, 2)
        .CreateSro(3, 1, 4096)   // a3 = local SRO, level = entry + 1
        .StoreAd(2, 3, 0)        // store local SRO into global-level object
        .Halt();
    corpus.push_back(
        {"stores an activation-local SRO into a global object", a.Build(), SroArg()});
  }

  return corpus;
}

int LintProgram(const Program& program, const analysis::VerifyOptions& options, bool dump) {
  analysis::VerifyResult result = analysis::Verifier::Verify(program, options);
  std::printf("---- %-24s %4u instructions: %s\n", program.name().c_str(), program.size(),
              result.ok() ? (result.diagnostics.empty() ? "clean" : "clean (warnings)")
                          : "REJECTED");
  if (dump) {
    std::fputs(Disassemble(program).c_str(), stdout);
  }
  if (!result.diagnostics.empty()) {
    std::fputs(analysis::FormatDiagnostics(program, result).c_str(), stdout);
  }
  return static_cast<int>(result.error_count());
}

}  // namespace

int main(int argc, char** argv) {
  bool dump = false;
  bool demo_bad = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--demo-bad") == 0) {
      demo_bad = true;
    } else {
      std::fprintf(stderr, "usage: %s [--dump] [--demo-bad]\n", argv[0]);
      return 2;
    }
  }

  // Boot the representative configuration with verify-on-load armed, so every program below
  // passes through the verifier twice: once inside the kernel, once in the sweep.
  SystemConfig config;
  config.processors = 2;
  config.verify_on_load = true;
  System system(config);

  FaultService fault_service(&system.kernel(), FaultPolicy{});
  auto fault_port = fault_service.Spawn();
  SchedulerStats scheduler_stats;
  auto scheduler =
      SpawnPassThroughScheduler(&system.kernel(), &system.process_manager(), &scheduler_stats);
  auto console = DeviceServer::Spawn(&system.kernel(), std::make_unique<ConsoleDevice>());
  if (!fault_port.ok() || !scheduler.ok() || !console.ok()) {
    std::fprintf(stderr, "imax_lint: system services failed to boot\n");
    return 1;
  }

  // A quickstart-style user pair, so the sweep covers ordinary assembled code too.
  auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 8,
                                                 QueueDiscipline::kFifo);
  if (!port.ok()) {
    return 1;
  }
  Assembler producer("example_producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .LoadImm(0, 0)
      .LoadImm(1, 10)
      .Bind(send_loop)
      .CreateObject(4, 3, 32)
      .StoreData(4, 0, 0, 8)
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, send_loop)
      .Halt();
  Assembler consumer("example_consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 10)
      .Bind(recv_loop)
      .Receive(4, 2)
      .LoadData(3, 4, 0, 8)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .Halt();
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 16, 2,
                                              rights::kRead | rights::kWrite);
  if (!carrier.ok()) {
    return 1;
  }
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system.machine().addressing().WriteAd(carrier.value(), 1,
                                              system.memory().global_heap());
  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto producer_process = system.Spawn(producer.Build(), options);
  auto consumer_process = system.Spawn(consumer.Build(), options);
  if (!producer_process.ok() || !consumer_process.ok()) {
    std::fprintf(stderr, "imax_lint: verify-on-load rejected an example program\n");
    return 1;
  }

  // Sweep every instruction segment now registered in the program store. Process programs
  // are analyzed as process entries with an unknown initial argument, which is weaker than
  // what the kernel proved at load time and therefore cannot produce extra rejections.
  std::printf("imax_lint: %u instruction segments registered\n\n",
              static_cast<uint32_t>(system.machine().table().live_count()));
  int errors = 0;
  int programs = 0;
  system.kernel().programs().ForEach([&](ObjectIndex, const Program& program) {
    ++programs;
    errors += LintProgram(program, analysis::VerifyOptions{}, dump);
  });
  std::printf("\nimax_lint: %d programs, %d errors (kernel verified %llu, rejected %llu)\n",
              programs, errors,
              static_cast<unsigned long long>(system.kernel().stats().programs_verified),
              static_cast<unsigned long long>(system.kernel().stats().programs_rejected));

  int missed = 0;
  if (demo_bad) {
    std::printf("\n==== seeded-bad corpus (every program below must be rejected) ====\n");
    for (const BadProgram& bad : BuildBadCorpus()) {
      std::printf("# %s\n", bad.why);
      if (LintProgram(*bad.program, bad.options, dump) == 0) {
        std::printf("^^^^ NOT REJECTED — verifier rule gap\n");
        ++missed;
      }
    }
    std::printf("\nimax_lint: %d of %zu bad programs slipped through\n", missed,
                BuildBadCorpus().size());
  }

  return (errors > 0 || missed > 0) ? 1 : 0;
}
